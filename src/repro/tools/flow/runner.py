"""Driver for one ``repro flow`` run.

Reuses the lint engine end to end — file discovery, parsing, suppression
comments, :class:`~repro.tools.lint.engine.LintResult` — and adds the one
thing flow rules need that lint rules don't: the shared
:class:`~repro.tools.flow.graph.FlowIndex` built once over the whole
project, plus *context modules* (benchmarks, examples, tests).  Context
modules are parsed so the dead-code rule can see what they reference, but
they are never themselves reported on — their hygiene is ``repro lint``'s
job.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

# Importing the lint rules fills RULE_REGISTRY, so flow runs recognize
# R-code suppressions as known companion codes.
import repro.tools.lint.rules  # noqa: F401  (registration side effect)
from repro.tools.flow.graph import FlowIndex
from repro.tools.flow.rules import default_flow_rules
from repro.tools.indexing import load_indexed_project
from repro.tools.lint.engine import (
    ENGINE_CODE,
    RULE_REGISTRY,
    LintResult,
    Violation,
    apply_suppressions,
    suppression_violations,
)

__all__ = [
    "CONTEXT_DIR_NAMES",
    "build_flow_index",
    "detect_context_paths",
    "run_flow",
]

#: Sibling directories of the analyzed package that count as liveness
#: roots for F104 (they consume the API without being part of it).
CONTEXT_DIR_NAMES = ("benchmarks", "examples", "tests")


def detect_context_paths(paths: Sequence) -> list:
    """Locate benchmarks/examples/tests next to the analyzed tree.

    Walks up from the first analyzed path to the enclosing project root
    (marked by ``pyproject.toml``) and returns whichever of
    :data:`CONTEXT_DIR_NAMES` exist there.  Returns ``[]`` when no project
    root is found, so fixture trees analyzed in isolation get no implicit
    context.
    """
    for raw in paths:
        start = Path(raw).resolve()
        if start.is_file():
            start = start.parent
        for candidate in (start, *start.parents):
            if (candidate / "pyproject.toml").is_file():
                return [
                    candidate / name
                    for name in CONTEXT_DIR_NAMES
                    if (candidate / name).is_dir()
                ]
    return []


def build_flow_index(
    paths: Sequence,
    root: Path | None = None,
    context_paths: Sequence | None = None,
) -> FlowIndex:
    """Parse ``paths`` (+ context) and build the shared flow index.

    ``context_paths=None`` auto-detects sibling benchmarks/examples/tests
    via :func:`detect_context_paths`; pass ``()`` to analyze in isolation.
    Loading is memoized by :mod:`repro.tools.indexing`, so a ``repro
    race`` run over the same tree reuses this index instead of parsing
    the project twice.
    """
    if context_paths is None:
        context_paths = detect_context_paths(paths)
    return load_indexed_project(
        paths, root=root, context_paths=context_paths,
    ).index


def run_flow(
    paths: Sequence,
    rules: Sequence | None = None,
    root: Path | None = None,
    spec_path: Path | None = None,
    context_paths: Sequence | None = None,
) -> LintResult:
    """Run the flow rules over ``paths``; mirrors ``run_lint``'s contract.

    ``rules=None`` runs every F-rule; pass a subset (already bound to an
    index, or not — unbound rules get the shared index injected) to focus
    a run.  ``spec_path`` overrides where F105 reads ``api_spec.json``.
    """
    if context_paths is None:
        context_paths = detect_context_paths(paths)
    loaded = load_indexed_project(paths, root=root,
                                  context_paths=context_paths)
    project = loaded.project
    violations: list[Violation] = list(loaded.parse_violations)
    n_files = loaded.n_files
    index = loaded.index

    if rules is None:
        rules = default_flow_rules(index, spec_path=spec_path)
    for rule in rules:
        if getattr(rule, "index", None) is None:
            rule.index = index

    known_codes = (
        {rule.code for rule in rules}
        | set(RULE_REGISTRY)
        | {ENGINE_CODE}
    )
    for module in project.modules:
        violations.extend(suppression_violations(module, known_codes))
        for rule in rules:
            violations.extend(rule.check_module(module, project))
    for rule in rules:
        violations.extend(rule.check_project(project))

    modules_by_path = {m.relpath: m for m in project.modules}
    violations = apply_suppressions(violations, modules_by_path)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return LintResult(violations=violations, n_files=n_files)
