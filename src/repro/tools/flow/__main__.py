"""``python -m repro.tools.flow`` — run the flow analyzer."""

from repro.tools.flow.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
