"""Whole-project indexes for ``repro flow``.

Every module is parsed exactly once (by the shared lint engine); this
module turns the parsed forest into the three cross-module structures the
F-rules query:

* a **symbol table** — every module-level binding (function, class,
  constant, import) with re-export chains resolvable across modules;
* an **import graph** — project-internal module-to-module edges with the
  AST node of each import statement, for layering and cycle checks;
* an approximate **call graph** — call sites resolved to in-project
  functions (including ``Class(...)`` → ``Class.__init__`` and
  ``self.method()``), which is what lets the taint and seed-flow rules
  reason across call boundaries.

The resolution is deliberately *approximate*: anything dynamic
(``getattr``, dict dispatch, callables passed as values) resolves to
nothing rather than to a guess, so rules built on top err toward silence,
not false alarms.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.tools.lint.engine import ModuleInfo, Project

__all__ = [
    "CallSite",
    "FlowIndex",
    "FunctionInfo",
    "ImportEdge",
    "SymbolDef",
    "build_index",
    "dotted_path",
    "import_bindings",
]


def dotted_path(node: ast.expr) -> tuple | None:
    """``a.b.c`` -> ``("a", "b", "c")``; ``None`` for non-name expressions."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


@dataclass(frozen=True)
class _Binding:
    """One import binding: local name -> (module, symbol) origin."""

    module: str
    symbol: str | None  # None when the binding is the module object itself


def _resolve_relative(package: str, module: str | None, level: int) -> str | None:
    """Absolute dotted target of a (possibly relative) ``from`` import."""
    if level == 0:
        return module
    parts = package.split(".") if package else []
    if level > len(parts):
        return None
    base = parts[: len(parts) - (level - 1)]
    if module:
        base.extend(module.split("."))
    return ".".join(base) if base else None


def import_bindings(module: ModuleInfo) -> dict:
    """Map local name -> :class:`_Binding` for every import in ``module``."""
    package = module.dotted_name
    if not module.path.name == "__init__.py":
        package = package.rpartition(".")[0]
    bindings: dict[str, _Binding] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                bindings[local] = _Binding(module=target, symbol=None)
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_relative(package, node.module, node.level)
            if target is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                bindings[local] = _Binding(module=target, symbol=alias.name)
    return bindings


@dataclass(frozen=True)
class SymbolDef:
    """One module-level binding in the project."""

    module_name: str
    name: str
    kind: str  # "function" | "class" | "constant" | "import"
    lineno: int
    col: int = 0

    @property
    def key(self) -> tuple:
        return (self.module_name, self.name)


@dataclass(frozen=True)
class ImportEdge:
    """One project-internal import: ``source`` module imports ``target``.

    ``deferred`` marks imports inside a function body: they do not run at
    import time, so they participate in layering checks but not in
    import-cycle detection (a deferred import is the sanctioned way to
    break a would-be cycle).
    """

    source: str
    target: str
    lineno: int
    col: int = 0
    deferred: bool = False


@dataclass
class FunctionInfo:
    """One function or method, addressable as ``module:qualname``."""

    module_name: str
    qualname: str  # "fn" or "Class.method"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: str | None = None

    @property
    def key(self) -> tuple:
        return (self.module_name, self.qualname)

    @property
    def name(self) -> str:
        return self.qualname.rpartition(".")[2]

    def param_names(self, skip_self: bool = True) -> list:
        """Positional-capable parameter names, in order."""
        args = self.node.args
        names = [a.arg for a in (*args.posonlyargs, *args.args)]
        if skip_self and self.class_name is not None and names[:1] == ["self"]:
            names = names[1:]
        return names

    def all_param_names(self, skip_self: bool = True) -> list:
        """Every parameter name, including keyword-only ones."""
        args = self.node.args
        names = self.param_names(skip_self=skip_self)
        return names + [a.arg for a in args.kwonlyargs]


@dataclass(frozen=True)
class CallSite:
    """One call expression resolved (or not) to an in-project function."""

    caller: tuple  # FunctionInfo.key of the enclosing scope (module body: (mod, ""))
    node: ast.Call
    target: tuple | None  # FunctionInfo.key of the callee, if resolved
    target_class: str | None = None  # set when the call constructs a class


@dataclass
class FlowIndex:
    """Shared cross-module indexes built once per ``repro flow`` run."""

    project: Project
    context_modules: list = field(default_factory=list)
    modules: dict = field(default_factory=dict)      # dotted name -> ModuleInfo
    bindings: dict = field(default_factory=dict)     # dotted name -> {local: _Binding}
    symbols: dict = field(default_factory=dict)      # (module, name) -> SymbolDef
    functions: dict = field(default_factory=dict)    # (module, qualname) -> FunctionInfo
    classes: dict = field(default_factory=dict)      # (module, class) -> ast.ClassDef
    import_edges: list = field(default_factory=list)
    calls: dict = field(default_factory=dict)        # caller key -> [CallSite]

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------

    def resolve_symbol(self, module_name: str, name: str, depth: int = 0):
        """Chase ``name`` in ``module_name`` through re-export chains.

        Returns the defining :class:`SymbolDef` (kind != "import"), or
        ``None`` when the name leaves the project or cannot be resolved.
        """
        if depth > 16:
            return None
        local = self.symbols.get((module_name, name))
        if local is not None and local.kind != "import":
            return local
        binding = self.bindings.get(module_name, {}).get(name)
        if binding is None:
            return None
        if binding.symbol is None:
            return None  # bound a module object, not a symbol
        target = binding.module
        if target in self.modules:
            return self.resolve_symbol(target, binding.symbol, depth + 1)
        # ``from repro.pkg import submodule`` — the "symbol" is a module.
        sub = f"{target}.{binding.symbol}"
        if sub in self.modules:
            return None
        return None

    def resolve_function(self, module_name: str, name: str):
        """Resolve a called name to a :class:`FunctionInfo` (or class init).

        Returns ``(function_info, class_name)`` where ``class_name`` is
        set when the name resolved to a class (the function is then its
        ``__init__``, possibly inherited); ``(None, class_name)`` for a
        class with no resolvable ``__init__``; ``(None, None)`` otherwise.
        """
        symbol = self.resolve_symbol(module_name, name)
        if symbol is None:
            return None, None
        if symbol.kind == "function":
            return self.functions.get((symbol.module_name, symbol.name)), None
        if symbol.kind == "class":
            init = self.class_init(symbol.module_name, symbol.name)
            return init, symbol.name
        return None, None

    def class_init(self, module_name: str, class_name: str, depth: int = 0):
        """The ``__init__`` of a class, chasing base classes by name."""
        if depth > 8:
            return None
        init = self.functions.get((module_name, f"{class_name}.__init__"))
        if init is not None:
            return init
        cls = self.classes.get((module_name, class_name))
        if cls is None:
            return None
        for base in cls.bases:
            path = dotted_path(base)
            if path is None:
                continue
            base_symbol = self.resolve_symbol(module_name, path[0])
            if base_symbol is None or base_symbol.kind != "class":
                continue
            name = base_symbol.name if len(path) == 1 else path[-1]
            found = self.class_init(base_symbol.module_name, name, depth + 1)
            if found is not None:
                return found
        return None

    def module_of(self, module_name: str) -> ModuleInfo | None:
        """The parsed module for a dotted name, if it was analyzed."""
        return self.modules.get(module_name)

    def project_target(self, binding: _Binding) -> str | None:
        """Dotted project module a binding points into, if any."""
        target = binding.module
        if binding.symbol is not None:
            sub = f"{target}.{binding.symbol}"
            if sub in self.modules:
                return sub
        if target in self.modules:
            return target
        # ``import repro.learn.base`` binds "repro": chase the prefix.
        while target and target not in self.modules:
            target = target.rpartition(".")[0]
        return target or None


def _collect_symbols(index: FlowIndex, module: ModuleInfo) -> None:
    name = module.dotted_name
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            index.symbols[(name, node.name)] = SymbolDef(
                name, node.name, "function", node.lineno, node.col_offset,
            )
        elif isinstance(node, ast.ClassDef):
            index.symbols[(name, node.name)] = SymbolDef(
                name, node.name, "class", node.lineno, node.col_offset,
            )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for target_name in _target_names(target):
                    index.symbols[(name, target_name)] = SymbolDef(
                        name, target_name, "constant",
                        node.lineno, node.col_offset,
                    )
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            index.symbols[(name, node.target.id)] = SymbolDef(
                name, node.target.id, "constant", node.lineno, node.col_offset,
            )
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name.split(".")[0] \
                    if isinstance(node, ast.Import) else (alias.asname or alias.name)
                index.symbols[(name, local)] = SymbolDef(
                    name, local, "import", node.lineno, node.col_offset,
                )


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)


def _collect_functions(index: FlowIndex, module: ModuleInfo) -> None:
    name = module.dotted_name
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            index.functions[(name, node.name)] = FunctionInfo(name, node.name, node)
        elif isinstance(node, ast.ClassDef):
            index.classes[(name, node.name)] = node
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{node.name}.{item.name}"
                    index.functions[(name, qualname)] = FunctionInfo(
                        name, qualname, item, class_name=node.name,
                    )


def _collect_import_edges(index: FlowIndex, module: ModuleInfo) -> None:
    source = module.dotted_name
    package = source if module.path.name == "__init__.py" \
        else source.rpartition(".")[0]
    in_function = {
        child
        for node in ast.walk(module.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        for child in ast.walk(node)
        if child is not node
    }
    for node in ast.walk(module.tree):
        deferred = node in in_function
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = _project_module_prefix(index, alias.name)
                if target is not None:
                    index.import_edges.append(ImportEdge(
                        source, target, node.lineno, node.col_offset,
                        deferred=deferred,
                    ))
        elif isinstance(node, ast.ImportFrom):
            base = _resolve_relative(package, node.module, node.level)
            if base is None:
                continue
            for alias in node.names:
                candidate = f"{base}.{alias.name}" if alias.name != "*" else base
                target = (_project_module_prefix(index, candidate)
                          or _project_module_prefix(index, base))
                if target is not None:
                    index.import_edges.append(ImportEdge(
                        source, target, node.lineno, node.col_offset,
                        deferred=deferred,
                    ))


def _project_module_prefix(index: FlowIndex, dotted: str) -> str | None:
    """Longest prefix of ``dotted`` that is a project module, if any."""
    while dotted:
        if dotted in index.modules:
            return dotted
        dotted = dotted.rpartition(".")[0]
    return None


def _collect_calls(index: FlowIndex, module: ModuleInfo) -> None:
    module_name = module.dotted_name
    for info in list(index.functions.values()):
        if info.module_name != module_name:
            continue
        sites = []
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                sites.append(_resolve_call(index, module_name, info, node))
        index.calls[info.key] = sites
    # Module body (everything outside function/class defs) as pseudo-scope.
    body_calls = []
    inside = {
        child
        for top in module.tree.body
        if isinstance(top, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
        for child in ast.walk(top)
    }
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call) and node not in inside:
            body_calls.append(_resolve_call(index, module_name, None, node))
    index.calls[(module_name, "")] = body_calls


def _resolve_call(
    index: FlowIndex,
    module_name: str,
    caller: FunctionInfo | None,
    node: ast.Call,
) -> CallSite:
    caller_key = caller.key if caller is not None else (module_name, "")
    path = dotted_path(node.func)
    if path is None:
        return CallSite(caller_key, node, None)
    target: FunctionInfo | None = None
    target_class: str | None = None
    if len(path) == 1:
        target, target_class = index.resolve_function(module_name, path[0])
    elif path[0] == "self" and caller is not None and caller.class_name:
        if len(path) == 2:
            target = index.functions.get(
                (module_name, f"{caller.class_name}.{path[1]}")
            )
    else:
        binding = index.bindings.get(module_name, {}).get(path[0])
        if binding is not None:
            origin = index.project_target(binding)
            if origin is not None and binding.symbol is None:
                # path[0] is a module alias: resolve attr chain inside it.
                remaining = list(path[1:])
                current = origin
                while len(remaining) > 1 and f"{current}.{remaining[0]}" in index.modules:
                    current = f"{current}.{remaining[0]}"
                    remaining.pop(0)
                if len(remaining) == 1:
                    target, target_class = index.resolve_function(
                        current, remaining[0]
                    )
    return CallSite(caller_key, node, target.key if target else None,
                    target_class=target_class)


def build_index(project: Project, context_modules: Sequence = ()) -> FlowIndex:
    """Build every shared index for one flow run (single pass per table)."""
    index = FlowIndex(project=project, context_modules=list(context_modules))
    for module in project.modules:
        index.modules[module.dotted_name] = module
    for module in project.modules:
        index.bindings[module.dotted_name] = import_bindings(module)
        _collect_symbols(index, module)
        _collect_functions(index, module)
    for module in project.modules:
        _collect_import_edges(index, module)
        _collect_calls(index, module)
    return index
