"""Machine-readable architecture layering for F101 (``repro flow``).

The reproduction's dependency DAG, lowest layer first::

    exceptions                                   (foundation)
        ^
    learn                                        (numeric substrate)
        ^
    datasets, platforms                          (corpus + simulated services)
        ^
    core, analysis, service                      (measurement harness)
        ^
    repro (facade), cli, tools, benchmarks, ...  (interface)

A module may import from its own layer or any layer **below** it; an
upward import inverts the architecture (e.g. an estimator reaching into
the measurement harness) and is reported as F101.  The spec mirrors the
``table1_spec`` pattern: this file is the single ground truth the
layering rule diffs the real import graph against, so an intentional
re-layering is a one-file change reviewed like any Table 1 edit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LAYERS", "Layer", "layer_of"]


@dataclass(frozen=True)
class Layer:
    """One architecture layer: a name and the package prefixes it owns."""

    name: str
    packages: tuple
    description: str


#: The dependency DAG, lowest (most-imported) layer first.
LAYERS = (
    Layer(
        name="foundation",
        packages=("repro.exceptions",),
        description="exception hierarchy; imports nothing from the project",
    ),
    Layer(
        name="learn",
        packages=("repro.learn",),
        description="from-scratch ML substrate (estimators, metrics, CV)",
    ),
    Layer(
        name="data-and-services",
        packages=("repro.datasets", "repro.platforms"),
        description="dataset corpus and simulated MLaaS platforms",
    ),
    Layer(
        name="measurement",
        packages=("repro.core", "repro.analysis", "repro.service",
                  "repro.serving"),
        description="study orchestration, runner, campaign service layer, "
                    "HTTP serving front-end, and analysis of results",
    ),
    Layer(
        name="interface",
        packages=("repro", "repro.cli", "repro.tools",
                  "benchmarks", "examples", "tests"),
        description="CLI, static-analysis tools (lint/flow/race/perf/"
                    "shape/wire + shared indexing + the combined check "
                    "driver), facade, benches, examples",
    ),
)


def layer_of(module_name: str) -> int | None:
    """Index into :data:`LAYERS` for a dotted module name (longest prefix).

    Returns ``None`` for modules outside every declared layer, which the
    layering rule treats as unconstrained.
    """
    best: tuple | None = None
    for position, layer in enumerate(LAYERS):
        for package in layer.packages:
            if module_name == package or module_name.startswith(package + "."):
                if best is None or len(package) > best[0]:
                    best = (len(package), position)
    return None if best is None else best[1]
