"""Interprocedural leakage-taint analysis backing F102 (``repro flow``).

The paper's protocol trains on the training fold only; a single
``fit(X_test)`` anywhere in the pipeline silently inflates every number
downstream (MLBench calls this the dominant failure of MLaaS
comparisons).  This module tracks values *derived from held-out data*:

* **sources** — the test outputs of ``train_test_split`` tuple unpacking,
  the second element of ``KFold``/``StratifiedKFold`` ``.split()``
  iteration, and ``.X_test`` / ``.y_test`` attribute loads;
* **propagation** — assignments, indexing, arithmetic, tuple packing,
  and a small passthrough set (``np.asarray`` and friends).  Unresolved
  calls *drop* taint, so the analysis errs toward silence;
* **sinks** — ``.fit`` / ``.fit_transform`` / ``.partial_fit`` calls.

Cross-function flows are handled with per-function summaries (which
parameters leak into a sink, which flow to the return value) iterated to
a fixpoint over the project call graph, so a helper that fits whatever it
is handed is flagged *at the call site that hands it test data*.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.tools.flow.graph import CallSite, FlowIndex, FunctionInfo, dotted_path

__all__ = [
    "SINK_METHODS",
    "TEST_ATTRS",
    "TEST_LABEL",
    "TaintFinding",
    "TaintSummary",
    "analyze_project_taint",
]

#: The label meaning "derived from a held-out test split".
TEST_LABEL = "<held-out>"

#: Attribute names that load held-out data off a split object.
TEST_ATTRS = frozenset({"X_test", "y_test"})

#: Method names that train on their arguments.
SINK_METHODS = frozenset({"fit", "fit_transform", "partial_fit"})

#: Calls that return their (array) argument semantically unchanged.
_PASSTHROUGH = frozenset({
    "asarray", "ascontiguousarray", "array", "copy", "astype", "ravel",
    "reshape", "hstack", "vstack", "concatenate", "column_stack", "tuple",
    "list", "sorted",
})

_MAX_ROUNDS = 20


@dataclass
class TaintSummary:
    """What one function does with taint on its parameters."""

    leaky_params: frozenset = frozenset()   # params that reach a sink
    return_params: frozenset = frozenset()  # params that flow to the return
    returns_test: bool = False              # body's own source flows to return


@dataclass(frozen=True)
class TaintFinding:
    """One place held-out data reaches training."""

    module_name: str
    lineno: int
    col: int
    message: str


@dataclass
class _Scope:
    """One analyzable scope: a function body or a module body."""

    module_name: str
    root: ast.AST
    params: tuple = ()
    key: tuple = ("", "")


def _scope_nodes(root: ast.AST):
    """Walk a scope without descending into nested function/class bodies."""
    stack = [root]
    while stack:
        node = stack.pop()
        if node is not root and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class _ScopeAnalysis:
    """Flow-insensitive taint fixpoint over one scope."""

    def __init__(self, index: FlowIndex, scope: _Scope, summaries: dict):
        self.index = index
        self.scope = scope
        self.summaries = summaries
        self.env: dict[str, frozenset] = {
            param: frozenset({param}) for param in scope.params
        }
        self.returns: set = set()
        self.leaks: list = []  # (labels, node, message)
        self.call_sites = {
            id(site.node): site
            for site in index.calls.get(scope.key, [])
        }

    # -- expression taint ------------------------------------------------

    def eval(self, node: ast.expr | None) -> frozenset:
        if node is None:
            return frozenset()
        if isinstance(node, ast.Name):
            return self.env.get(node.id, frozenset())
        if isinstance(node, ast.Attribute):
            base = self.eval(node.value)
            if node.attr in TEST_ATTRS:
                return base | {TEST_LABEL}
            return base
        if isinstance(node, ast.Subscript):
            return self.eval(node.value) | self.eval(node.slice)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out: frozenset = frozenset()
            for element in node.elts:
                out |= self.eval(element)
            return out
        if isinstance(node, ast.Starred):
            return self.eval(node.value)
        if isinstance(node, ast.BinOp):
            return self.eval(node.left) | self.eval(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.BoolOp):
            out = frozenset()
            for value in node.values:
                out |= self.eval(value)
            return out
        if isinstance(node, ast.IfExp):
            return self.eval(node.body) | self.eval(node.orelse)
        if isinstance(node, ast.NamedExpr):
            return self.eval(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            out = frozenset()
            for generator in node.generators:
                out |= self.eval(generator.iter)
            return out
        if isinstance(node, ast.Slice):
            return self.eval(node.lower) | self.eval(node.upper)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        return frozenset()

    def _eval_call(self, node: ast.Call) -> frozenset:
        path = dotted_path(node.func)
        final = path[-1] if path else None
        if final == "train_test_split":
            # Coarse: the packed result contains held-out parts; the
            # 4-tuple unpacking in _handle_assign is the precise case.
            return frozenset({TEST_LABEL})
        site = self.call_sites.get(id(node))
        if site is not None and site.target is not None:
            return self._eval_project_call(node, site)
        if final in _PASSTHROUGH:
            out: frozenset = frozenset()
            for arg in node.args:
                out |= self.eval(arg)
            for keyword in node.keywords:
                out |= self.eval(keyword.value)
            return out
        return frozenset()

    def _eval_project_call(self, node: ast.Call, site: CallSite) -> frozenset:
        target = self.index.functions.get(site.target)
        summary = self.summaries.get(site.target)
        if target is None or summary is None:
            return frozenset()
        out: frozenset = frozenset()
        if summary.returns_test:
            out |= {TEST_LABEL}
        for param, labels in self._bind_args(target, node):
            if param in summary.return_params:
                out |= labels
        return out

    def _bind_args(self, target: FunctionInfo, node: ast.Call):
        """Yield ``(param_name, labels)`` for each bindable argument."""
        positional = target.param_names()
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                continue
            if position < len(positional):
                yield positional[position], self.eval(arg)
        valid = set(target.all_param_names())
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg in valid:
                yield keyword.arg, self.eval(keyword.value)

    # -- statement handling ----------------------------------------------

    def _assign(self, name: str, labels: frozenset) -> bool:
        current = self.env.get(name, frozenset())
        merged = current | labels
        if merged != current:
            self.env[name] = merged
            return True
        return False

    def _bind_target(self, target: ast.expr, labels: frozenset) -> bool:
        changed = False
        if isinstance(target, ast.Name):
            changed |= self._assign(target.id, labels)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                changed |= self._bind_target(element, labels)
        elif isinstance(target, ast.Starred):
            changed |= self._bind_target(target.value, labels)
        return changed

    def _handle_assign(self, node: ast.stmt) -> bool:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign):
            targets, value = [node.target], node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], node.value
        else:
            return False
        if value is None:
            return False
        changed = False
        split_call = (
            isinstance(value, ast.Call)
            and (dotted_path(value.func) or ("",))[-1] == "train_test_split"
        )
        for target in targets:
            if (split_call and isinstance(target, (ast.Tuple, ast.List))
                    and len(target.elts) == 4):
                # X_train, X_test, y_train, y_test = train_test_split(...)
                base = frozenset()
                for arg in value.args:
                    base |= self.eval(arg)
                for position, element in enumerate(target.elts):
                    labels = base | ({TEST_LABEL} if position in (1, 3)
                                     else frozenset())
                    changed |= self._bind_target(element, labels)
            else:
                changed |= self._bind_target(target, self.eval(value))
        return changed

    def _handle_for(self, node: ast.For) -> bool:
        iter_call = node.iter
        if (isinstance(iter_call, ast.Call)
                and isinstance(iter_call.func, ast.Attribute)
                and iter_call.func.attr == "split"
                and isinstance(node.target, (ast.Tuple, ast.List))
                and len(node.target.elts) == 2):
            # for train_idx, test_idx in splitter.split(X, y): ...
            changed = self._bind_target(node.target.elts[0], frozenset())
            changed |= self._bind_target(
                node.target.elts[1], frozenset({TEST_LABEL})
            )
            return changed
        return self._bind_target(node.target, self.eval(node.iter))

    # -- driver ----------------------------------------------------------

    def run(self) -> None:
        for _ in range(_MAX_ROUNDS):
            changed = False
            for node in _scope_nodes(self.scope.root):
                if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    changed |= self._handle_assign(node)
                elif isinstance(node, ast.For):
                    changed |= self._handle_for(node)
            if not changed:
                break
        for node in _scope_nodes(self.scope.root):
            if isinstance(node, ast.Return):
                self.returns |= self.eval(node.value)
            elif isinstance(node, ast.Call):
                self._check_sink(node)

    def _check_sink(self, node: ast.Call) -> None:
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr in SINK_METHODS):
            for arg in [*node.args, *[k.value for k in node.keywords]]:
                labels = self.eval(arg)
                if labels:
                    self.leaks.append((
                        labels, node,
                        f"'.{node.func.attr}()' trains on it",
                    ))
            return
        site = self.call_sites.get(id(node))
        if site is None or site.target is None:
            return
        summary = self.summaries.get(site.target)
        target = self.index.functions.get(site.target)
        if summary is None or target is None:
            return
        for param, labels in self._bind_args(target, node):
            if param in summary.leaky_params and labels:
                callee = f"{site.target[0]}:{target.qualname}"
                self.leaks.append((
                    labels, node,
                    f"'{callee}' fits on its parameter {param!r}",
                ))

    def summary(self) -> TaintSummary:
        params = set(self.scope.params)
        leaky = set()
        for labels, _, _ in self.leaks:
            leaky |= labels & params
        return TaintSummary(
            leaky_params=frozenset(leaky),
            return_params=frozenset(self.returns & params),
            returns_test=TEST_LABEL in self.returns,
        )

    def findings(self) -> list:
        out = []
        for labels, node, how in self.leaks:
            if TEST_LABEL not in labels:
                continue
            out.append(TaintFinding(
                module_name=self.scope.module_name,
                lineno=node.lineno,
                col=node.col_offset,
                message=(
                    "held-out test data reaches training here: value is "
                    f"derived from a test split and {how}; fit only on "
                    "training folds (paper §3.2 protocol)"
                ),
            ))
        return out


@dataclass
class _ProjectTaint:
    summaries: dict = field(default_factory=dict)
    findings: list = field(default_factory=list)


def _scopes(index: FlowIndex):
    for key, info in index.functions.items():
        yield _Scope(
            module_name=info.module_name,
            root=info.node,
            params=tuple(info.all_param_names(skip_self=True)),
            key=key,
        )
    for name, module in index.modules.items():
        yield _Scope(module_name=name, root=module.tree, key=(name, ""))


def analyze_project_taint(index: FlowIndex) -> list:
    """Fixpoint the function summaries, then collect project findings."""
    state = _ProjectTaint()
    function_scopes = [s for s in _scopes(index) if s.key in index.functions]
    for _ in range(_MAX_ROUNDS):
        changed = False
        for scope in function_scopes:
            analysis = _ScopeAnalysis(index, scope, state.summaries)
            analysis.run()
            summary = analysis.summary()
            if state.summaries.get(scope.key) != summary:
                state.summaries[scope.key] = summary
                changed = True
        if not changed:
            break
    seen = set()
    for scope in _scopes(index):
        analysis = _ScopeAnalysis(index, scope, state.summaries)
        analysis.run()
        for finding in analysis.findings():
            key = (finding.module_name, finding.lineno, finding.message)
            if key not in seen:
                seen.add(key)
                state.findings.append(finding)
    return state.findings
