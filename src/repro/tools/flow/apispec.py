"""Public-API surface extraction and drift detection for F105.

The API surface is everything a downstream measurement script can import:
each public module's ``__all__``, the signature of every exported
function/class defined there, and — because sweeps construct estimators
blindly — the constructor parameter list of every ``BaseEstimator``
subclass.  The surface is serialized to ``api_spec.json`` next to this
module; ``repro flow`` diffs the tree against it and reports any drift,
and ``repro flow --update-spec`` rewrites it for intentional changes
(reviewed like any other spec edit).
"""

from __future__ import annotations

import ast
import json
from pathlib import Path

from repro.tools.flow.graph import FlowIndex

__all__ = [
    "DEFAULT_SPEC_PATH",
    "diff_surfaces",
    "extract_surface",
    "load_spec",
    "write_spec",
]

#: Where the checked-in API surface lives.
DEFAULT_SPEC_PATH = Path(__file__).resolve().parent / "api_spec.json"


def _is_public_module(name: str) -> bool:
    parts = name.split(".")
    return all(not p.startswith("_") for p in parts)


def _render_default(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    try:
        return ast.unparse(node)
    except ValueError:  # pragma: no cover - malformed tree
        return "<?>"


def _render_signature(fn: ast.AST) -> str:
    """Canonical, order-preserving signature string for a def node."""
    args = fn.args
    rendered: list[str] = []
    positional = [*args.posonlyargs, *args.args]
    defaults = [None] * (len(positional) - len(args.defaults)) + list(args.defaults)
    for arg, default in zip(positional, defaults):
        piece = arg.arg
        if default is not None:
            piece += f"={_render_default(default)}"
        rendered.append(piece)
    if args.posonlyargs:
        rendered.insert(len(args.posonlyargs), "/")
    if args.vararg is not None:
        rendered.append(f"*{args.vararg.arg}")
    elif args.kwonlyargs:
        rendered.append("*")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        piece = arg.arg
        if default is not None:
            piece += f"={_render_default(default)}"
        rendered.append(piece)
    if args.kwarg is not None:
        rendered.append(f"**{args.kwarg.arg}")
    return "(" + ", ".join(rendered) + ")"


def _literal_all(tree: ast.Module) -> list | None:
    for node in tree.body:
        if (isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "__all__"):
            value = node.value
            if isinstance(value, (ast.List, ast.Tuple)) and all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in value.elts
            ):
                return [e.value for e in value.elts]
    return None


def extract_surface(index: FlowIndex, estimator_roots=("BaseEstimator",)) -> dict:
    """The tree's public API surface as a JSON-serializable dict."""
    estimators = index.project.subclasses_of(set(estimator_roots))
    estimators |= set(estimator_roots)
    modules: dict[str, dict] = {}
    for name, module in index.modules.items():
        if not _is_public_module(name) or module.path.name == "__main__.py":
            continue
        exported = _literal_all(module.tree)
        if exported is None:
            continue
        symbols: dict[str, dict] = {}
        for export in sorted(set(exported)):
            local = index.symbols.get((name, export))
            if local is None or local.kind == "import":
                origin = index.resolve_symbol(name, export)
                record: dict = {"kind": "reexport"}
                if origin is not None:
                    record["from"] = origin.module_name
                symbols[export] = record
                continue
            if local.kind == "function":
                info = index.functions.get((name, export))
                symbols[export] = {
                    "kind": "function",
                    "signature": _render_signature(info.node) if info else "(?)",
                }
            elif local.kind == "class":
                record = {"kind": "class"}
                init = index.class_init(name, export)
                if init is not None:
                    record["signature"] = _render_signature(init.node)
                if export in estimators and export not in estimator_roots:
                    record["estimator_params"] = (
                        init.param_names() if init is not None else []
                    )
                symbols[export] = record
            else:
                symbols[export] = {"kind": "constant"}
        modules[name] = {
            "exports": sorted(set(exported)),
            "symbols": symbols,
        }
    return {"version": 1, "modules": modules}


def load_spec(path: Path) -> dict | None:
    """Parse a checked-in spec; None when absent or unreadable."""
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None


def write_spec(surface: dict, path: Path) -> None:
    """Serialize a surface deterministically (sorted keys, 2-space indent)."""
    Path(path).write_text(
        json.dumps(surface, indent=2, sort_keys=True) + "\n", encoding="utf-8",
    )


def diff_surfaces(spec: dict, current: dict) -> list:
    """Drift between the checked-in spec and the tree.

    Returns ``(module_name_or_None, symbol_or_None, message)`` triples;
    the caller anchors them to source locations.
    """
    drift: list = []
    spec_modules = spec.get("modules", {})
    current_modules = current.get("modules", {})
    for name in sorted(set(spec_modules) - set(current_modules)):
        drift.append((None, None,
                      f"public module {name!r} is recorded in api_spec.json "
                      "but no longer exists (or lost its __all__)"))
    for name in sorted(set(current_modules) - set(spec_modules)):
        drift.append((name, None,
                      f"public module {name!r} is not recorded in "
                      "api_spec.json; run 'repro flow --update-spec' if the "
                      "addition is intentional"))
    for name in sorted(set(spec_modules) & set(current_modules)):
        want, got = spec_modules[name], current_modules[name]
        missing = sorted(set(want["exports"]) - set(got["exports"]))
        added = sorted(set(got["exports"]) - set(want["exports"]))
        if missing:
            drift.append((name, None,
                          f"{name}.__all__ dropped exported names {missing} "
                          "present in api_spec.json"))
        if added:
            drift.append((name, None,
                          f"{name}.__all__ gained names {added} not in "
                          "api_spec.json; run --update-spec if intentional"))
        for symbol in sorted(set(want["symbols"]) & set(got["symbols"])):
            before, after = want["symbols"][symbol], got["symbols"][symbol]
            if before == after:
                continue
            for field in ("kind", "signature", "estimator_params"):
                if before.get(field) != after.get(field):
                    drift.append((name, symbol,
                                  f"{name}.{symbol}: {field} changed from "
                                  f"{before.get(field)!r} to "
                                  f"{after.get(field)!r} (api_spec.json)"))
    return drift
