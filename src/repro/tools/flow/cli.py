"""Command-line front end: ``repro flow`` / ``python -m repro.tools.flow``.

Same exit-code taxonomy as ``repro lint`` (:mod:`repro.tools.exitcodes`):

* ``0`` — clean (suppressed findings allowed), or spec updated;
* ``1`` — at least one unsuppressed violation;
* ``2`` — usage error (nonexistent path, no files found);
* ``3`` — the analyzer itself crashed (traceback on stderr).

``--update-spec`` re-extracts the public API surface and rewrites
``api_spec.json`` instead of diffing against it — the sanctioned way to
land an intentional API change (the spec diff then shows up in review).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.tools.flow import apispec
from repro.tools.flow.rules import default_flow_rules
from repro.tools.lint.reporters import REPORTERS

__all__ = [
    "DEFAULT_TARGET",
    "build_parser",
    "configure_parser",
    "main",
    "run_flow_command",
]

#: Default analysis target: the package's own source tree.
DEFAULT_TARGET = Path(__file__).resolve().parents[2]


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the flow arguments to ``parser`` (shared with ``repro.cli``)."""
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=sorted(REPORTERS), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include justified suppressions in the report",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the flow rule codes and exit",
    )
    parser.add_argument(
        "--spec", type=Path, default=None, metavar="PATH",
        help="API spec file for F105 (default: the checked-in api_spec.json)",
    )
    parser.add_argument(
        "--update-spec", action="store_true",
        help="rewrite the API spec from the current tree instead of "
             "diffing against it",
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    """Build the standalone parser for ``python -m repro.tools.flow``."""
    parser = argparse.ArgumentParser(
        prog="repro flow",
        description="project-wide data-flow and architecture analyzer "
                    "for the MLaaS reproduction",
    )
    return configure_parser(parser)


def _print_rules(out) -> int:
    for rule in default_flow_rules():
        print(f"{rule.code}  {rule.name:<20} {rule.description}", file=out)
    return 0


def run_flow_command(args: argparse.Namespace, out=None) -> int:
    """Execute a parsed flow invocation; returns the exit code."""
    out = out or sys.stdout
    if args.list_rules:
        return _print_rules(out)
    paths = args.paths or [DEFAULT_TARGET]
    for path in paths:
        if not Path(path).exists():
            print(f"error: no such file or directory: {path}", file=sys.stderr)
            return 2
    from repro.tools.flow.runner import build_flow_index, run_flow

    spec_path = args.spec or apispec.DEFAULT_SPEC_PATH
    if args.update_spec:
        index = build_flow_index(paths, root=Path.cwd())
        if not index.modules:
            print("error: no python files found under the given paths",
                  file=sys.stderr)
            return 2
        apispec.write_spec(apispec.extract_surface(index), spec_path)
        print(f"wrote API surface of {len(index.modules)} modules to "
              f"{spec_path}", file=out)
        return 0

    result = run_flow(paths, root=Path.cwd(), spec_path=spec_path)
    if result.n_files == 0:
        print("error: no python files found under the given paths",
              file=sys.stderr)
        return 2
    reporter = REPORTERS[args.format]
    print(reporter(result, show_suppressed=args.show_suppressed), file=out)
    return result.exit_code


def main(argv=None, out=None) -> int:
    """Entry point for ``python -m repro.tools.flow``."""
    from repro.tools.exitcodes import run_guarded

    args = build_parser().parse_args(argv)
    return run_guarded(run_flow_command, args, out=out)
