"""Command-line interface: ``python -m repro.cli <command>``.

Gives downstream users the common study operations without writing code:

* ``corpus``    — list the 119-dataset corpus (Fig 3 characteristics).
* ``platforms`` — list the platforms and their control surfaces (Table 1).
* ``baseline``  — run the zero-control protocol and print Table 3(a).
* ``optimized`` — run the full-sweep protocol and print Fig 4 / Table 3(b).
* ``boundary``  — probe a platform's decision boundary on a 2-D dataset.
* ``campaign``  — run a protocol through the concurrent campaign
  scheduler (:mod:`repro.service`): worker pool, retries, telemetry,
  checkpoint/resume, optional serial-equality verification.  With
  ``--processes N`` the CPU-bound grid fans out dataset-keyed shards
  over a process pool (bit-identical, resumable) instead of threads.
* ``serve``     — expose the platform simulators over HTTP
  (:mod:`repro.serving`): JSON endpoints for upload/train/predict,
  structured access logs, ``/metrics/summary`` percentiles.
* ``loadgen``   — drive a server (or an in-process loopback) with a
  seeded closed/open-loop request schedule and print the exact
  latency-percentile report.
* ``lint``      — check the source tree against the reproduction
  invariants (determinism, estimator contract, Table 1 conformance,
  exception hygiene, export sync); see :mod:`repro.tools.lint`.
* ``flow``      — project-wide data-flow & architecture analysis
  (layering DAG, leakage taint, seed flow, dead code, API drift); see
  :mod:`repro.tools.flow`.
* ``race``      — static concurrency & shared-state analysis (lock
  ordering, unguarded shared writes, check-then-act, process-boundary
  captures, blocking under locks, shared RNGs); see
  :mod:`repro.tools.race`.
* ``perf``      — static complexity & hot-path analysis (axis loops,
  quadratic growth, invariant calls, uncached refits, complexity-spec
  conformance, hot-loop allocations); see :mod:`repro.tools.perf`.
* ``shape``     — static array shape, dtype & aliasing analysis
  (shape algebra, dtype stability, alias mutation, substrate access,
  array-contract conformance, boundary validation); see
  :mod:`repro.tools.shape`.
* ``wire``      — static wire-contract, error-taxonomy &
  resource-lifecycle analysis of the serving layer (route/client/spec
  conformance, taxonomy round-trip, leaked resources, JSON safety,
  blocking handlers, metrics drift); see :mod:`repro.tools.wire`.
* ``check``     — run all six analyzers in one process over one shared
  parse with a merged report and worst-exit-code semantics; see
  :mod:`repro.tools.check`.

The study commands accept ``--datasets`` / ``--size-cap`` to bound
runtime.  The six analyzer subcommands (and ``check``) share the
exit-code taxonomy of :mod:`repro.tools.exitcodes`: 0 clean,
1 findings, 2 usage error, 3 analyzer crash.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import (
    boundary_linearity,
    platform_summary,
    probe_decision_boundary,
    render_table,
)
from repro.core import MLaaSStudy, StudyScale
from repro.datasets import CORPUS, load_dataset
from repro.exceptions import ValidationError
from repro.platforms import ALL_PLATFORMS, make_platform
from repro.serving import (
    AccessLog,
    HTTPPlatformClient,
    LoadgenConfig,
    PlatformHTTPServer,
    ServingGateway,
    ServingLimits,
    run_load,
    serve_background,
)
from repro.tools.exitcodes import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    run_guarded,
)
from repro.tools.flow.cli import configure_parser as _configure_flow_parser
from repro.tools.flow.cli import run_flow_command
from repro.tools.lint.cli import configure_parser as _configure_lint_parser
from repro.tools.lint.cli import run_lint_command
from repro.tools.perf.cli import configure_parser as _configure_perf_parser
from repro.tools.perf.cli import run_perf_command
from repro.tools.race.cli import configure_parser as _configure_race_parser
from repro.tools.race.cli import run_race_command
from repro.tools.check.cli import configure_parser as _configure_check_parser
from repro.tools.check.cli import run_check_command
from repro.tools.shape.cli import configure_parser as _configure_shape_parser
from repro.tools.shape.cli import run_shape_command
from repro.tools.wire.cli import configure_parser as _configure_wire_parser
from repro.tools.wire.cli import run_wire_command

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MLaaS complexity-vs-performance measurement study "
                    "(IMC'17 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("corpus", help="list the 119-dataset corpus")
    sub.add_parser("platforms", help="list platforms and control surfaces")

    for name, help_text in (
        ("baseline", "run the zero-control protocol (Table 3a)"),
        ("optimized", "run the full-sweep protocol (Fig 4 / Table 3b)"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("--datasets", type=int, default=8,
                         help="corpus subset size (default 8)")
        cmd.add_argument("--size-cap", type=int, default=250,
                         help="per-dataset sample cap (default 250)")
        cmd.add_argument("--seed", type=int, default=1)

    campaign = sub.add_parser(
        "campaign",
        help="run a measurement campaign on the concurrent scheduler "
             "(threads) or the process-sharded engine (--processes)",
    )
    campaign.add_argument("--protocol", choices=["baseline", "optimized"],
                          default="baseline")
    campaign.add_argument("--workers", type=int, default=None,
                          help="worker threads (default 4; ignored when "
                               "--processes > 1)")
    campaign.add_argument("--processes", type=int, default=1,
                          help="worker processes for the CPU-bound "
                               "dataset-sharded backend (default 1: "
                               "thread scheduler)")
    campaign.add_argument("--datasets", type=int, default=6,
                          help="corpus subset size (default 6)")
    campaign.add_argument("--size-cap", type=int, default=200,
                          help="per-dataset sample cap (default 200)")
    campaign.add_argument("--seed", type=int, default=1)
    campaign.add_argument("--checkpoint", default=None,
                          help="ResultStore JSON checkpoint path")
    campaign.add_argument("--resume", default=None,
                          help="checkpoint to resume from")
    campaign.add_argument("--telemetry-out", default=None,
                          help="write the telemetry JSON snapshot here")
    campaign.add_argument("--compare-serial", action="store_true",
                          help="also run the serial sweep and verify the "
                               "campaign produced identical results")

    boundary = sub.add_parser(
        "boundary", help="probe a platform's decision boundary"
    )
    boundary.add_argument("platform", choices=[c.name for c in ALL_PLATFORMS])
    boundary.add_argument("--dataset", default="synthetic/circle",
                          help="a 2-feature corpus dataset name")
    boundary.add_argument("--resolution", type=int, default=60)
    boundary.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="serve the platform simulators over HTTP"
    )
    serve.add_argument("--platform", action="append", dest="platforms",
                       choices=[c.name for c in ALL_PLATFORMS],
                       help="platform to mount (repeatable; default all)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0: pick a free one)")
    serve.add_argument("--seed", type=int, default=0,
                       help="random_state for the served platforms")
    serve.add_argument("--access-log", default=None,
                       help="append structured JSONL access records here")
    serve.add_argument("--max-requests", type=int, default=None,
                       help="shut down after this many requests")
    serve.add_argument("--max-body-bytes", type=int, default=8_000_000)
    serve.add_argument("--max-batch-rows", type=int, default=10_000)
    serve.add_argument("--soft-timeout", type=float, default=30.0,
                       help="per-request soft deadline in seconds "
                            "(0 disables it)")

    loadgen = sub.add_parser(
        "loadgen", help="run a seeded load schedule against a server"
    )
    target = loadgen.add_mutually_exclusive_group(required=True)
    target.add_argument("--url", default=None,
                        help="base URL of a running repro serve instance")
    target.add_argument("--loopback", action="store_true",
                        help="boot an in-process loopback server and "
                             "drive it over real HTTP")
    loadgen.add_argument("--platform", default="bigml",
                         choices=[c.name for c in ALL_PLATFORMS])
    loadgen.add_argument("--clients", type=int, default=4)
    loadgen.add_argument("--predicts", type=int, default=3,
                         help="batch predictions per client session")
    loadgen.add_argument("--mode", choices=["closed", "open"],
                         default="closed")
    loadgen.add_argument("--spacing", type=float, default=0.01,
                         help="mean interarrival seconds (open mode)")
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--samples", type=int, default=40)
    loadgen.add_argument("--features", type=int, default=5)
    loadgen.add_argument("--query-rows", type=int, default=8)
    loadgen.add_argument("--output", default=None,
                         help="write the JSON report here")
    loadgen.add_argument("--compare-serial", action="store_true",
                         help="re-run the schedule serially and verify "
                              "the payload digests match")

    lint = sub.add_parser(
        "lint", help="check the source against the reproduction invariants"
    )
    _configure_lint_parser(lint)

    flow = sub.add_parser(
        "flow", help="project-wide data-flow & architecture analysis"
    )
    _configure_flow_parser(flow)

    race = sub.add_parser(
        "race", help="static concurrency & shared-state analysis"
    )
    _configure_race_parser(race)

    perf = sub.add_parser(
        "perf", help="static complexity & hot-path analysis"
    )
    _configure_perf_parser(perf)

    shape = sub.add_parser(
        "shape", help="static array shape, dtype & aliasing analysis"
    )
    _configure_shape_parser(shape)

    wire = sub.add_parser(
        "wire", help="static wire-contract, error-taxonomy & "
                     "resource-lifecycle analysis"
    )
    _configure_wire_parser(wire)

    check = sub.add_parser(
        "check", help="run all six static analyzers over one shared parse"
    )
    _configure_check_parser(check)
    return parser


def _cmd_corpus(out) -> int:
    rows = [
        [spec.name, spec.domain, spec.concept, f"{spec.n_samples:,}",
         spec.n_features]
        for spec in CORPUS
    ]
    print(render_table(
        ["name", "domain", "concept", "samples", "features"], rows,
        title=f"Corpus: {len(CORPUS)} datasets",
    ), file=out)
    return 0


def _cmd_platforms(out) -> int:
    rows = []
    for cls in ALL_PLATFORMS:
        platform = cls()
        rows.append([
            platform.name,
            platform.complexity,
            ",".join(sorted(platform.exposed_dimensions)) or "none",
            ",".join(platform.classifier_abbrs()) or "(hidden)",
            len(platform.controls.feature_selectors),
        ])
    print(render_table(
        ["platform", "complexity", "controls", "classifiers", "# feat sel"],
        rows, title="Platforms (Table 1 control surfaces)",
    ), file=out)
    return 0


def _cmd_study(args, optimized: bool, out) -> int:
    scale = StudyScale(
        max_datasets=args.datasets, size_cap=args.size_cap,
        feature_cap=12, para_grid="single_axis" if optimized else "default",
    )
    study = MLaaSStudy(scale=scale, random_state=args.seed)
    store = study.run_optimized() if optimized else study.run_baseline()
    summaries = platform_summary(store)
    print(render_table(
        ["platform", "avg fried.", "f-score", "accuracy", "precision", "recall"],
        [
            [s.platform, f"{s.avg_friedman:.1f}"]
            + [f"{s.avg[m]:.3f}" for m in
               ("f_score", "accuracy", "precision", "recall")]
            for s in summaries
        ],
        title=("Optimized (best configuration per dataset)" if optimized
               else "Baseline (zero control)"),
    ), file=out)
    return 0


def _cmd_campaign(args, out) -> int:
    import time

    from repro.core.results import ResultStore

    scale = StudyScale(
        max_datasets=args.datasets, size_cap=args.size_cap,
        feature_cap=12, para_grid="default",
    )
    processes = args.processes
    workers = args.workers
    if workers is None:
        workers = 1 if processes > 1 else 4
    try:
        study = MLaaSStudy(scale=scale, random_state=args.seed,
                           workers=workers, processes=processes)
    except ValidationError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    resume_from = ResultStore.load(args.resume) if args.resume else None
    started = time.perf_counter()
    store = study.run_campaign(
        protocol=args.protocol,
        resume_from=resume_from,
        checkpoint_path=args.checkpoint,
    )
    campaign_seconds = time.perf_counter() - started

    backend = (f"processes={processes}" if processes > 1
               else f"workers={workers}")
    summaries = platform_summary(store)
    print(render_table(
        ["platform", "avg fried.", "f-score", "accuracy", "precision", "recall"],
        [
            [s.platform, f"{s.avg_friedman:.1f}"]
            + [f"{s.avg[m]:.3f}" for m in
               ("f_score", "accuracy", "precision", "recall")]
            for s in summaries
        ],
        title=f"Campaign ({args.protocol}, {backend}): "
              f"{len(store)} measurements in {campaign_seconds:.2f}s",
    ), file=out)

    telemetry = study.telemetry
    snapshot = telemetry.snapshot()
    counters = snapshot["counters"]
    if processes > 1:
        print(f"\ntelemetry: {counters.get('shards_done', 0)}/"
              f"{counters.get('shards_total', 0)} shards, "
              f"{counters.get('jobs_resumed', 0)} resumed, "
              f"{counters.get('jobs_failed', 0)} failed jobs, "
              f"fit cache {counters.get('fit_cache_hits', 0)} hits / "
              f"{counters.get('fit_cache_misses', 0)} misses", file=out)
    else:
        print(f"\ntelemetry: {counters.get('requests_total', 0)} requests, "
              f"{counters.get('retries_total', 0)} retries, "
              f"{counters.get('jobs_resumed', 0)} resumed, "
              f"{counters.get('jobs_failed', 0)} failed jobs", file=out)
    if args.telemetry_out:
        telemetry.save(args.telemetry_out)
        print(f"telemetry snapshot written to {args.telemetry_out}", file=out)

    if args.compare_serial:
        serial_study = MLaaSStudy(scale=scale, random_state=args.seed)
        started = time.perf_counter()
        serial_store = (serial_study.run_optimized()
                        if args.protocol == "optimized"
                        else serial_study.run_baseline())
        serial_seconds = time.perf_counter() - started
        matches = list(serial_store) == list(store)
        print(f"serial sweep: {len(serial_store)} measurements in "
              f"{serial_seconds:.2f}s — campaign results "
              f"{'IDENTICAL' if matches else 'DIFFER'}", file=out)
        if not matches:
            print("error: campaign results diverge from the serial sweep",
                  file=sys.stderr)
            return 1
    return 0


def _cmd_serve(args, out) -> int:
    """Boot the HTTP front-end; blocks until shutdown or budget."""
    names = list(dict.fromkeys(
        args.platforms or [cls.name for cls in ALL_PLATFORMS]
    ))
    try:
        limits = ServingLimits(
            max_body_bytes=args.max_body_bytes,
            max_batch_rows=args.max_batch_rows,
            soft_timeout_seconds=(args.soft_timeout
                                  if args.soft_timeout > 0 else None),
        )
    except ValidationError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    platforms = [make_platform(name, random_state=args.seed)
                 for name in names]
    gateway = ServingGateway(
        platforms, limits=limits, access_log=AccessLog(args.access_log),
    )
    server = PlatformHTTPServer(
        gateway, host=args.host, port=args.port,
        max_requests=args.max_requests,
    )
    # The banner writes to an arbitrary stream and can raise (closed
    # pipe); it must not sit between the bind and the try/finally that
    # owns the socket, or a failed write leaks the listening port.
    try:
        print(f"serving {', '.join(names)} at {server.url}", file=out,
              flush=True)
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        gateway.access_log.flush()
    print("server stopped", file=out)
    return EXIT_CLEAN


def _cmd_loadgen(args, out) -> int:
    """Run a seeded load schedule; exit 1 on failures or digest drift."""
    server = thread = None
    try:
        config = LoadgenConfig(
            clients=args.clients,
            predicts_per_client=args.predicts,
            mode=args.mode,
            arrival_spacing_seconds=args.spacing,
            seed=args.seed,
            samples=args.samples,
            features=args.features,
            query_rows=args.query_rows,
        )
        if args.loopback:
            gateway = ServingGateway(
                [make_platform(args.platform, random_state=args.seed)]
            )
            server, thread = serve_background(gateway)
            base_url = server.url
        else:
            base_url = args.url

        def factory(client_id: str) -> HTTPPlatformClient:
            return HTTPPlatformClient(
                base_url, args.platform, client_id=client_id
            )

        report = run_load(factory, config)
        if args.compare_serial:
            serial = run_load(factory, config, parallel=False)
            report["serial_payload_digest"] = serial["payload_digest"]
            report["serial_equivalent"] = (
                serial["payload_digest"] == report["payload_digest"]
            )
    except ValidationError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    finally:
        if server is not None:
            server.shutdown()
            thread.join()
            server.server_close()
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered, file=out)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        print(f"report written to {args.output}", file=out)
    if report["requests_failed"]:
        print(f"error: {report['requests_failed']} requests failed "
              f"({report['failures']})", file=sys.stderr)
        return EXIT_FINDINGS
    if args.compare_serial and not report["serial_equivalent"]:
        print("error: concurrent payload digest diverges from the serial "
              "run of the same schedule", file=sys.stderr)
        return EXIT_FINDINGS
    return EXIT_CLEAN


def _cmd_boundary(args, out) -> int:
    dataset = load_dataset(args.dataset, size_cap=500)
    if dataset.X.shape[1] != 2:
        print(f"error: {args.dataset} has {dataset.X.shape[1]} features; "
              "boundary probing needs exactly 2", file=sys.stderr)
        return 2
    split = dataset.split(random_state=args.seed)
    platform = make_platform(args.platform, random_state=args.seed)
    probe = probe_decision_boundary(
        platform, split.X_train, split.y_train, resolution=args.resolution
    )
    print(probe.render_ascii(width=min(60, args.resolution)), file=out)
    linearity = boundary_linearity(probe)
    verdict = "linear" if linearity > 0.95 else "NON-linear"
    print(f"\nboundary linearity on {args.dataset}: {linearity:.3f} "
          f"({verdict})", file=out)
    return 0


def main(argv=None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "corpus":
        return _cmd_corpus(out)
    if args.command == "platforms":
        return _cmd_platforms(out)
    if args.command == "baseline":
        return _cmd_study(args, optimized=False, out=out)
    if args.command == "optimized":
        return _cmd_study(args, optimized=True, out=out)
    if args.command == "campaign":
        # Same 0/1/2/3 exit taxonomy as the analyzers: 0 clean, 1 the
        # campaign diverged from serial, 2 unusable invocation, 3 crash.
        return run_guarded(_cmd_campaign, args, out=out)
    if args.command == "boundary":
        return _cmd_boundary(args, out=out)
    if args.command == "serve":
        return run_guarded(_cmd_serve, args, out=out)
    if args.command == "loadgen":
        return run_guarded(_cmd_loadgen, args, out=out)
    if args.command == "lint":
        return run_guarded(run_lint_command, args, out=out)
    if args.command == "flow":
        return run_guarded(run_flow_command, args, out=out)
    if args.command == "race":
        return run_guarded(run_race_command, args, out=out)
    if args.command == "perf":
        return run_guarded(run_perf_command, args, out=out)
    if args.command == "shape":
        return run_guarded(run_shape_command, args, out=out)
    if args.command == "wire":
        return run_guarded(run_wire_command, args, out=out)
    if args.command == "check":
        return run_guarded(run_check_command, args, out=out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
