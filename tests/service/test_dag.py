"""Tests for the resumable campaign DAG's grouping and state machine."""

import pytest

from repro.datasets import load_corpus
from repro.exceptions import ValidationError
from repro.platforms import Amazon, Google
from repro.core.config_space import baseline_configuration
from repro.service import CampaignDAG, JobStatus, ShardNode, build_campaign
from repro.service.dag import JobStatus as DagJobStatus


@pytest.fixture(scope="module")
def corpus():
    return load_corpus(max_datasets=3, size_cap=120, feature_cap=8,
                       random_state=0)


@pytest.fixture()
def dag(corpus):
    platforms = [Google(random_state=0), Amazon(random_state=0)]
    jobs = build_campaign(
        platforms, corpus,
        {p.name: [baseline_configuration(p)] for p in platforms},
    )
    return CampaignDAG.from_jobs(jobs)


def test_from_jobs_groups_by_dataset_in_serial_order(dag, corpus):
    assert [shard.dataset for shard in dag.shards] \
        == [dataset.name for dataset in corpus]
    assert [shard.shard_id for shard in dag.shards] == [0, 1, 2]
    # 2 platforms x 1 configuration -> 2 jobs per dataset shard, and the
    # shards partition the serial index space exactly.
    assert all(len(shard) == 2 for shard in dag.shards)
    covered = sorted(
        index for shard in dag.shards for index in shard.job_indices
    )
    assert covered == list(range(6))


def test_constructor_rejects_non_partition():
    shards = [ShardNode(shard_id=0, dataset="a", job_indices=(0, 1))]
    with pytest.raises(ValidationError, match="partition"):
        CampaignDAG(shards, n_jobs=3)
    overlapping = [
        ShardNode(shard_id=0, dataset="a", job_indices=(0, 1)),
        ShardNode(shard_id=1, dataset="b", job_indices=(1, 2)),
    ]
    with pytest.raises(ValidationError, match="partition"):
        CampaignDAG(overlapping, n_jobs=3)


def test_job_and_shard_state_transitions(dag):
    shard = dag.shards[0]
    assert dag.shard_status(shard.shard_id) is JobStatus.PENDING
    dag.mark_shard_running(shard.shard_id)
    assert dag.shard_status(shard.shard_id) is JobStatus.RUNNING
    assert all(dag.job_status(i) is JobStatus.RUNNING
               for i in shard.job_indices)
    for index in shard.job_indices:
        dag.mark_job_done(index)
    assert dag.shard_status(shard.shard_id) is JobStatus.DONE
    assert not dag.merge_ready()   # other shards still pending
    assert shard not in dag.pending_shards()


def test_failed_shard_wins_and_spares_done_jobs(dag):
    shard = dag.shards[1]
    done, open_job = shard.job_indices
    dag.mark_job_done(done)
    dag.mark_shard_failed(shard.shard_id)
    assert dag.shard_status(shard.shard_id) is JobStatus.FAILED
    assert dag.job_status(done) is JobStatus.DONE
    assert dag.job_status(open_job) is JobStatus.FAILED
    assert dag.summary()["shards"]["failed"] == 1


def test_apply_resume_marks_only_new_indices(dag):
    # Shard 0 (the first dataset) holds one job per platform: the serial
    # enumeration is platform-major, so its indices are 0 and 3.
    assert dag.shards[0].job_indices == (0, 3)
    assert dag.apply_resume([0, 3]) == 2
    assert dag.apply_resume([0, 3, 1]) == 1   # 0 and 3 already done
    assert dag.pending_jobs(0) == []
    assert [shard.shard_id for shard in dag.pending_shards()] == [1, 2]


def test_merge_ready_after_all_jobs_done(dag):
    for shard in dag.shards:
        for index in shard.job_indices:
            dag.mark_job_done(index)
    assert dag.merge_ready()
    assert dag.summary() == {
        "shards": {"done": 3},
        "jobs": {"done": 6},
    }


def test_status_enum_is_json_friendly():
    assert DagJobStatus.DONE.value == "done"
    assert isinstance(JobStatus.PENDING, str)
