"""Tests for the process-sharded campaign engine's determinism contract."""

import random

import pytest

from repro.core import ExperimentRunner, MLaaSStudy, StudyScale
from repro.core.config_space import (
    baseline_configuration,
    enumerate_configurations,
)
from repro.core.results import ResultStore
from repro.datasets import load_corpus
from repro.exceptions import ValidationError
from repro.platforms import ALL_PLATFORMS, Amazon, BigML, Google
from repro.service import (
    ShardResult,
    ShardedCampaign,
    VirtualClock,
    merge_cache_stats,
    stitch_results,
)


class ExplodingGoogle(Google):
    """Module-level (hence picklable) platform that dies in the worker."""

    def upload_dataset(self, *args, **kwargs):
        raise RuntimeError("worker boom")


@pytest.fixture(scope="module")
def corpus():
    return load_corpus(max_datasets=3, size_cap=120, feature_cap=8,
                       random_state=0)


def _serial_baseline(platform_classes, corpus, seed=0):
    runner = ExperimentRunner(split_seed=7)
    store = ResultStore()
    for cls in platform_classes:
        platform = cls(random_state=seed)
        store.extend(runner.sweep(
            platform, corpus, [baseline_configuration(platform)]
        ))
    return store


def _sharded_baseline(platform_classes, corpus, processes, seed=0, **kwargs):
    platforms = [cls(random_state=seed) for cls in platform_classes]
    engine = ShardedCampaign(processes=processes)
    store = engine.run(
        ExperimentRunner(split_seed=7), platforms, corpus,
        {p.name: [baseline_configuration(p)] for p in platforms},
        **kwargs,
    )
    return store, engine


def test_process_campaign_matches_serial_bit_for_bit(tmp_path, corpus):
    serial = _serial_baseline(ALL_PLATFORMS, corpus)
    for processes in (1, 2):
        sharded, engine = _sharded_baseline(
            ALL_PLATFORMS, corpus, processes=processes
        )
        assert list(sharded) == list(serial), f"processes={processes}"
        counters = engine.telemetry.snapshot()["counters"]
        assert counters["jobs_total"] == len(serial)
        assert counters["shards_done"] == counters["shards_total"] \
            == len(corpus)
        assert engine.dag.merge_ready()
    # Checkpoint files are byte-identical too: the saved JSON is the
    # serialized contract, not just the in-memory equality.
    serial_path, sharded_path = tmp_path / "serial.json", tmp_path / "s.json"
    serial.save(serial_path)
    sharded.save(sharded_path)
    assert serial_path.read_bytes() == sharded_path.read_bytes()


def test_shard_cache_is_shared_across_candidates(corpus):
    local = [cls for cls in ALL_PLATFORMS if cls.name == "local"][0]
    platform = local(random_state=0)
    configs = [c for c in enumerate_configurations(platform)
               if c.feature_selection == "f_classif"][:3]
    engine = ShardedCampaign(processes=2)
    store = engine.run(
        ExperimentRunner(split_seed=7), [local(random_state=0)], corpus,
        {"local": configs},
    )
    assert len(list(store)) == len(configs) * len(corpus)
    stats = engine.fit_cache_stats
    # One feature-step fit per dataset shard, replayed for the other
    # candidates of that shard.
    assert stats["misses"] == len(corpus)
    assert stats["hits"] == (len(configs) - 1) * len(corpus)
    counters = engine.telemetry.snapshot()["counters"]
    assert counters["fit_cache_hits"] == stats["hits"]


def test_kill_then_resume_matches_uninterrupted_serial(tmp_path, corpus):
    serial = _serial_baseline(ALL_PLATFORMS, corpus)
    checkpoint = tmp_path / "campaign.json"
    partial, first = _sharded_baseline(
        ALL_PLATFORMS, corpus, processes=2,
        checkpoint_path=checkpoint, max_shards=1,
    )
    # The budgeted run completed exactly one dataset shard and left a
    # loadable checkpoint behind (the kill stand-in).
    assert len(list(partial)) == len(ALL_PLATFORMS)
    assert first.dag.summary()["shards"]["done"] == 1
    recovered = ResultStore.load(checkpoint)
    assert list(recovered) == list(partial)

    resumed, second = _sharded_baseline(
        ALL_PLATFORMS, corpus, processes=2,
        checkpoint_path=checkpoint, resume_from=recovered,
    )
    assert list(resumed) == list(serial)
    counters = second.telemetry.snapshot()["counters"]
    assert counters["jobs_resumed"] == len(ALL_PLATFORMS)
    assert counters["shards_done"] == len(corpus) - 1
    assert list(ResultStore.load(checkpoint)) == list(serial)


def test_stitch_results_is_completion_order_independent():
    shard_results = [
        ShardResult(shard_id=i, dataset=f"d{i}",
                    results=((2 * i, f"r{2 * i}"), (2 * i + 1, f"r{2 * i + 1}")),
                    cache_stats={"entries": i, "hits": 2 * i, "misses": 1})
        for i in range(4)
    ]
    expected = [f"r{j}" for j in range(8)]
    for seed in range(5):
        shuffled = shard_results[:]
        random.Random(seed).shuffle(shuffled)
        assert stitch_results([None] * 8, shuffled) == expected
        merged = merge_cache_stats(
            {r.shard_id: r.cache_stats for r in shuffled}
        )
        assert merged == {"entries": 6, "hits": 12, "misses": 4}


def test_worker_exceptions_propagate_and_fail_the_shard(corpus):
    with pytest.raises(RuntimeError, match="worker boom"):
        _sharded_baseline([ExplodingGoogle], corpus, processes=2)


def test_engine_validates_parameters(corpus):
    with pytest.raises(ValidationError, match="processes"):
        ShardedCampaign(processes=0)
    with pytest.raises(ValidationError, match="max_inflight"):
        ShardedCampaign(max_inflight_per_worker=0)

    class LocalOnly(Google):
        pass

    with pytest.raises(ValidationError, match="module-level"):
        ShardedCampaign(processes=2).run(
            ExperimentRunner(split_seed=7),
            [LocalOnly(random_state=0)], corpus,
            {"google": [baseline_configuration(LocalOnly(random_state=0))]},
        )

    clocked = BigML(random_state=0, clock=VirtualClock())
    with pytest.raises(ValidationError, match="clock"):
        ShardedCampaign(processes=2).run(
            ExperimentRunner(split_seed=7), [clocked], corpus,
            {"bigml": [baseline_configuration(clocked)]},
        )


def test_study_routes_processes_through_sharded_engine():
    scale = StudyScale.tiny()
    serial = MLaaSStudy(
        platforms=[Amazon, BigML], scale=scale, random_state=3,
    ).run_baseline()
    processed = MLaaSStudy(
        platforms=[Amazon, BigML], scale=scale, random_state=3, processes=2,
    )
    store = processed.run_baseline()
    assert list(store) == list(serial)
    counters = processed.telemetry.snapshot()["counters"]
    assert counters["shards_done"] == scale.max_datasets


def test_study_rejects_conflicting_backends():
    with pytest.raises(ValidationError, match="not both"):
        MLaaSStudy(platforms=[BigML], workers=2, processes=2)
    with pytest.raises(ValidationError, match="clock"):
        MLaaSStudy(platforms=[BigML], processes=2, clock=VirtualClock())
    with pytest.raises(ValidationError, match="processes"):
        MLaaSStudy(platforms=[BigML], processes=0)
