"""Tests for the concurrent campaign scheduler's determinism contract."""

import pytest

from repro.core import Configuration, ExperimentRunner, MLaaSStudy, StudyScale
from repro.core.config_space import baseline_configuration
from repro.core.results import ResultStore
from repro.datasets import load_corpus
from repro.exceptions import ValidationError
from repro.platforms import ALL_PLATFORMS, Amazon, BigML, Google
from repro.service import (
    CampaignScheduler,
    RetryPolicy,
    VirtualClock,
    build_campaign,
)


@pytest.fixture(scope="module")
def corpus():
    return load_corpus(max_datasets=3, size_cap=120, feature_cap=8,
                       random_state=0)


def _serial_baseline(platform_classes, corpus, seed=0):
    runner = ExperimentRunner(split_seed=7)
    store = ResultStore()
    for cls in platform_classes:
        platform = cls(random_state=seed)
        store.extend(runner.sweep(
            platform, corpus, [baseline_configuration(platform)]
        ))
    return store


def _campaign_baseline(platform_classes, corpus, workers, seed=0, **kwargs):
    platforms = [cls(random_state=seed) for cls in platform_classes]
    scheduler = CampaignScheduler(workers=workers, seed=seed, **kwargs)
    store = scheduler.run(
        ExperimentRunner(split_seed=7), platforms, corpus,
        {p.name: [baseline_configuration(p)] for p in platforms},
    )
    return store, scheduler


def test_build_campaign_enumerates_serial_order(corpus):
    platforms = [Google(random_state=0), Amazon(random_state=0)]
    configurations = {
        "google": [baseline_configuration(platforms[0])],
        "amazon": [baseline_configuration(platforms[1])],
    }
    jobs = build_campaign(platforms, corpus, configurations)
    assert [j.index for j in jobs] == list(range(6))
    assert [j.platform_name for j in jobs] == ["google"] * 3 + ["amazon"] * 3
    assert [j.dataset.name for j in jobs[:3]] == [d.name for d in corpus]


def test_build_campaign_requires_configurations_for_every_platform(corpus):
    with pytest.raises(ValidationError, match="no configurations"):
        build_campaign([Google(random_state=0)], corpus, {"amazon": []})


def test_campaign_matches_serial_sweep_bit_for_bit(corpus):
    serial = _serial_baseline(ALL_PLATFORMS, corpus)
    for workers in (1, 4):
        concurrent, scheduler = _campaign_baseline(
            ALL_PLATFORMS, corpus, workers=workers
        )
        assert list(concurrent) == list(serial), f"workers={workers}"
        snapshot = scheduler.telemetry.snapshot()
        assert snapshot["counters"]["jobs_total"] == len(serial)
        assert snapshot["counters"]["jobs_failed"] == sum(
            1 for r in serial if not r.ok
        )


def test_campaign_equality_with_higher_platform_cap(corpus):
    serial = _serial_baseline([Amazon, BigML], corpus)
    concurrent, _ = _campaign_baseline(
        [Amazon, BigML], corpus, workers=4, per_platform_cap=2,
    )
    assert list(concurrent) == list(serial)


def test_campaign_multi_config_sweep_matches_serial(corpus):
    configurations = [
        Configuration.make(classifier="LR", params={"maxIter": 10}),
        Configuration.make(classifier="LR", params={"maxIter": 1000}),
        Configuration.make(classifier="LR", params={"regParam": 1.0}),
    ]
    runner = ExperimentRunner(split_seed=7)
    serial = runner.sweep(Amazon(random_state=0), corpus, configurations)

    scheduler = CampaignScheduler(workers=3, seed=0)
    concurrent = scheduler.run(
        ExperimentRunner(split_seed=7), [Amazon(random_state=0)], corpus,
        configurations,  # plain sequence: applied to every platform
    )
    assert list(concurrent) == list(serial)


def test_campaign_retries_quota_errors_and_completes(corpus):
    clock = VirtualClock()
    platform = Google(random_state=0, rate_limit_per_minute=3, clock=clock)
    scheduler = CampaignScheduler(
        workers=2, clock=clock, seed=0,
        retry_policy=RetryPolicy(max_attempts=8, base_delay=8.0),
    )
    store = scheduler.run(
        ExperimentRunner(split_seed=7), [platform], corpus,
        {"google": [baseline_configuration(platform)]},
    )
    assert len(store) == len(corpus)
    assert all(result.ok for result in store)
    snapshot = scheduler.telemetry.snapshot()
    assert snapshot["platforms"]["google"]["errors"]["QuotaExceededError"] >= 1
    assert snapshot["counters"]["retries_total"] >= 1
    assert clock.total_slept > 0  # quota windows were waited out virtually


def test_campaign_checkpoint_and_resume_roundtrip(tmp_path, corpus):
    platforms = [Google, Amazon]
    uninterrupted, _ = _campaign_baseline(platforms, corpus, workers=2)

    checkpoint = tmp_path / "campaign.json"
    partial, _ = _campaign_baseline(
        [Google], corpus, workers=2,
    )
    partial.save(checkpoint)

    resumed_platforms = [cls(random_state=0) for cls in platforms]
    scheduler = CampaignScheduler(workers=2, seed=0)
    resumed = scheduler.run(
        ExperimentRunner(split_seed=7), resumed_platforms, corpus,
        {p.name: [baseline_configuration(p)] for p in resumed_platforms},
        resume_from=ResultStore.load(checkpoint),
        checkpoint_path=checkpoint, checkpoint_every=1,
    )
    assert [r.to_dict() for r in resumed] == \
           [r.to_dict() for r in uninterrupted]
    # Only the amazon half was measured; the google half was resumed.
    assert scheduler.telemetry.counter_value("jobs_resumed") == len(corpus)
    # The final checkpoint holds the full campaign.
    assert len(ResultStore.load(checkpoint)) == len(resumed)


def test_campaign_worker_exceptions_propagate(corpus):
    class Exploding(Amazon):
        def upload_dataset(self, X, y, name="dataset"):
            raise RuntimeError("boom: programming error, not a PlatformError")

    scheduler = CampaignScheduler(workers=2, seed=0)
    platform = Exploding(random_state=0)
    with pytest.raises(RuntimeError, match="boom"):
        scheduler.run(
            ExperimentRunner(split_seed=7), [platform], corpus,
            {"amazon": [baseline_configuration(platform)]},
        )


def test_dispatch_crash_still_joins_every_worker(corpus, monkeypatch):
    # Regression: a failure in the dispatch loop itself (not in a
    # worker) must still send the queue sentinels and join the worker
    # threads, or each crashed campaign leaks its whole pool.
    import threading

    def exploding_pick(order, cursor, pending, in_flight, cap):
        raise RuntimeError("boom: dispatcher failure")

    monkeypatch.setattr(CampaignScheduler, "_pick",
                        staticmethod(exploding_pick))
    scheduler = CampaignScheduler(workers=3, seed=0)
    platform = Amazon(random_state=0)
    with pytest.raises(RuntimeError, match="boom: dispatcher"):
        scheduler.run(
            ExperimentRunner(split_seed=7), [platform], corpus,
            {"amazon": [baseline_configuration(platform)]},
        )
    leftovers = [t for t in threading.enumerate()
                 if t.name.startswith("campaign-worker")]
    for thread in leftovers:
        thread.join(timeout=5)
    assert not any(t.is_alive() for t in leftovers), \
        "campaign worker thread(s) leaked after a dispatcher crash"


def test_scheduler_validates_parameters():
    with pytest.raises(ValidationError):
        CampaignScheduler(workers=0)
    with pytest.raises(ValidationError):
        CampaignScheduler(per_platform_cap=0)
    with pytest.raises(ValidationError):
        CampaignScheduler(backpressure=0)


def test_study_workers_produce_identical_stores():
    scale = StudyScale.tiny()
    serial = MLaaSStudy(scale=scale, random_state=3).run_baseline()
    study = MLaaSStudy(scale=scale, random_state=3, workers=4)
    concurrent = study.run_baseline()
    assert list(concurrent) == list(serial)
    assert study.telemetry is not None
    assert study.telemetry.counter_value("jobs_total") == len(serial)


def test_study_per_control_campaign_matches_serial():
    scale = StudyScale.tiny()
    serial = MLaaSStudy(scale=scale, random_state=1).run_per_control("CLF")
    concurrent = MLaaSStudy(
        scale=scale, random_state=1, workers=4
    ).run_per_control("CLF")
    assert list(concurrent) == list(serial)


def test_study_run_campaign_checkpoints(tmp_path):
    scale = StudyScale.tiny()
    checkpoint = tmp_path / "study-campaign.json"
    study = MLaaSStudy(scale=scale, random_state=2, workers=4)
    store = study.run_campaign(
        protocol="baseline", checkpoint_path=checkpoint, checkpoint_every=5,
    )
    assert checkpoint.exists()
    assert len(ResultStore.load(checkpoint)) == len(store)


def test_study_rejects_bad_workers():
    with pytest.raises(ValidationError):
        MLaaSStudy(workers=0)
