"""Tests for the virtual/wall clocks of the service layer."""

import threading

import pytest

from repro.exceptions import ValidationError
from repro.platforms import Google
from repro.service import VirtualClock, WallClock


def test_virtual_clock_starts_at_zero_and_advances():
    clock = VirtualClock()
    assert clock.now() == 0.0
    assert clock() == 0.0
    clock.advance(12.5)
    assert clock.now() == 12.5


def test_virtual_clock_custom_start():
    assert VirtualClock(start=100.0).now() == 100.0


def test_virtual_sleep_advances_without_blocking():
    clock = VirtualClock()
    clock.sleep(3600.0)  # an hour of waiting costs nothing
    assert clock.now() == 3600.0
    assert clock.total_slept == 3600.0


def test_advance_does_not_count_as_sleep():
    clock = VirtualClock()
    clock.advance(10.0)
    clock.sleep(5.0)
    assert clock.now() == 15.0
    assert clock.total_slept == 5.0


def test_negative_advance_and_sleep_rejected():
    clock = VirtualClock()
    with pytest.raises(ValidationError):
        clock.advance(-1.0)
    with pytest.raises(ValidationError):
        clock.sleep(-0.5)


def test_virtual_clock_is_thread_safe():
    clock = VirtualClock()

    def bump():
        for _ in range(1000):
            clock.sleep(0.001)

    threads = [threading.Thread(target=bump) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert clock.now() == pytest.approx(8.0)
    assert clock.total_slept == pytest.approx(8.0)


def test_virtual_clock_drives_platform_rate_limiter(linear_data):
    X, y, _, _ = linear_data
    clock = VirtualClock()
    platform = Google(rate_limit_per_minute=2, clock=clock)
    platform.upload_dataset(X, y)
    platform.upload_dataset(X, y)
    clock.sleep(61.0)  # virtual wait rolls the quota window forward
    dataset_id = platform.upload_dataset(X, y)
    assert dataset_id in platform.list_datasets()


def test_wall_clock_is_monotonic_and_sleep_tolerates_zero():
    clock = WallClock()
    before = clock.now()
    clock.sleep(0.0)
    clock.sleep(-1.0)  # clamped, no error: a computed delay may be <= 0
    assert clock.now() >= before
    assert clock() >= before
