"""Thread-stress test for the scheduler's determinism contract.

One lucky pass proves little for concurrent code: races surface on
specific interleavings.  This test hammers the same small campaign
through :class:`CampaignScheduler` with several workers *many times*
under a fixed seed and asserts every run is bit-identical to the
serial sweep — exercising the slot table, the per-platform caps, the
condition-variable handoff, and the off-lock checkpoint writes under
genuinely different thread schedules each iteration.
"""

import pytest

from repro.core import ExperimentRunner
from repro.core.config_space import baseline_configuration
from repro.core.results import ResultStore
from repro.datasets import load_corpus
from repro.platforms import Amazon, BigML, Google
from repro.service import CampaignScheduler

PLATFORM_CLASSES = [Google, Amazon, BigML]
STRESS_ITERATIONS = 12


@pytest.fixture(scope="module")
def corpus():
    return load_corpus(max_datasets=3, size_cap=100, feature_cap=6,
                       random_state=0)


@pytest.fixture(scope="module")
def serial(corpus):
    runner = ExperimentRunner(split_seed=7)
    store = ResultStore()
    for cls in PLATFORM_CLASSES:
        platform = cls(random_state=0)
        store.extend(runner.sweep(
            platform, corpus, [baseline_configuration(platform)]
        ))
    return list(store)


def _run_campaign(corpus, workers, **kwargs):
    platforms = [cls(random_state=0) for cls in PLATFORM_CLASSES]
    scheduler = CampaignScheduler(workers=workers, seed=0, **kwargs)
    store = scheduler.run(
        ExperimentRunner(split_seed=7), platforms, corpus,
        {p.name: [baseline_configuration(p)] for p in platforms},
    )
    return list(store)


def test_repeated_concurrent_campaigns_stay_bit_identical(corpus, serial):
    for iteration in range(STRESS_ITERATIONS):
        results = _run_campaign(corpus, workers=4)
        assert results == serial, f"diverged on iteration {iteration}"


def test_stress_with_platform_cap_and_tight_backpressure(corpus, serial):
    for iteration in range(STRESS_ITERATIONS // 2):
        results = _run_campaign(
            corpus, workers=4, per_platform_cap=2, backpressure=2,
        )
        assert results == serial, f"diverged on iteration {iteration}"


def test_stress_with_checkpointing_every_result(corpus, serial, tmp_path):
    # checkpoint_every=1 forces a snapshot/write race window after every
    # measurement; the final checkpoint must also round-trip losslessly.
    for iteration in range(STRESS_ITERATIONS // 2):
        checkpoint = tmp_path / f"ckpt_{iteration}.json"
        platforms = [cls(random_state=0) for cls in PLATFORM_CLASSES]
        scheduler = CampaignScheduler(workers=4, seed=0)
        store = scheduler.run(
            ExperimentRunner(split_seed=7), platforms, corpus,
            {p.name: [baseline_configuration(p)] for p in platforms},
            checkpoint_path=checkpoint,
            checkpoint_every=1,
        )
        assert list(store) == serial, f"diverged on iteration {iteration}"
        assert list(ResultStore.load(checkpoint)) == serial
