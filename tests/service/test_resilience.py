"""Tests for the retrying platform client and its backoff policy."""

import numpy as np
import pytest

from repro.exceptions import (
    JobFailedError,
    QuotaExceededError,
    ResourceNotFoundError,
    ValidationError,
)
from repro.platforms import Amazon, Google, Microsoft
from repro.service import (
    ResilientClient,
    RetryPolicy,
    Telemetry,
    VirtualClock,
    is_transient,
)


@pytest.fixture()
def data(linear_data):
    X_train, y_train, X_test, _ = linear_data
    return X_train, y_train, X_test


# -- RetryPolicy -----------------------------------------------------------

def test_policy_delay_grows_exponentially_and_caps():
    policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=10.0,
                         jitter=0.0)
    assert policy.delay(1) == 1.0
    assert policy.delay(2) == 2.0
    assert policy.delay(3) == 4.0
    assert policy.delay(10) == 10.0  # capped


def test_policy_jitter_bounds():
    policy = RetryPolicy(base_delay=4.0, jitter=0.5)
    assert policy.delay(1, u=-1.0) == pytest.approx(2.0)
    assert policy.delay(1, u=0.99) == pytest.approx(4.0 * 1.495)


def test_policy_validates_bounds():
    with pytest.raises(ValidationError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValidationError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ValidationError):
        RetryPolicy(jitter=1.0)


def test_is_transient_classification():
    assert is_transient(QuotaExceededError("rate limit"))
    assert is_transient(JobFailedError("model m is not ready"))
    assert not is_transient(JobFailedError("model m failed: bad config"))
    assert not is_transient(ResourceNotFoundError("no dataset"))


# -- ResilientClient -------------------------------------------------------

def test_client_passes_through_when_no_failures(data):
    X, y, X_test = data
    client = ResilientClient(Microsoft(random_state=3))
    dataset_id = client.upload_dataset(X, y)
    model_id = client.create_model(dataset_id, classifier="LR")
    predictions = client.batch_predict(model_id, X_test)
    assert len(predictions) == len(X_test)
    client.delete_dataset(dataset_id)
    assert client.name == "microsoft"
    requests = client.telemetry.platform_requests("microsoft")
    assert requests == {
        "upload_dataset": 1, "create_model": 1,
        "batch_predict": 1, "delete_dataset": 1,
    }


def test_client_retries_through_quota_exhaustion(data):
    X, y, X_test = data
    clock = VirtualClock()
    platform = Google(rate_limit_per_minute=2, clock=clock)
    client = ResilientClient(
        platform,
        policy=RetryPolicy(max_attempts=8, base_delay=16.0, jitter=0.0),
        clock=clock,
    )
    # 2 requests/minute: the 3rd+ calls must wait out the rolling window.
    dataset_id = client.upload_dataset(X, y)
    model_id = client.create_model(dataset_id)
    predictions = client.batch_predict(model_id, X_test)
    assert len(predictions) == len(X_test)
    errors = client.telemetry.platform_errors("google")
    assert errors.get("QuotaExceededError", 0) >= 1
    assert client.telemetry.counter_value("retries_total") >= 1
    assert clock.total_slept > 0  # waits happened, in virtual time only


def test_client_raises_after_bounded_attempts(data):
    X, y, _ = data
    clock = VirtualClock()
    # Zero-length backoff never rolls the window: retries must exhaust.
    platform = Google(rate_limit_per_minute=1, clock=clock)
    client = ResilientClient(
        platform,
        policy=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
        clock=clock,
    )
    client.upload_dataset(X, y)
    with pytest.raises(QuotaExceededError):
        client.upload_dataset(X, y)
    errors = client.telemetry.platform_errors("google")
    assert errors["QuotaExceededError"] == 3  # one per bounded attempt


def test_client_does_not_retry_permanent_failures(data):
    X, y, _ = data
    telemetry = Telemetry()
    client = ResilientClient(Microsoft(random_state=0), telemetry=telemetry)
    with pytest.raises(ResourceNotFoundError):
        client.create_model("no-such-dataset", classifier="LR")
    # Permanent errors propagate immediately without retry accounting.
    assert telemetry.counter_value("retries_total") == 0


def test_client_retries_transient_job_failures(data):
    X, y, X_test = data

    class FlakyAmazon(Amazon):
        flaked = 0

        def batch_predict(self, model_id, X):
            if type(self).flaked < 2:
                type(self).flaked += 1
                raise JobFailedError(f"model {model_id} is not ready")
            return super().batch_predict(model_id, X)

    client = ResilientClient(FlakyAmazon(random_state=0),
                             policy=RetryPolicy(max_attempts=5, base_delay=1.0))
    dataset_id = client.upload_dataset(X, y)
    model_id = client.create_model(dataset_id, classifier="LR")
    predictions = client.batch_predict(model_id, X_test)
    assert len(predictions) == len(X_test)
    assert FlakyAmazon.flaked == 2
    errors = client.telemetry.platform_errors("amazon")
    assert errors["JobFailedError"] == 2


def test_client_awaits_async_platforms(data):
    X, y, X_test = data
    platform = Microsoft(random_state=3, synchronous=False)
    client = ResilientClient(platform)
    dataset_id = client.upload_dataset(X, y)
    model_id = client.create_model(dataset_id, classifier="RF")
    # The client polled the queued job to completion before returning.
    predictions = client.batch_predict(model_id, X_test)
    sync = Microsoft(random_state=3, synchronous=True)
    ds = sync.upload_dataset(X, y)
    reference = sync.batch_predict(sync.create_model(ds, classifier="RF"), X_test)
    assert np.array_equal(predictions, reference)


def test_jitter_stream_is_deterministic(data):
    X, y, _ = data

    def retry_delays(seed):
        clock = VirtualClock()
        platform = Google(rate_limit_per_minute=1, clock=clock)
        client = ResilientClient(
            platform,
            policy=RetryPolicy(max_attempts=4, base_delay=1.0, jitter=0.5),
            clock=clock, seed=seed,
        )
        client.upload_dataset(X, y)
        with pytest.raises(QuotaExceededError):
            client.upload_dataset(X, y)
        return clock.total_slept

    assert retry_delays(7) == retry_delays(7)
    assert retry_delays(7) != retry_delays(8)
