"""Tests for campaign telemetry counters, histograms and snapshots."""

import json
import threading

import pytest

from repro.service import Counter, Histogram, Telemetry


def test_counter_increments_and_rejects_decrease():
    counter = Counter("requests")
    counter.increment()
    counter.increment(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.increment(-1)


def test_histogram_buckets_observations():
    histogram = Histogram("latency", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        histogram.observe(value)
    assert histogram.count == 5
    assert histogram.counts == [1, 2, 1, 1]  # last bucket is +Inf overflow
    assert histogram.mean == pytest.approx(56.05 / 5)
    snapshot = histogram.to_dict()
    assert snapshot["buckets"]["+Inf"] == 1
    assert snapshot["count"] == 5


def test_record_request_accounts_platform_ops_and_retries():
    telemetry = Telemetry()
    telemetry.record_request("google", "upload_dataset", attempts=1, seconds=0.01)
    telemetry.record_request("google", "create_model", attempts=3, seconds=2.5)
    telemetry.record_request("amazon", "upload_dataset", attempts=1, seconds=0.02)
    assert telemetry.counter_value("requests_total") == 5
    assert telemetry.counter_value("retries_total") == 2
    assert telemetry.platform_requests("google") == {
        "upload_dataset": 1, "create_model": 3,
    }
    assert telemetry.platform_requests("amazon") == {"upload_dataset": 1}
    assert telemetry.platform_requests("bigml") == {}


def test_record_error_counts_by_kind():
    telemetry = Telemetry()
    telemetry.record_error("google", "QuotaExceededError")
    telemetry.record_error("google", "QuotaExceededError")
    telemetry.record_error("google", "JobFailedError")
    assert telemetry.platform_errors("google") == {
        "QuotaExceededError": 2, "JobFailedError": 1,
    }
    assert telemetry.counter_value("errors_total") == 3


def test_snapshot_shape_and_json_round_trip(tmp_path):
    telemetry = Telemetry()
    telemetry.increment("jobs_total", 7)
    telemetry.record_request("google", "upload_dataset", attempts=2, seconds=0.4)
    telemetry.record_error("google", "QuotaExceededError")
    path = tmp_path / "telemetry.json"
    telemetry.save(path)
    loaded = json.loads(path.read_text())
    assert loaded == telemetry.snapshot()
    assert loaded["counters"]["jobs_total"] == 7
    assert loaded["platforms"]["google"]["retries"] == 1
    assert loaded["platforms"]["google"]["errors"]["QuotaExceededError"] == 1
    assert "latency_seconds.upload_dataset" in loaded["histograms"]
    assert loaded["histograms"]["attempts_per_call"]["count"] == 1


def test_snapshot_is_deterministic():
    def build():
        telemetry = Telemetry()
        telemetry.record_request("b", "op2", attempts=1, seconds=0.001)
        telemetry.record_request("a", "op1", attempts=2, seconds=0.002)
        telemetry.record_error("b", "JobFailedError")
        return telemetry

    first = json.dumps(build().snapshot(), sort_keys=True)
    second = json.dumps(build().snapshot(), sort_keys=True)
    assert first == second


def test_concurrent_recording_is_consistent():
    telemetry = Telemetry()

    def record():
        for _ in range(500):
            telemetry.increment("requests_total")
            telemetry.observe("latency", 0.01)

    threads = [threading.Thread(target=record) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert telemetry.counter_value("requests_total") == 4000
    assert telemetry.snapshot()["histograms"]["latency"]["count"] == 4000


def test_exact_quantile_interpolates_linearly():
    from repro.service import exact_quantile

    samples = [1.0, 2.0, 3.0, 4.0]
    assert exact_quantile(samples, 0.0) == 1.0
    assert exact_quantile(samples, 1.0) == 4.0
    assert exact_quantile(samples, 0.5) == pytest.approx(2.5)
    assert exact_quantile(samples, 0.25) == pytest.approx(1.75)
    assert exact_quantile([7.0], 0.99) == 7.0
    with pytest.raises(ValueError):
        exact_quantile(samples, 50.0)
    with pytest.raises(ValueError):
        exact_quantile([], 0.5)


def test_percentile_summary_shape_and_determinism():
    from repro.service import percentile_summary

    assert percentile_summary([]) == {"count": 0}
    summary = percentile_summary([0.3, 0.1, 0.2])
    assert summary["count"] == 3
    assert summary["min"] == 0.1
    assert summary["max"] == 0.3
    assert summary["mean"] == pytest.approx(0.2)
    assert summary["p50"] == 0.2
    assert summary["p99"] > summary["p50"]
    # Deterministic JSON: same samples in any order, same rendering.
    a = json.dumps(percentile_summary([0.3, 0.1, 0.2]), sort_keys=True)
    b = json.dumps(percentile_summary([0.2, 0.3, 0.1]), sort_keys=True)
    assert a == b


def test_record_sample_keeps_exact_values_and_summarizes():
    telemetry = Telemetry()
    for value in (0.4, 0.2, 0.9):
        telemetry.record_sample("latency_samples.predict", value)
    assert telemetry.sample_values("latency_samples.predict") == \
        [0.4, 0.2, 0.9]
    assert telemetry.sample_values("nothing") == []
    summaries = telemetry.sample_summaries()
    assert summaries["latency_samples.predict"]["count"] == 3
    assert summaries["latency_samples.predict"]["p50"] == 0.4


def test_concurrent_sample_recording_is_complete():
    telemetry = Telemetry()

    def record(worker):
        for index in range(200):
            telemetry.record_sample("shared", float(worker * 1000 + index))

    threads = [threading.Thread(target=record, args=(w,)) for w in range(6)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert telemetry.sample_summaries()["shared"]["count"] == 1200
