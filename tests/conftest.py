"""Shared fixtures: small deterministic datasets used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import make_circles, make_classification


@pytest.fixture(scope="session")
def linear_data():
    """A clean, linearly separable binary problem (train/test)."""
    X, y = make_classification(
        n_samples=240, n_features=5, class_sep=4.5, flip_y=0.0, random_state=11
    )
    return X[:180], y[:180], X[180:], y[180:]


@pytest.fixture(scope="session")
def noisy_linear_data():
    """A noisy linear problem — exercises non-separable code paths."""
    X, y = make_classification(
        n_samples=240, n_features=5, class_sep=1.0, flip_y=0.1, random_state=13
    )
    return X[:180], y[:180], X[180:], y[180:]


@pytest.fixture(scope="session")
def circles_data():
    """The CIRCLE-style non-linear problem."""
    X, y = make_circles(n_samples=240, noise=0.08, random_state=17)
    return X[:180], y[:180], X[180:], y[180:]


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
