"""Wire-level tests against a live loopback HTTP server.

Everything here goes through a real socket: the stdlib front-end's
header handling, keep-alive behaviour, the 413 refuse-before-read path,
request-id propagation from client header to access log, and the
``--max-requests`` budget shutdown.
"""

import http.client
import json

import numpy as np
import pytest

from repro.exceptions import (
    PayloadTooLargeError,
    ResourceNotFoundError,
    ValidationError,
)
from repro.platforms import BigML
from repro.serving import (
    AccessLog,
    HTTPPlatformClient,
    PlatformHTTPServer,
    ServingGateway,
    ServingLimits,
    serve_background,
)

RNG = np.random.default_rng(5)
X = RNG.standard_normal((30, 4))
Y = (X[:, 0] > 0).astype(int)


@pytest.fixture()
def loopback():
    gateway = ServingGateway([BigML(random_state=0)])
    server, thread = serve_background(gateway)
    yield server, gateway
    server.shutdown()
    thread.join()
    server.server_close()


def test_health_and_platform_listing_over_the_wire(loopback):
    server, _ = loopback
    client = HTTPPlatformClient(server.url, "bigml")
    health = client.health()
    assert health["status"] == "ok"
    assert health["platforms"] == ["bigml"]
    connection = http.client.HTTPConnection(
        server.server_address[0], server.server_address[1], timeout=10
    )
    connection.request("GET", "/platforms")
    body = json.loads(connection.getresponse().read())
    assert body["platforms"][0]["name"] == "bigml"
    assert "CLF" in body["platforms"][0]["controls"]
    connection.close()


def test_full_cycle_and_error_tunnelling_over_the_wire(loopback):
    server, _ = loopback
    client = HTTPPlatformClient(server.url, "bigml")
    dataset_id = client.upload_dataset(X, Y, name="wire")
    model_id = client.create_model(dataset_id, classifier="DT")
    handle = client.get_model(model_id)
    assert handle.state.value == "COMPLETED"
    predictions = client.batch_predict(model_id, X[:6])
    assert predictions.shape == (6,)
    client.delete_dataset(dataset_id)
    with pytest.raises(ResourceNotFoundError):
        client.delete_dataset(dataset_id)
    with pytest.raises(ResourceNotFoundError):
        client.get_model("m-nope")


def test_malformed_json_is_a_structured_400_over_the_wire(loopback):
    server, _ = loopback
    connection = http.client.HTTPConnection(
        server.server_address[0], server.server_address[1], timeout=10
    )
    connection.request("POST", "/platforms/bigml/datasets",
                       body=b"}{ not json",
                       headers={"Content-Type": "application/json"})
    response = connection.getresponse()
    body = json.loads(response.read())
    assert response.status == 400
    assert body["error"]["kind"] == "ValidationError"
    connection.close()


def test_client_raises_validation_error_for_bad_targets():
    with pytest.raises(ValidationError):
        HTTPPlatformClient("ftp://example", "bigml")
    with pytest.raises(ValidationError):
        HTTPPlatformClient("http://127.0.0.1:1", "quantum-ml")


def test_oversized_declared_body_is_refused_without_reading():
    gateway = ServingGateway(
        [BigML(random_state=0)], limits=ServingLimits(max_body_bytes=1024)
    )
    server, thread = serve_background(gateway)
    try:
        client = HTTPPlatformClient(server.url, "bigml")
        with pytest.raises(PayloadTooLargeError):
            client.upload_dataset(
                RNG.standard_normal((400, 10)),
                np.arange(400) % 2,
            )
        # The connection was closed by the server; the client's single
        # reconnect makes the next request succeed anyway.
        assert client.health()["status"] == "ok"
    finally:
        server.shutdown()
        thread.join()
        server.server_close()


def test_request_ids_propagate_from_client_to_access_log(tmp_path):
    log_path = tmp_path / "access.jsonl"
    gateway = ServingGateway(
        [BigML(random_state=0)], access_log=AccessLog(log_path)
    )
    server, thread = serve_background(gateway)
    try:
        client = HTTPPlatformClient(server.url, "bigml",
                                    client_id="traced")
        dataset_id = client.upload_dataset(X, Y)
        client.delete_dataset(dataset_id)
    finally:
        server.shutdown()
        thread.join()
        server.server_close()
    entries = [json.loads(line)
               for line in log_path.read_text().splitlines()]
    assert [entry["request_id"] for entry in entries] == [
        "traced-bigml-000001", "traced-bigml-000002",
    ]
    assert [entry["status"] for entry in entries] == [200, 200]
    assert entries[0]["path"] == "/platforms/bigml/datasets"


def test_max_requests_budget_shuts_the_server_down():
    gateway = ServingGateway([BigML(random_state=0)])
    server = PlatformHTTPServer(gateway, max_requests=3)
    import threading

    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = HTTPPlatformClient(server.url, "bigml")
    for _ in range(3):
        assert client.health()["status"] == "ok"
    thread.join(timeout=10)
    assert not thread.is_alive()
    server.server_close()
