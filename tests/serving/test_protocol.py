"""Wire-protocol unit tests: encodings, error taxonomy, handle forms."""

import numpy as np
import pytest

from repro.exceptions import (
    DeadlineExceededError,
    JobFailedError,
    NotFittedError,
    PayloadTooLargeError,
    PlatformError,
    QuotaExceededError,
    ReproError,
    ResourceNotFoundError,
    UnsupportedControlError,
    ValidationError,
)
from repro.platforms.base import JobState, ModelHandle, TrainingFailure
from repro.serving.protocol import (
    ERROR_STATUS,
    ServingLimits,
    decode_array,
    decode_json_body,
    encode_array,
    error_body,
    handle_from_wire,
    handle_to_wire,
    raise_for_error,
    status_for_exception,
)


@pytest.mark.parametrize("dtype", ["float64", "int64", "intp", "float32"])
def test_array_roundtrip_preserves_bytes_and_dtype(dtype):
    rng = np.random.default_rng(3)
    array = (rng.standard_normal((7, 4)) * 1e3).astype(np.dtype(dtype))
    decoded = decode_array(encode_array(array))
    assert decoded.dtype == array.dtype
    assert decoded.tobytes() == array.tobytes()


def test_float64_roundtrip_is_bit_exact_for_awkward_values():
    array = np.array([0.1, 1.0 / 3.0, np.pi, 1e-308, -0.0, 2.0**53 + 1])
    decoded = decode_array(encode_array(array))
    assert decoded.tobytes() == array.tobytes()


@pytest.mark.parametrize("payload", [
    None, [], "x", {"dtype": "float64"}, {"data": [["a", "b"]]},
    {"data": [1], "dtype": "not-a-dtype"},
])
def test_malformed_array_payloads_raise_validation_error(payload):
    with pytest.raises(ValidationError):
        decode_array(payload)


@pytest.mark.parametrize("raw", [b"", b"not json", b"[1, 2]", b"\xff\xfe"])
def test_malformed_json_bodies_raise_validation_error(raw):
    with pytest.raises(ValidationError):
        decode_json_body(raw)


@pytest.mark.parametrize("exc,status", [
    (ValidationError("x"), 400),
    (UnsupportedControlError("x"), 400),
    (ResourceNotFoundError("x"), 404),
    (JobFailedError("x"), 409),
    # Regression: predict-before-fit surfaced as a bare 500 until the
    # kind earned its own wire mapping (found by `repro wire`, W502).
    (NotFittedError("x"), 409),
    (PayloadTooLargeError("x"), 413),
    (QuotaExceededError("x"), 429),
    (DeadlineExceededError("x"), 504),
    (PlatformError("x"), 502),
    (ReproError("x"), 500),
    (RuntimeError("x"), 500),
])
def test_every_exception_maps_to_its_status(exc, status):
    assert status_for_exception(exc) == status


def test_unlisted_subclasses_inherit_their_ancestors_status():
    class CustomPlatformTrouble(PlatformError):
        pass

    assert status_for_exception(CustomPlatformTrouble("x")) == 502


@pytest.mark.parametrize("kind", sorted(ERROR_STATUS))
def test_raise_for_error_restores_the_exception_class(kind):
    status = ERROR_STATUS[kind]
    body = error_body_for(kind, "the exact detail text")
    with pytest.raises(ReproError) as excinfo:
        raise_for_error(status, body)
    assert type(excinfo.value).__name__ == kind
    # The detail crosses the wire verbatim: failure_reason strings and
    # is_transient substring matching behave as in-process.
    assert str(excinfo.value) == "the exact detail text"


def error_body_for(kind: str, detail: str) -> dict:
    """A server-shaped error envelope for one kind."""
    return {"error": {"kind": kind, "detail": detail, "request_id": "r-1"}}


def test_raise_for_error_without_envelope_is_a_platform_error():
    with pytest.raises(PlatformError, match="HTTP 500"):
        raise_for_error(500, {"oops": True})


def test_error_body_shape_matches_the_wire_contract():
    body = error_body(ValidationError("bad"), "req-000009")
    assert body == {"error": {
        "kind": "ValidationError", "detail": "bad",
        "request_id": "req-000009",
    }}


def test_handle_roundtrip_including_structured_failure():
    handle = ModelHandle(
        model_id="m-1", dataset_id="d-1", state=JobState.FAILED,
        classifier_abbr="DT", params={"max_depth": 3, "alpha": 0.5},
        feature_selection="KB5", estimator=object(),
        failure_reason=TrainingFailure(
            stage="fit", kind="degenerate_data", detail="one class"
        ),
        metadata={"train_seconds": 0.25, "estimator": object()},
    )
    restored = handle_from_wire(handle_to_wire(handle))
    assert restored.model_id == handle.model_id
    assert restored.dataset_id == handle.dataset_id
    assert restored.state is JobState.FAILED
    assert restored.classifier_abbr == "DT"
    assert restored.params == handle.params
    assert restored.feature_selection == "KB5"
    assert restored.estimator is None  # stays server-side by design
    assert str(restored.failure_reason) == str(handle.failure_reason)
    # Only JSON-safe metadata crosses; the estimator object does not.
    assert restored.metadata == {"train_seconds": 0.25}


def test_handle_from_wire_rejects_garbage():
    with pytest.raises(ValidationError):
        handle_from_wire({"no": "model_id"})


def test_serving_limits_validate():
    with pytest.raises(ValidationError):
        ServingLimits(max_body_bytes=0)
    with pytest.raises(ValidationError):
        ServingLimits(max_batch_rows=0)
    with pytest.raises(ValidationError):
        ServingLimits(soft_timeout_seconds=-1.0)
    assert ServingLimits(soft_timeout_seconds=None).soft_timeout_seconds is None
