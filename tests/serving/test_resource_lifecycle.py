"""Loopback regression for W503's dynamic counterpart: no leaked
threads, sockets or file descriptors after a serving session.

``repro wire`` proves the lifecycle statically; these tests prove it
dynamically on a real socket — after an exception-path request (the
kind that used to bypass cleanup) and after a ``--max-requests``
budget shutdown, the process is back to its baseline thread count and
``/proc/self/fd`` population.
"""

import os
import time

import pytest

from repro.exceptions import ResourceNotFoundError
from repro.platforms import BigML
from repro.serving import (
    HTTPPlatformClient,
    PlatformHTTPServer,
    ServingGateway,
    serve_background,
)


def open_fds():
    return len(os.listdir("/proc/self/fd"))


def live_threads():
    import threading

    return threading.active_count()


def settle(predicate, timeout=10.0):
    """Poll ``predicate`` until true; daemon handler threads need a beat."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


@pytest.mark.skipif(not os.path.isdir("/proc/self/fd"),
                    reason="needs procfs to count descriptors")
def test_exception_path_request_leaks_nothing():
    fd_baseline = open_fds()
    thread_baseline = live_threads()

    server, thread = serve_background(ServingGateway([BigML(random_state=0)]))
    client = HTTPPlatformClient(server.url, "bigml")
    assert client.health()["status"] == "ok"
    with pytest.raises(ResourceNotFoundError):
        client.get_model("m-nope")  # the 404 path must not skip cleanup
    client.close()

    server.shutdown()
    thread.join(timeout=10)
    assert not thread.is_alive()
    server.server_close()

    assert settle(lambda: live_threads() <= thread_baseline), \
        f"{live_threads() - thread_baseline} serving thread(s) leaked"
    assert settle(lambda: open_fds() <= fd_baseline), \
        f"{open_fds() - fd_baseline} descriptor(s) leaked"


@pytest.mark.skipif(not os.path.isdir("/proc/self/fd"),
                    reason="needs procfs to count descriptors")
def test_request_budget_shutdown_leaks_nothing():
    import threading

    fd_baseline = open_fds()
    thread_baseline = live_threads()

    gateway = ServingGateway([BigML(random_state=0)])
    server = PlatformHTTPServer(gateway, max_requests=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = HTTPPlatformClient(server.url, "bigml")
    assert client.health()["status"] == "ok"
    assert client.health()["status"] == "ok"
    client.close()

    # The budget exhausts on the second request and the handler stops
    # the serve loop itself; joining must not hang.
    thread.join(timeout=10)
    assert not thread.is_alive()
    server.server_close()

    assert settle(lambda: live_threads() <= thread_baseline), \
        f"{live_threads() - thread_baseline} serving thread(s) leaked"
    assert settle(lambda: open_fds() <= fd_baseline), \
        f"{open_fds() - fd_baseline} descriptor(s) leaked"
