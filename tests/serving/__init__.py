"""Tests for the HTTP serving layer (:mod:`repro.serving`)."""
