"""Gateway routing + middleware tests, driven without a socket.

:class:`ServingGateway` is transport-independent: these tests hand it
:class:`Request` objects directly and pin the middleware semantics —
request ids, access-log records, error envelopes, body/batch limits and
the soft timeout — deterministically on a :class:`VirtualClock`.
"""

import json

import numpy as np
import pytest

from repro.platforms import BigML
from repro.platforms.base import JobState
from repro.service.clock import VirtualClock
from repro.serving import (
    AccessLog,
    Request,
    ServingGateway,
    ServingLimits,
    encode_array,
)

RNG = np.random.default_rng(11)
X = RNG.standard_normal((24, 4))
Y = (X[:, 0] > 0).astype(int)


def make_gateway(**kwargs):
    kwargs.setdefault("clock", VirtualClock())
    return ServingGateway([BigML(random_state=0)], **kwargs)


def post(path, payload, headers=None):
    raw = json.dumps(payload).encode("utf-8") if payload is not None else b""
    return Request(method="POST", path=path, raw_body=raw,
                   headers=dict(headers or {}))


def get(path, headers=None):
    return Request(method="GET", path=path, headers=dict(headers or {}))


def upload_payload():
    return {"X": encode_array(X), "y": encode_array(Y), "name": "t"}


def test_health_lists_platforms_and_uptime_on_the_gateway_clock():
    clock = VirtualClock()
    gateway = make_gateway(clock=clock)
    clock.advance(12.5)
    response = gateway.handle(get("/health"))
    assert response.status == 200
    assert response.body["status"] == "ok"
    assert response.body["platforms"] == ["bigml"]
    assert response.body["uptime_seconds"] == pytest.approx(12.5)


def test_full_train_predict_cycle_through_the_gateway():
    gateway = make_gateway()
    uploaded = gateway.handle(post("/platforms/bigml/datasets",
                                   upload_payload()))
    assert uploaded.status == 200
    dataset_id = uploaded.body["dataset_id"]
    created = gateway.handle(post("/platforms/bigml/models",
                                  {"dataset_id": dataset_id,
                                   "classifier": "DT"}))
    model_id = created.body["model_id"]
    fetched = gateway.handle(get(f"/platforms/bigml/models/{model_id}"))
    assert fetched.body["state"] == JobState.COMPLETED.value
    predicted = gateway.handle(post(
        f"/platforms/bigml/models/{model_id}/predict",
        {"X": encode_array(X[:5])},
    ))
    assert predicted.status == 200
    assert len(predicted.body["predictions"]["data"]) == 5
    deleted = gateway.handle(Request(
        method="DELETE", path=f"/platforms/bigml/datasets/{dataset_id}"))
    assert deleted.status == 200
    assert gateway.handle(get("/platforms/bigml/datasets")).body == {
        "datasets": []
    }


@pytest.mark.parametrize("method,path", [
    ("GET", "/nope"),
    ("GET", "/platforms/quantum/datasets"),
    ("POST", "/platforms/bigml/teapots"),
    ("DELETE", "/platforms/bigml/models"),
])
def test_unknown_routes_answer_404_envelopes(method, path):
    gateway = make_gateway()
    response = gateway.handle(Request(method=method, path=path))
    assert response.status == 404
    assert response.body["error"]["kind"] == "ResourceNotFoundError"


def test_malformed_json_body_is_a_structured_400():
    gateway = make_gateway()
    request = Request(method="POST", path="/platforms/bigml/datasets",
                      raw_body=b"{truncated")
    response = gateway.handle(request)
    assert response.status == 400
    assert response.body["error"]["kind"] == "ValidationError"
    assert "JSON" in response.body["error"]["detail"]


def test_malformed_arrays_are_rejected_at_the_edge_not_inside_numpy():
    gateway = make_gateway()
    # Ragged rows: decodable JSON, undecodable array.
    response = gateway.handle(post("/platforms/bigml/datasets", {
        "X": {"data": [[1.0, 2.0], [3.0]]}, "y": {"data": [0, 1]},
    }))
    assert response.status == 400
    assert response.body["error"]["kind"] == "ValidationError"
    # Mismatched lengths: caught by check_X_y at the boundary.
    response = gateway.handle(post("/platforms/bigml/datasets", {
        "X": encode_array(X), "y": encode_array(Y[:-3]),
    }))
    assert response.status == 400


def test_oversized_batch_answers_413():
    gateway = make_gateway(limits=ServingLimits(max_batch_rows=10))
    response = gateway.handle(post("/platforms/bigml/datasets",
                                   upload_payload()))
    assert response.status == 413
    assert response.body["error"]["kind"] == "PayloadTooLargeError"
    assert "10-row limit" in response.body["error"]["detail"]


def test_oversized_body_answers_413_before_routing():
    gateway = make_gateway(limits=ServingLimits(max_body_bytes=64))
    response = gateway.handle(post("/platforms/bigml/datasets",
                                   upload_payload()))
    assert response.status == 413
    assert response.body["error"]["kind"] == "PayloadTooLargeError"
    # Declared-but-unread bodies (the HTTP front-end refuses to read
    # them) are judged on the Content-Length header alone.
    declared = Request(method="POST", path="/platforms/bigml/datasets",
                       headers={"Content-Length": "9999"})
    assert gateway.handle(declared).status == 413


def test_request_ids_are_sequential_and_echoed():
    gateway = make_gateway()
    first = gateway.handle(get("/health"))
    second = gateway.handle(get("/health"))
    assert first.headers["X-Repro-Request-Id"] == "req-000001"
    assert second.headers["X-Repro-Request-Id"] == "req-000002"


def test_client_supplied_request_id_propagates_to_log_and_errors():
    log = AccessLog()
    gateway = make_gateway(access_log=log)
    response = gateway.handle(get(
        "/platforms/quantum/datasets",
        headers={"X-Repro-Request-Id": "trace-me-42"},
    ))
    assert response.status == 404
    assert response.headers["X-Repro-Request-Id"] == "trace-me-42"
    assert response.body["error"]["request_id"] == "trace-me-42"
    entry = log.records()[-1]
    assert entry["request_id"] == "trace-me-42"
    assert entry["status"] == 404
    assert entry["path"] == "/platforms/quantum/datasets"


def test_access_log_times_requests_on_the_gateway_clock(tmp_path):
    clock = VirtualClock()
    log_path = tmp_path / "access.jsonl"
    gateway = make_gateway(clock=clock, access_log=AccessLog(log_path))
    gateway.handle(get("/health"))
    lines = log_path.read_text().splitlines()
    assert len(lines) == 1
    entry = json.loads(lines[0])
    assert entry["method"] == "GET"
    assert entry["elapsed_seconds"] == 0.0  # nothing slept on VirtualClock


class _SlowPlatform:
    """Stub platform whose one operation burns virtual time."""

    name = "slowpoke"

    def __init__(self, clock, delay):
        self.clock = clock
        self.delay = delay

    def list_datasets(self):
        self.clock.sleep(self.delay)
        return ["d-1"]


def test_soft_timeout_answers_504_when_handling_runs_long():
    clock = VirtualClock()
    gateway = ServingGateway(
        [_SlowPlatform(clock, delay=5.0)],
        limits=ServingLimits(soft_timeout_seconds=1.0), clock=clock,
    )
    response = gateway.handle(get("/platforms/slowpoke/datasets"))
    assert response.status == 504
    assert response.body["error"]["kind"] == "DeadlineExceededError"
    assert "soft timeout" in response.body["error"]["detail"]


def test_soft_timeout_disabled_lets_slow_requests_through():
    clock = VirtualClock()
    gateway = ServingGateway(
        [_SlowPlatform(clock, delay=5.0)],
        limits=ServingLimits(soft_timeout_seconds=None), clock=clock,
    )
    response = gateway.handle(get("/platforms/slowpoke/datasets"))
    assert response.status == 200
    assert response.body == {"datasets": ["d-1"]}


def test_metrics_summary_reports_exact_percentiles_per_operation():
    clock = VirtualClock()
    gateway = ServingGateway([_SlowPlatform(clock, delay=2.0)], clock=clock)
    for _ in range(4):
        gateway.handle(get("/platforms/slowpoke/datasets"))
    body = gateway.handle(get("/metrics/summary")).body
    summary = body["operations"]["latency_samples.list_datasets"]
    assert summary["count"] == 4
    assert summary["p50"] == pytest.approx(2.0)
    assert summary["p95"] == pytest.approx(2.0)
    assert summary["p99"] == pytest.approx(2.0)
    assert body["counters"]["requests_total"] == 4


def test_errors_are_counted_in_telemetry():
    gateway = make_gateway()
    gateway.handle(get("/platforms/bigml/models/m-missing"))
    body = gateway.handle(get("/metrics/summary")).body
    assert body["platforms"]["bigml"]["errors"] == {
        "ResourceNotFoundError": 1
    }
