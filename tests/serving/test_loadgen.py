"""Load-generator determinism, digest equivalence and failure reporting.

The in-process platforms expose the same surface as
:class:`HTTPPlatformClient`, so most tests drive :func:`run_load`
directly against them — fast, no sockets — and one test closes the loop
over real HTTP.
"""

import numpy as np
import pytest

from repro.exceptions import PlatformError, ValidationError
from repro.platforms import BigML, Google
from repro.serving import (
    HTTPPlatformClient,
    LoadgenConfig,
    ServingGateway,
    build_schedule,
    run_load,
    serve_background,
)
from repro.serving.loadgen import derive_seed


def bigml_factory(client_id):
    """Each session gets its own in-process platform instance."""
    return BigML(random_state=0)


def test_config_validation():
    with pytest.raises(ValidationError):
        LoadgenConfig(clients=0)
    with pytest.raises(ValidationError):
        LoadgenConfig(mode="bursty")
    with pytest.raises(ValidationError):
        LoadgenConfig(samples=2)
    with pytest.raises(ValidationError):
        LoadgenConfig(arrival_spacing_seconds=-1.0)


def test_schedule_is_deterministic_and_seed_sensitive():
    config = LoadgenConfig(clients=4, mode="open", seed=9)
    first = build_schedule(config)
    second = build_schedule(config)
    assert first == second
    assert [plan.client_id for plan in first] == [
        "c000", "c001", "c002", "c003",
    ]
    offsets = [plan.start_offset for plan in first]
    assert offsets == sorted(offsets)
    assert all(offset > 0 for offset in offsets)
    reseeded = build_schedule(LoadgenConfig(clients=4, mode="open", seed=10))
    assert [p.seed for p in reseeded] != [p.seed for p in first]


def test_closed_mode_starts_everyone_at_zero():
    for plan in build_schedule(LoadgenConfig(clients=3, mode="closed")):
        assert plan.start_offset == 0.0


def test_derive_seed_is_stable_and_label_sensitive():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_parallel_and_serial_runs_share_the_payload_digest():
    config = LoadgenConfig(clients=4, predicts_per_client=2, seed=3)
    parallel = run_load(bigml_factory, config, parallel=True)
    serial = run_load(bigml_factory, config, parallel=False)
    assert parallel["payload_digest"] == serial["payload_digest"]
    assert parallel["requests_failed"] == serial["requests_failed"] == 0
    assert parallel["requests_total"] == serial["requests_total"]
    # 4 sessions x (upload + create + get + 2 predicts + delete)
    assert parallel["requests_total"] == 4 * 6


def test_digest_is_stable_across_runs_and_platform_sensitive():
    config = LoadgenConfig(clients=2, predicts_per_client=1, seed=5)
    first = run_load(bigml_factory, config)
    second = run_load(bigml_factory, config)
    assert first["payload_digest"] == second["payload_digest"]
    google = run_load(lambda cid: Google(random_state=0), config)
    assert google["payload_digest"] != first["payload_digest"]


def test_report_shape_and_percentiles():
    config = LoadgenConfig(clients=2, predicts_per_client=2, seed=1,
                           mode="open")
    report = run_load(bigml_factory, config)
    assert report["mode"] == "open"
    assert report["seed"] == 1
    assert set(report["operations"]) == {
        "upload_dataset", "create_model", "get_model", "batch_predict",
        "delete_dataset",
    }
    for summary in report["operations"].values():
        assert {"count", "mean", "min", "max", "p50", "p95", "p99"} \
            <= set(summary)
    assert report["overall_latency"]["count"] == report["requests_total"]
    assert report["throughput_rps"] is None or report["throughput_rps"] > 0


class _FlakyPredictPlatform(BigML):
    """BigML whose predictions always fail — for failure accounting."""

    def batch_predict(self, model_id, X):
        raise PlatformError("synthetic prediction outage")


def test_failures_are_counted_by_kind_not_raised():
    config = LoadgenConfig(clients=2, predicts_per_client=3, seed=0)
    report = run_load(lambda cid: _FlakyPredictPlatform(random_state=0),
                      config)
    assert report["requests_failed"] == 6
    assert report["failures"] == {"PlatformError": 6}
    # Sessions keep going: every other operation still succeeded.
    assert report["requests_total"] == 2 * 7


def test_loadgen_digest_matches_over_real_http():
    gateway = ServingGateway([BigML(random_state=0)])
    server, thread = serve_background(gateway)
    try:
        config = LoadgenConfig(clients=3, predicts_per_client=2, seed=7)
        over_http = run_load(
            lambda cid: HTTPPlatformClient(server.url, "bigml",
                                           client_id=cid),
            config,
        )
    finally:
        server.shutdown()
        thread.join()
        server.server_close()
    in_process = run_load(bigml_factory, config, parallel=False)
    assert over_http["payload_digest"] == in_process["payload_digest"]
    assert over_http["requests_failed"] == 0
