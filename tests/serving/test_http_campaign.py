"""The acceptance contract: campaigns over HTTP are bit-identical.

The same small-corpus measurement campaign is run three ways — the
in-process serial sweep, an HTTP sweep through
:class:`HTTPPlatformClient` against a live loopback server, and the
concurrent :class:`CampaignScheduler` with HTTP clients (repeated, in
the thread-stress pattern of ``tests/service/test_thread_stress.py``) —
and every result list must compare equal.  Because
:class:`~repro.core.results.ExperimentResult` equality covers platform,
dataset, configuration, metrics, status and failure reason, equality
here means the wire added *nothing*: not a ulp of metric drift, not a
reordering, not a changed failure string.
"""

import pytest

from repro.core import ExperimentRunner, MLaaSStudy, StudyScale
from repro.core.config_space import baseline_configuration
from repro.core.results import ResultStore
from repro.datasets import load_corpus
from repro.platforms import Amazon, BigML, Google
from repro.service import CampaignScheduler
from repro.serving import HTTPPlatformClient, ServingGateway, serve_background

PLATFORM_CLASSES = [Google, Amazon, BigML]
STRESS_ITERATIONS = 4


@pytest.fixture(scope="module")
def corpus():
    return load_corpus(max_datasets=3, size_cap=100, feature_cap=6,
                       random_state=0)


@pytest.fixture(scope="module")
def serial(corpus):
    runner = ExperimentRunner(split_seed=7)
    store = ResultStore()
    for cls in PLATFORM_CLASSES:
        platform = cls(random_state=0)
        store.extend(runner.sweep(
            platform, corpus, [baseline_configuration(platform)]
        ))
    return list(store)


@pytest.fixture(scope="module")
def server():
    gateway = ServingGateway(
        [cls(random_state=0) for cls in PLATFORM_CLASSES]
    )
    http_server, thread = serve_background(gateway)
    yield http_server
    http_server.shutdown()
    thread.join()
    http_server.server_close()


def _clients(server, tag):
    return [
        HTTPPlatformClient(server.url, cls.name,
                           client_id=f"{tag}-{cls.name}")
        for cls in PLATFORM_CLASSES
    ]


def test_http_sweep_is_bit_identical_to_in_process(corpus, serial, server):
    runner = ExperimentRunner(split_seed=7)
    store = ResultStore()
    for client in _clients(server, "sweep"):
        store.extend(runner.sweep(
            client, corpus, [baseline_configuration(client)]
        ))
    assert list(store) == serial


def test_study_runs_unchanged_over_http_clients(serial, server):
    scale = StudyScale(max_datasets=3, size_cap=100, feature_cap=6)
    study = MLaaSStudy(scale=scale, random_state=0,
                       platforms=_clients(server, "study"))
    assert list(study.run_baseline()) == serial


def test_concurrent_http_campaigns_stay_bit_identical(corpus, serial,
                                                      server):
    for iteration in range(STRESS_ITERATIONS):
        clients = _clients(server, f"stress{iteration}")
        scheduler = CampaignScheduler(workers=4, seed=0)
        store = scheduler.run(
            ExperimentRunner(split_seed=7), clients, corpus,
            {client.name: [baseline_configuration(client)]
             for client in clients},
        )
        assert list(store) == serial, f"diverged on iteration {iteration}"


def test_failure_reasons_cross_the_wire_verbatim(server):
    """A degenerate training job fails identically locally and over HTTP."""
    import numpy as np

    from repro.datasets.corpus import SplitDataset

    class _NamedDataset:
        """The minimal dataset surface run_one reads when given a split."""

        name = "degenerate/single-class"

    rng = np.random.default_rng(2)
    split = SplitDataset(
        name=_NamedDataset.name,
        X_train=rng.standard_normal((20, 3)),
        X_test=rng.standard_normal((6, 3)),
        y_train=np.zeros(20, dtype=np.intp),  # one class: training fails
        y_test=np.zeros(6, dtype=np.intp),
    )
    runner = ExperimentRunner(split_seed=7)
    local = BigML(random_state=0)
    local_result = runner.run_one(
        local, _NamedDataset, baseline_configuration(local), split=split
    )
    client = HTTPPlatformClient(server.url, "bigml", client_id="fail")
    wire_result = runner.run_one(
        client, _NamedDataset, baseline_configuration(client), split=split
    )
    assert local_result.status == "failed"
    assert wire_result == local_result
    assert wire_result.failure_reason == local_result.failure_reason
