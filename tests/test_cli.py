"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv) -> str:
    out = io.StringIO()
    code = main(list(argv), out=out)
    assert code == 0
    return out.getvalue()


def test_corpus_lists_119_datasets():
    output = run_cli("corpus")
    assert "119 datasets" in output
    assert "synthetic/circle" in output
    assert "life_science" in output


def test_platforms_lists_control_surfaces():
    output = run_cli("platforms")
    assert "microsoft" in output
    assert "(hidden)" in output      # black boxes hide classifiers
    assert "FEAT" in output


def test_baseline_runs_small_study():
    output = run_cli("baseline", "--datasets", "3", "--size-cap", "120")
    assert "Baseline" in output
    for platform in ("google", "abm", "microsoft", "local"):
        assert platform in output


def test_boundary_probe_circle():
    output = run_cli(
        "boundary", "google", "--dataset", "synthetic/circle",
        "--resolution", "40",
    )
    assert "NON-linear" in output
    assert "#" in output


def test_boundary_rejects_high_dimensional_dataset(capsys):
    code = main([
        "boundary", "google", "--dataset", "synthetic/linear_10d",
    ], out=io.StringIO())
    assert code == 2


def test_campaign_runs_and_matches_serial(tmp_path):
    telemetry_path = tmp_path / "telemetry.json"
    output = run_cli(
        "campaign", "--workers", "4", "--datasets", "2", "--size-cap", "100",
        "--compare-serial", "--telemetry-out", str(telemetry_path),
    )
    assert "Campaign" in output
    assert "IDENTICAL" in output
    assert telemetry_path.exists()


def test_campaign_checkpoint_resume(tmp_path):
    checkpoint = tmp_path / "campaign.json"
    first = run_cli(
        "campaign", "--workers", "2", "--datasets", "2", "--size-cap", "100",
        "--checkpoint", str(checkpoint),
    )
    assert checkpoint.exists()
    resumed = run_cli(
        "campaign", "--workers", "2", "--datasets", "2", "--size-cap", "100",
        "--checkpoint", str(checkpoint), "--resume", str(checkpoint),
    )
    assert "Campaign" in first and "Campaign" in resumed


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_platform():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["boundary", "watson"])


def test_campaign_processes_runs_and_matches_serial(tmp_path):
    telemetry_path = tmp_path / "telemetry.json"
    output = run_cli(
        "campaign", "--processes", "2", "--datasets", "2",
        "--size-cap", "100", "--compare-serial",
        "--telemetry-out", str(telemetry_path),
    )
    assert "processes=2" in output
    assert "IDENTICAL" in output
    assert "shards" in output and "fit cache" in output
    assert telemetry_path.exists()


def test_campaign_processes_checkpoint_resume(tmp_path):
    checkpoint = tmp_path / "campaign.json"
    run_cli(
        "campaign", "--processes", "2", "--datasets", "2",
        "--size-cap", "100", "--checkpoint", str(checkpoint),
    )
    assert checkpoint.exists()
    resumed = run_cli(
        "campaign", "--processes", "2", "--datasets", "2",
        "--size-cap", "100",
        "--checkpoint", str(checkpoint), "--resume", str(checkpoint),
    )
    assert "resumed" in resumed


def test_campaign_rejects_bad_backend_combinations():
    assert main(["campaign", "--processes", "0", "--datasets", "2",
                 "--size-cap", "100"], out=io.StringIO()) == 2
    assert main(["campaign", "--workers", "2", "--processes", "2",
                 "--datasets", "2", "--size-cap", "100"],
                out=io.StringIO()) == 2
