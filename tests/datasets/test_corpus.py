"""Tests for dataset materialization and preprocessing (§3.1)."""

import numpy as np
import pytest

from repro.datasets import (
    CORPUS,
    Dataset,
    get_spec,
    load_corpus,
    load_dataset,
    preprocess,
)


def test_load_dataset_by_name():
    dataset = load_dataset("synthetic/circle")
    assert dataset.name == "synthetic/circle"
    assert dataset.X.shape[1] == 2
    assert set(np.unique(dataset.y)) == {0, 1}


def test_load_dataset_by_spec():
    spec = get_spec("synthetic/xor")
    dataset = load_dataset(spec)
    assert dataset.spec is spec


def test_loaded_data_is_clean():
    # A dataset with categoricals and missing values must come out numeric
    # and NaN-free after the §3.1 preprocessing.
    spec = next(
        s for s in CORPUS if s.n_categorical > 0 and s.missing_rate > 0.0
    )
    dataset = load_dataset(spec, size_cap=300)
    assert dataset.X.dtype == np.float64
    assert not np.isnan(dataset.X).any()


def test_size_cap_limits_rows():
    dataset = load_dataset("computer_games/comp_17", size_cap=500)
    assert dataset.X.shape[0] <= 500


def test_feature_cap_limits_columns():
    spec = next(s for s in CORPUS if s.n_features > 200)
    dataset = load_dataset(spec, size_cap=200, feature_cap=50)
    assert dataset.X.shape[1] <= 50


def test_loading_is_deterministic():
    a = load_dataset("life_science/life_05", size_cap=200)
    b = load_dataset("life_science/life_05", size_cap=200)
    assert np.array_equal(a.X, b.X)
    assert np.array_equal(a.y, b.y)


def test_split_is_70_30_stratified():
    dataset = load_dataset("synthetic/linear", size_cap=400)
    split = dataset.split(random_state=0)
    total = len(split.y_train) + len(split.y_test)
    assert total == len(dataset.y)
    assert len(split.y_test) / total == pytest.approx(0.3, abs=0.03)
    assert abs(split.y_train.mean() - split.y_test.mean()) < 0.12


def test_split_deterministic():
    dataset = load_dataset("synthetic/linear", size_cap=300)
    a = dataset.split(random_state=3)
    b = dataset.split(random_state=3)
    assert np.array_equal(a.X_train, b.X_train)


def test_preprocess_encodes_and_imputes():
    raw = np.array(
        [
            ["red", 1.0],
            ["blue", None],
            [None, 3.0],
            ["red", 4.0],
        ],
        dtype=object,
    )
    y = np.array([0, 1, 0, 1])
    X, y_out = preprocess(raw, y)
    assert X.dtype == np.float64
    assert not np.isnan(X).any()
    assert np.array_equal(y_out, y)
    # Missing numeric replaced by median of {1, 3, 4} = 3.
    assert X[1, 1] == pytest.approx(3.0)


def test_load_corpus_domain_stratified_subset():
    corpus = load_corpus(max_datasets=14, size_cap=100, feature_cap=10)
    assert len(corpus) == 14
    domains = {d.domain for d in corpus}
    assert len(domains) == 7  # every domain represented


def test_load_corpus_full_size():
    corpus = load_corpus(size_cap=60, feature_cap=5)
    assert len(corpus) == 119


def test_load_corpus_domain_filter():
    corpus = load_corpus(domains=["synthetic"], size_cap=100)
    assert len(corpus) == 17
    assert all(d.domain == "synthetic" for d in corpus)


def test_every_corpus_dataset_loads_at_small_scale():
    for dataset in load_corpus(size_cap=80, feature_cap=8):
        assert isinstance(dataset, Dataset)
        assert dataset.X.shape[0] >= 15
        assert len(np.unique(dataset.y)) == 2
        assert np.all(np.isfinite(dataset.X))
