"""Tests for the 119-dataset corpus registry (paper Fig 3 marginals)."""

import numpy as np
import pytest

from repro.datasets.registry import (
    CORPUS,
    DOMAIN_COUNTS,
    PROBE_CIRCLE,
    PROBE_LINEAR,
    corpus_domain_breakdown,
    get_spec,
)


def test_corpus_has_119_datasets():
    assert len(CORPUS) == 119


def test_domain_breakdown_matches_figure_3a():
    breakdown = corpus_domain_breakdown()
    assert breakdown == DOMAIN_COUNTS
    assert breakdown["life_science"] == 44
    assert breakdown["computer_games"] == 18
    assert breakdown["synthetic"] == 17
    assert breakdown["social_science"] == 10
    assert breakdown["physical_science"] == 10
    assert breakdown["financial_business"] == 7
    assert breakdown["other"] == 13


def test_sample_count_range_matches_paper():
    sizes = [spec.n_samples for spec in CORPUS]
    assert min(sizes) == 15
    assert max(sizes) == 245_057


def test_feature_count_range_matches_paper():
    features = [spec.n_features for spec in CORPUS]
    assert min(features) == 1
    assert max(features) == 4_702


def test_sample_size_distribution_is_log_spread():
    sizes = np.array([spec.n_samples for spec in CORPUS])
    # Matching Fig 3b's CDF shape: a solid majority between 100 and 10k.
    middle = np.mean((sizes >= 100) & (sizes <= 10_000))
    assert middle > 0.5
    assert np.mean(sizes > 100_000) <= 0.05


def test_feature_count_distribution_mostly_small():
    features = np.array([spec.n_features for spec in CORPUS])
    assert np.mean(features <= 100) > 0.75  # Fig 3c: most datasets <= 100


def test_names_are_unique():
    names = [spec.name for spec in CORPUS]
    assert len(set(names)) == len(names)


def test_registry_is_deterministic():
    from repro.datasets.registry import _build_corpus

    again = _build_corpus()
    assert again == CORPUS


def test_probe_datasets_exist():
    circle = get_spec(PROBE_CIRCLE)
    assert circle.concept == "circles"
    assert circle.n_features == 2
    linear = get_spec(PROBE_LINEAR)
    assert linear.concept == "linear"
    assert linear.n_features == 2


def test_get_spec_unknown_name():
    with pytest.raises(KeyError, match="no corpus dataset"):
        get_spec("nonexistent/foo")


def test_synthetic_datasets_have_no_missing_values():
    for spec in CORPUS:
        if spec.domain == "synthetic":
            assert spec.missing_rate == 0.0
            assert spec.n_categorical == 0


def test_corpus_concept_diversity():
    concepts = {spec.concept for spec in CORPUS}
    assert {"linear", "rule", "polynomial", "circles", "sparse_linear"} <= concepts


def test_some_datasets_have_categoricals_and_missing():
    assert any(spec.n_categorical > 0 for spec in CORPUS)
    assert any(spec.missing_rate > 0.0 for spec in CORPUS)
