"""The corpus's pinned extreme datasets must load and behave (§3.1)."""

import numpy as np
import pytest

from repro.datasets import CORPUS, load_dataset


def spec_with(predicate):
    return next(s for s in CORPUS if predicate(s))


def test_smallest_dataset_has_15_samples_and_trains():
    spec = spec_with(lambda s: s.n_samples == 15)
    dataset = load_dataset(spec)
    assert dataset.X.shape[0] == 15
    assert len(np.unique(dataset.y)) == 2
    # Even the 15-sample dataset supports the paper's 70/30 protocol.
    split = dataset.split(random_state=0)
    assert len(split.y_test) >= 1
    assert len(np.unique(split.y_train)) == 2


def test_largest_dataset_is_capped_on_demand():
    spec = spec_with(lambda s: s.n_samples == 245_057)
    dataset = load_dataset(spec, size_cap=1000)
    assert dataset.X.shape[0] == 1000


def test_single_feature_dataset_trains():
    spec = spec_with(lambda s: s.n_features == 1)
    dataset = load_dataset(spec, size_cap=300)
    assert dataset.X.shape[1] == 1
    from repro.learn import LogisticRegression

    split = dataset.split(random_state=0)
    model = LogisticRegression().fit(split.X_train, split.y_train)
    assert model.score(split.X_test, split.y_test) > 0.5


def test_widest_dataset_supports_feature_selection():
    spec = spec_with(lambda s: s.n_features == 4_702)
    dataset = load_dataset(spec, size_cap=120, feature_cap=500)
    assert dataset.X.shape[1] == 500
    from repro.learn.feature_selection import SelectKBest

    Z = SelectKBest(scorer="f_classif", k=20).fit_transform(
        dataset.X, dataset.y
    )
    assert Z.shape == (dataset.X.shape[0], 20)


@pytest.mark.parametrize("name", [
    "synthetic/circle", "synthetic/linear", "synthetic/xor",
    "synthetic/spirals",
])
def test_named_probes_have_two_features(name):
    assert load_dataset(name, size_cap=100).X.shape[1] == 2
