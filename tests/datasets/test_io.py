"""Tests for CSV loading/saving with the §3.1 preprocessing."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.datasets.io import load_csv, save_csv
from repro.exceptions import ValidationError


def write(tmp_path, content, name="data.csv"):
    path = tmp_path / name
    path.write_text(content)
    return path


def test_load_mixed_csv(tmp_path):
    path = write(tmp_path, (
        "size,color,verdict\n"
        "1.5,red,spam\n"
        "2.5,blue,ham\n"
        "3.5,red,spam\n"
        "?,blue,ham\n"
    ))
    dataset = load_csv(path, label_column="verdict")
    assert dataset.X.shape == (4, 2)
    assert dataset.name == "data"
    assert set(np.unique(dataset.y)) == {0, 1}
    # Missing size imputed with the median of {1.5, 2.5, 3.5}.
    assert dataset.X[3, 0] == pytest.approx(2.5)
    # Categorical color -> {blue: 1, red: 2}.
    assert dataset.X[0, 1] == 2.0


def test_label_by_negative_index(tmp_path):
    path = write(tmp_path, "1,0\n2,1\n3,0\n", name="plain.csv")
    dataset = load_csv(path, label_column=-1, has_header=False)
    assert dataset.X.shape == (3, 1)
    assert dataset.y.tolist() == [0, 1, 0]


def test_semicolon_delimiter_sniffed(tmp_path):
    path = write(tmp_path, "a;b;y\n1;2;x\n3;4;z\n")
    dataset = load_csv(path, label_column="y")
    assert dataset.X.shape == (2, 2)


def test_missing_tokens_recognized(tmp_path):
    path = write(tmp_path, "a,y\nNA,0\n5.0,1\nnull,0\n7.0,1\n")
    dataset = load_csv(path, label_column="y")
    assert not np.isnan(dataset.X).any()
    assert dataset.X[0, 0] == pytest.approx(6.0)  # median of 5, 7


def test_errors(tmp_path):
    with pytest.raises(ValidationError, match="empty"):
        load_csv(write(tmp_path, "", name="empty.csv"))
    with pytest.raises(ValidationError, match="no column named"):
        load_csv(write(tmp_path, "a,b\n1,0\n2,1\n"), label_column="missing")
    with pytest.raises(ValidationError, match="out of range"):
        load_csv(write(tmp_path, "a,b\n1,0\n2,1\n"), label_column=7)
    with pytest.raises(ValidationError, match="2 label values"):
        load_csv(write(tmp_path, "a,y\n1,0\n2,1\n3,2\n"), label_column="y")
    with pytest.raises(ValidationError, match="cells"):
        load_csv(write(tmp_path, "a,b,y\n1,2,0\n1,1\n"), label_column="y")


def test_roundtrip_through_save(tmp_path):
    original = load_dataset("synthetic/linear", size_cap=60)
    path = tmp_path / "roundtrip.csv"
    save_csv(original, path)
    loaded = load_csv(path, label_column="label")
    assert loaded.X.shape == original.X.shape
    assert np.allclose(loaded.X, original.X)
    assert np.array_equal(loaded.y, original.y)


def test_loaded_dataset_flows_through_platforms(tmp_path):
    path = write(tmp_path, "\n".join(
        ["f1,f2,y"] + [
            f"{i * 0.1},{(i * 7) % 5},{int(i % 10 < 5)}" for i in range(60)
        ]
    ))
    dataset = load_csv(path, label_column="y")
    from repro.core import Configuration, ExperimentRunner
    from repro.platforms import Google

    result = ExperimentRunner(split_seed=0).run_one(
        Google(random_state=0), dataset, Configuration.make()
    )
    assert result.ok
