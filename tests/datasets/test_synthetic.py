"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import (
    make_blobs,
    make_circles,
    make_classification,
    make_gaussian_quantiles,
    make_moons,
    make_polynomial_concept,
    make_rule_concept,
    make_sparse_linear,
    make_spirals,
    make_xor,
)
from repro.exceptions import ValidationError

GENERATORS = [
    (make_circles, {}),
    (make_classification, {"n_features": 4}),
    (make_moons, {}),
    (make_blobs, {"n_features": 3}),
    (make_gaussian_quantiles, {"n_features": 3}),
    (make_xor, {"n_features": 3}),
    (make_spirals, {}),
    (make_rule_concept, {"n_features": 6}),
    (make_sparse_linear, {"n_features": 30}),
    (make_polynomial_concept, {"n_features": 4}),
]


@pytest.mark.parametrize("generator,kwargs", GENERATORS)
def test_shapes_and_binary_labels(generator, kwargs):
    X, y = generator(n_samples=100, random_state=0, **kwargs)
    assert X.shape[0] == 100
    assert y.shape == (100,)
    assert set(np.unique(y)) == {0, 1}
    assert np.all(np.isfinite(X))


@pytest.mark.parametrize("generator,kwargs", GENERATORS)
def test_deterministic_given_seed(generator, kwargs):
    X1, y1 = generator(n_samples=60, random_state=42, **kwargs)
    X2, y2 = generator(n_samples=60, random_state=42, **kwargs)
    assert np.array_equal(X1, X2)
    assert np.array_equal(y1, y2)


@pytest.mark.parametrize("generator,kwargs", GENERATORS)
def test_different_seeds_differ(generator, kwargs):
    X1, _ = generator(n_samples=60, random_state=1, **kwargs)
    X2, _ = generator(n_samples=60, random_state=2, **kwargs)
    assert not np.array_equal(X1, X2)


def test_circles_radii_structure():
    X, y = make_circles(n_samples=400, noise=0.0, factor=0.5, random_state=0)
    radii = np.linalg.norm(X, axis=1)
    assert np.allclose(radii[y == 0], 1.0, atol=1e-9)
    assert np.allclose(radii[y == 1], 0.5, atol=1e-9)


def test_circles_factor_validated():
    with pytest.raises(ValidationError):
        make_circles(factor=1.5)


def test_classification_class_separation_increases_accuracy():
    from repro.learn.linear import LogisticRegression

    X_easy, y_easy = make_classification(
        n_samples=300, class_sep=4.0, flip_y=0.0, random_state=0
    )
    X_hard, y_hard = make_classification(
        n_samples=300, class_sep=0.3, flip_y=0.0, random_state=0
    )
    easy = LogisticRegression().fit(X_easy, y_easy).score(X_easy, y_easy)
    hard = LogisticRegression().fit(X_hard, y_hard).score(X_hard, y_hard)
    assert easy > hard


def test_classification_weights_control_imbalance():
    _, y = make_classification(
        n_samples=1000, weights=0.8, flip_y=0.0, random_state=0
    )
    assert np.mean(y == 0) == pytest.approx(0.8, abs=0.02)


def test_classification_flip_y_adds_noise():
    X, y_clean = make_classification(n_samples=500, flip_y=0.0, random_state=3)
    X2, y_noisy = make_classification(n_samples=500, flip_y=0.3, random_state=3)
    # With identical seeds the flip only changes labels.
    assert np.array_equal(X, X2)
    assert np.mean(y_clean != y_noisy) > 0.1


def test_xor_requires_two_features():
    with pytest.raises(ValidationError):
        make_xor(n_features=1)


def test_xor_is_not_linearly_separable():
    from repro.learn.linear import LogisticRegression

    X, y = make_xor(n_samples=400, noise=0.05, random_state=0)
    score = LogisticRegression().fit(X, y).score(X, y)
    assert score < 0.7


def test_rule_concept_is_tree_learnable():
    from repro.learn.tree import DecisionTreeClassifier

    X, y = make_rule_concept(
        n_samples=400, n_features=5, n_rules=2, flip_y=0.0, random_state=0
    )
    assert DecisionTreeClassifier().fit(X, y).score(X, y) > 0.95


def test_sparse_linear_informative_subset():
    X, y = make_sparse_linear(
        n_samples=200, n_features=50, n_informative=3, random_state=0
    )
    assert X.shape == (200, 50)
    assert 0.3 < y.mean() < 0.7  # median split keeps classes balanced


def test_tiny_sample_count_rejected():
    with pytest.raises(ValidationError):
        make_circles(n_samples=2)


def test_moons_two_clusters_disjoint_without_noise():
    X, y = make_moons(n_samples=200, noise=0.0, random_state=0)
    # Upper moon has y-coordinate >= 0, lower moon <= 0.5.
    assert X[y == 0, 1].min() >= -1e-9
    assert X[y == 1, 1].max() <= 0.5 + 1e-9
