"""End-to-end tests of the paper's key findings at reduced scale.

These are the reproduction's acceptance tests: each asserts the *shape*
of one headline result — who wins, in which direction — on a small,
deterministic corpus so the whole file runs in about a minute.
"""

import numpy as np
import pytest

from repro.analysis import (
    per_control_improvement,
    performance_variation,
    platform_summary,
    subset_performance_curve,
)
from repro.core import MLaaSStudy, StudyScale

SCALE = StudyScale(max_datasets=8, size_cap=250, feature_cap=12,
                   para_grid="default")


@pytest.fixture(scope="module")
def study():
    return MLaaSStudy(scale=SCALE, random_state=1)


@pytest.fixture(scope="module")
def baseline(study):
    return study.run_baseline()


@pytest.fixture(scope="module")
def optimized(study):
    return study.run_optimized()


def test_every_platform_measured_on_every_dataset(baseline, study):
    assert len(baseline) == 7 * len(study.corpus)
    assert len(baseline.ok()) == len(baseline)


def test_fig4_optimized_beats_baseline_on_tunable_platforms(baseline, optimized):
    for platform in ("predictionio", "bigml", "microsoft", "local"):
        assert optimized.for_platform(platform).mean_score() >= \
            baseline.for_platform(platform).mean_score() - 1e-9


def test_fig4_complexity_correlates_with_optimized_performance(optimized):
    """High-complexity platforms (Microsoft/local) top the optimized ranking."""
    scores = {
        platform: optimized.for_platform(platform).mean_score()
        for platform in optimized.platforms()
    }
    top_two = sorted(scores, key=lambda p: -scores[p])[:2]
    assert set(top_two) <= {"microsoft", "local", "predictionio"}
    # And the black boxes cannot be optimized at all, so they sit below
    # the best tunable platform.
    best_tunable = max(scores["microsoft"], scores["local"])
    assert scores["google"] <= best_tunable
    assert scores["abm"] <= best_tunable


def test_fig4_microsoft_matches_local_when_tuned(optimized):
    """The paper's headline: tuned Microsoft ~= tuned scikit-learn."""
    microsoft = optimized.for_platform("microsoft").mean_score()
    local = optimized.for_platform("local").mean_score()
    assert abs(microsoft - local) < 0.08


def test_table3_summary_produces_all_platforms(baseline):
    summaries = platform_summary(baseline)
    assert len(summaries) == 7
    # Friedman order and F-score order broadly agree (the paper's
    # validation of average F-score as the headline metric).
    by_friedman = [s.platform for s in summaries]
    by_f = sorted(
        summaries, key=lambda s: -s.avg["f_score"]
    )
    assert by_friedman[0] == by_f[0].platform


def test_fig5_classifier_choice_dominates_controls(study, baseline):
    """CLF provides the largest average improvement (paper: 14.6%)."""
    control_stores = study.run_all_controls()
    improvements = {}
    for dimension, store in control_stores.items():
        values = []
        for platform in store.platforms():
            value = per_control_improvement(baseline, store, platform)
            if np.isfinite(value):
                values.append(value)
        improvements[dimension] = np.mean(values) if values else np.nan
    assert improvements["CLF"] == max(
        improvements["CLF"], improvements.get("PARA", -np.inf),
        improvements.get("FEAT", -np.inf),
    )


def test_fig6_variation_grows_with_complexity(optimized):
    """More control => more risk: Microsoft/local spread widest."""
    spreads = {
        platform: performance_variation(optimized, platform).spread
        for platform in ("amazon", "predictionio", "bigml", "microsoft", "local")
    }
    assert max(spreads, key=lambda p: spreads[p]) in ("microsoft", "local")
    assert spreads["microsoft"] > spreads["amazon"]


def test_fig8_three_classifiers_near_optimal(optimized):
    """A random 3-subset of classifiers lands within ~5% of optimal."""
    for platform in ("microsoft", "local"):
        curve = dict(subset_performance_curve(optimized, platform))
        full = max(curve.values())
        assert curve[min(3, max(curve))] > full * 0.93
