"""Dogfood gate: the repro source tree must satisfy its own S-rules.

This enforces the array-contract invariants documented in DESIGN.md
§7.4: no provable shape-algebra conflicts (S401), explicit
np.float64/np.intp dtypes on the substrate's hot paths (S402), no
in-place mutation of caller-owned or cache-stored arrays (S403),
contiguous streaming access in the compiled substrate's hot loops
(S404), estimator array contracts matching the checked-in
``array_contracts_spec.py`` (S405), and validated arrays at the public
platform API boundary (S406).  A failure here means a change leaked an
implicit dtype, aliased a shared buffer, or altered an estimator's
array contract without recording it — run ``repro shape`` for the full
report; genuinely safe in-place writes need a ``# repro: disable=S4xx
-- why`` comment stating the ownership argument, and intentional
contract changes are recorded with ``repro shape --update-spec``.
"""

from pathlib import Path

import repro
from repro.tools.shape import shape_paths

SOURCE_ROOT = Path(repro.__file__).resolve().parent


def test_source_tree_has_no_unsuppressed_shape_violations():
    result = shape_paths([SOURCE_ROOT])
    report = "\n".join(
        f"{v.location}: {v.code} {v.message}" for v in result.unsuppressed
    )
    assert result.unsuppressed == [], f"repro shape found:\n{report}"
    assert result.n_files > 50  # the whole tree was actually scanned


def test_every_shape_suppression_carries_a_reason():
    result = shape_paths([SOURCE_ROOT])
    for violation in result.suppressed:
        assert violation.reason, (
            f"{violation.location}: suppressed {violation.code} without a "
            "reason (use '# repro: disable=CODE -- why')"
        )


def test_the_analyzer_still_sees_the_array_code():
    # Guard against the gate passing vacuously: the shape model must
    # carry array facts through the substrate and prove the platform
    # boundary validated.
    from repro.tools.flow.runner import build_flow_index
    from repro.tools.shape.arrays import build_shape_model

    index = build_flow_index([SOURCE_ROOT])
    model = build_shape_model(index)

    fit = model.functions[("repro.learn.bayes", "GaussianNB.fit")]
    assert fit.param_arrays["X"] == ("samples", "features")
    assert fit.returns_self

    # S406 stays quiet because the boundary really validates, not
    # because the analyzer lost sight of it.
    validated = model.validated_params()
    batch = ("repro.platforms.base", "MLaaSPlatform.batch_predict")
    assert "X" in validated[batch]
    select = ("repro.platforms.autoselect", "AutoClassifierSelector.select")
    assert {"X", "y"} <= validated[select]


def test_checked_in_spec_matches_a_fresh_derivation():
    from repro.tools.flow.runner import build_flow_index
    from repro.tools.shape.arrays import build_shape_model
    from repro.tools.shape.contracts import derive_contracts, load_spec

    spec = load_spec()
    assert spec, "array_contracts_spec.py is missing or empty"
    assert len(spec) >= 26  # covers the estimator zoo, Table-1 style
    derived = derive_contracts(build_shape_model(build_flow_index([SOURCE_ROOT])))
    assert derived == spec, (
        "derived array contracts drifted from array_contracts_spec.py; "
        "run `repro shape --update-spec` to record an intentional change"
    )
