"""Dogfood gate: the repro source tree must satisfy its own flow rules.

This enforces the cross-module invariants documented in DESIGN.md §7:
the layering DAG (F101), absence of test-data leakage into training
(F102), seed threading across call boundaries (F103), liveness of every
public symbol (F104), and API-surface stability against the checked-in
``api_spec.json`` (F105).  A failure here means a change inverted the
architecture, leaked held-out data, dropped a seed, stranded dead code,
or silently changed the public API — run ``repro flow`` for the full
report, and ``repro flow --update-spec`` for intentional API changes.
"""

from pathlib import Path

import repro
from repro.tools.flow import flow_paths

SOURCE_ROOT = Path(repro.__file__).resolve().parent


def test_source_tree_has_no_unsuppressed_flow_violations():
    result = flow_paths([SOURCE_ROOT])
    report = "\n".join(
        f"{v.location}: {v.code} {v.message}" for v in result.unsuppressed
    )
    assert result.unsuppressed == [], f"repro flow found:\n{report}"
    assert result.n_files > 50  # the whole tree was actually scanned


def test_every_flow_suppression_carries_a_reason():
    result = flow_paths([SOURCE_ROOT])
    for violation in result.suppressed:
        assert violation.reason, (
            f"{violation.location}: suppressed {violation.code} without a "
            "reason (use '# repro: disable=CODE -- why')"
        )


def test_api_spec_is_in_sync_with_the_tree():
    # --update-spec must be a no-op on a clean tree: extracting the
    # surface again yields byte-identical JSON (so CI diffs stay quiet).
    import json

    from repro.tools.flow import build_flow_index
    from repro.tools.flow.apispec import DEFAULT_SPEC_PATH, extract_surface

    index = build_flow_index([SOURCE_ROOT])
    current = json.dumps(extract_surface(index), indent=2, sort_keys=True) + "\n"
    assert DEFAULT_SPEC_PATH.read_text(encoding="utf-8") == current
