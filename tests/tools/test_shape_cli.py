"""Tests for the ``repro shape`` command-line front ends and exit codes."""

import io
import json
import subprocess
import sys
from pathlib import Path

import repro.cli
from repro.tools.shape.cli import main as shape_main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"
FIXTURES = Path(__file__).resolve().parent / "shape_fixtures"

S_CODES = ("S401", "S402", "S403", "S404", "S405", "S406")


def run_main(argv):
    out = io.StringIO()
    code = shape_main(argv, out=out)
    return code, out.getvalue()


def test_list_rules_prints_all_six_rules():
    code, output = run_main(["--list-rules"])
    assert code == 0
    for rule_code in S_CODES:
        assert rule_code in output


def test_nonexistent_path_is_a_usage_error():
    code, _ = run_main(["definitely/not/a/path"])
    assert code == 2


def test_clean_tree_exits_zero():
    code, output = run_main([str(REPO_SRC / "repro")])
    assert code == 0
    assert "0 violations" in output


def test_violating_fixture_exits_one_with_json_report():
    code, output = run_main([
        str(FIXTURES / "s401_shape"), "--format", "json",
    ])
    assert code == 1
    report = json.loads(output)
    assert report["summary"]["exit_code"] == 1
    codes = {v["code"] for v in report["violations"]}
    assert codes == {"S401"}
    assert all(v["path"].endswith("bad.py")
               for v in report["violations"])


def test_python_dash_m_entry_point():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.tools.shape", "--list-rules"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "S401" in proc.stdout


def test_repro_cli_shape_subcommand():
    out = io.StringIO()
    code = repro.cli.main(["shape", "--list-rules"], out=out)
    assert code == 0
    assert "S406" in out.getvalue()


def test_shape_suppression_with_reason_is_honored(tmp_path):
    source = FIXTURES / "s403_alias" / "bad.py"
    patched = tmp_path / "patched.py"
    patched.write_text(
        source.read_text(encoding="utf-8").replace(
            "X[X > limit] = limit  # mutates the caller's buffer in place",
            "X[X > limit] = limit  # repro: disable=S403 -- "
            "fixture documents the out-parameter contract",
        ),
        encoding="utf-8",
    )
    code, output = run_main([str(tmp_path), "--show-suppressed"])
    assert code == 1  # the view/cache/sort mutations still fire
    assert "suppressed: fixture documents the out-parameter" in output
    assert output.count("S403") == 4


def test_shape_suppression_without_reason_is_r000(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text(
        "import numpy as np\n\n\n"
        "def idle():\n"
        "    pass  # repro: disable=S401\n",
        encoding="utf-8",
    )
    code, output = run_main([str(tmp_path)])
    assert code == 1
    assert "R000" in output and "justification" in output


def test_update_spec_round_trips(tmp_path):
    pkg = FIXTURES / "s405_contract" / "pkg"
    spec = tmp_path / "spec.py"

    code, output = run_main(["--update-spec", "--spec", str(spec), str(pkg)])
    assert code == 0
    assert "wrote derived array contracts of 1 estimator(s)" in output
    first = spec.read_text(encoding="utf-8")
    assert "TinyCentroid" in first and "'predict'" in first

    # A check run against the freshly written spec reports no drift.
    code, output = run_main([
        str(pkg), "--spec", str(spec), "--format", "json",
    ])
    report = json.loads(output)
    assert "S405" not in {v["code"] for v in report["violations"]}

    # Regenerating is a fixed point: byte-identical output.
    code, _ = run_main(["--update-spec", "--spec", str(spec), str(pkg)])
    assert code == 0
    assert spec.read_text(encoding="utf-8") == first


def test_checked_in_spec_is_the_update_spec_fixed_point(tmp_path):
    # Rederiving the real tree's contracts must reproduce the committed
    # spec byte for byte, so `--update-spec` never churns the diff.
    from repro.tools.shape.contracts import DEFAULT_SPEC_PATH

    spec = tmp_path / "spec.py"
    code, _ = run_main([
        "--update-spec", "--spec", str(spec), str(REPO_SRC / "repro"),
    ])
    assert code == 0
    assert spec.read_text(encoding="utf-8") == \
        DEFAULT_SPEC_PATH.read_text(encoding="utf-8")
