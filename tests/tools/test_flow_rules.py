"""Per-family tests for the F-rules, driven by the fixture mini-packages.

Each directory under ``flow_fixtures/`` is a self-contained mini-tree
whose modules are named into the real ``repro.*`` namespaces so the
layering spec applies, with one deliberate violation per rule family.
``context_paths=()`` keeps the real tests/benchmarks/examples out of the
fixture analyses.
"""

from pathlib import Path

from repro.tools.flow import flow_paths
from repro.tools.flow.rules import (
    ApiDriftRule,
    DeadCodeRule,
    LayeringRule,
    LeakageTaintRule,
    SeedFlowRule,
)

FIXTURES = Path(__file__).resolve().parent / "flow_fixtures"


def run_fixture(name, rules, spec_path=None):
    return flow_paths(
        [FIXTURES / name], rules=rules,
        root=FIXTURES / name, spec_path=spec_path, context_paths=(),
    )


def codes_and_paths(result):
    return [(v.code, v.path, v.line) for v in result.unsuppressed]


# ---------------------------------------------------------------------------
# F101 layering
# ---------------------------------------------------------------------------


def test_f101_flags_upward_import():
    result = run_fixture("f101_upward", [LayeringRule()])
    findings = [v for v in result.unsuppressed if v.code == "F101"]
    assert len(findings) == 1
    violation = findings[0]
    assert "upward import" in violation.message
    assert "repro.learn.upward" in violation.message
    assert "repro.core" in violation.message
    assert violation.path.endswith("upward.py")


def test_f101_flags_import_time_cycle_but_not_deferred_break():
    result = run_fixture("f101_cycle", [LayeringRule()])
    findings = [v for v in result.unsuppressed if v.code == "F101"]
    assert len(findings) == 1  # alpha<->beta only; gamma/delta is deferred
    message = findings[0].message
    assert "cycle" in message
    assert "repro.core.alpha" in message and "repro.core.beta" in message
    assert "gamma" not in message and "delta" not in message


# ---------------------------------------------------------------------------
# F102 leakage taint
# ---------------------------------------------------------------------------


def test_f102_flags_direct_and_interprocedural_leaks():
    result = run_fixture("f102_leak", [LeakageTaintRule()])
    findings = [v for v in result.unsuppressed if v.code == "F102"]
    lines = {v.line for v in findings if v.path.endswith("leaky.py")}
    # Direct leak: estimator.fit(X_test, y_test) in leaky_evaluate.
    assert 12 in lines
    # Interprocedural: fitting data a helper derived from a test split.
    assert 27 in lines
    # Interprocedural: handing test data to a helper that fits it.
    assert 29 in lines
    # The clean path must stay silent.
    assert not any(v.line <= 8 for v in findings if v.path.endswith("leaky.py"))


def test_f102_suppression_with_reason_is_honored():
    result = run_fixture("f102_leak", [LeakageTaintRule()])
    suppressed = [v for v in result.suppressed
                  if v.path.endswith("suppressed.py")]
    assert len(suppressed) == 1
    assert suppressed[0].code == "F102"
    assert "calibration" in suppressed[0].reason
    assert not any(v.path.endswith("suppressed.py")
                   for v in result.unsuppressed)


# ---------------------------------------------------------------------------
# F103 seed flow
# ---------------------------------------------------------------------------


def test_f103_flags_unthreaded_seed_for_class_and_function_callees():
    result = run_fixture("f103_seed", [SeedFlowRule()])
    findings = [v for v in result.unsuppressed if v.code == "F103"]
    assert {v.line for v in findings} == {15, 16}
    messages = " ".join(v.message for v in findings)
    assert "Shuffler" in messages
    assert "sample_rows" in messages
    # The correctly threaded twin (build_pipeline_correctly) stays silent.
    assert all(v.line < 20 for v in findings)


# ---------------------------------------------------------------------------
# F104 dead code
# ---------------------------------------------------------------------------


def test_f104_flags_orphans_but_not_the_live_chain():
    result = run_fixture("f104_dead", [DeadCodeRule()])
    findings = [v for v in result.unsuppressed if v.code == "F104"]
    named = {v.message.split("'")[1] for v in findings}
    assert named == {"ORPHAN_CONSTANT", "orphan_function", "OrphanClass"}
    # used_entry (__all__), _live_helper and LIVE_CONSTANT (referenced
    # from used_entry) are alive.
    assert "used_entry" not in named
    assert "_live_helper" not in named
    assert "LIVE_CONSTANT" not in named


# ---------------------------------------------------------------------------
# F105 API drift
# ---------------------------------------------------------------------------


def test_f105_flags_signature_and_export_drift():
    spec = FIXTURES / "f105_drift" / "api_spec.json"
    result = run_fixture("f105_drift", [ApiDriftRule(spec_path=spec)])
    findings = [v for v in result.unsuppressed if v.code == "F105"]
    messages = " ".join(v.message for v in findings)
    assert "removed_name" in messages          # export dropped vs. spec
    assert "signature changed" in messages     # default 0.9 -> 0.5
    assert "(X, threshold=0.5)" in messages


def test_f105_missing_spec_is_reported():
    result = run_fixture(
        "f105_drift",
        [ApiDriftRule(spec_path=FIXTURES / "f105_drift" / "missing.json")],
    )
    findings = [v for v in result.unsuppressed if v.code == "F105"]
    assert len(findings) == 1
    assert "no API spec" in findings[0].message


def test_f105_update_spec_round_trip(tmp_path):
    from repro.tools.flow.apispec import extract_surface, load_spec, write_spec
    from repro.tools.flow.runner import build_flow_index

    spec_path = tmp_path / "api_spec.json"
    index = build_flow_index(
        [FIXTURES / "f105_drift"], context_paths=(),
    )
    write_spec(extract_surface(index), spec_path)
    # Freshly written spec: drift rule is silent.
    result = run_fixture("f105_drift", [ApiDriftRule(spec_path=spec_path)])
    assert [v for v in result.unsuppressed if v.code == "F105"] == []
    # And the file round-trips through load_spec unchanged.
    assert load_spec(spec_path) == extract_surface(index)


# ---------------------------------------------------------------------------
# Cross-cutting: fixtures stay silent under the *other* rule families
# ---------------------------------------------------------------------------


def test_fixture_violations_do_not_bleed_across_families():
    result = run_fixture("f103_seed", [LayeringRule(), LeakageTaintRule()])
    assert result.unsuppressed == []
