"""Per-rule tests for the C-rules, driven by the fixture mini-packages.

Each directory under ``race_fixtures/`` holds a ``bad.py`` with the
deliberate hazards one rule must catch and an ``ok.py`` with the same
patterns made safe (locked, atomic, per-task, module-level) that must
stay silent.  ``context_paths=()`` keeps the real tests/benchmarks out
of the fixture analyses.
"""

from pathlib import Path

from repro.tools.race import race_paths
from repro.tools.race.rules import (
    BlockingUnderLockRule,
    CheckThenActRule,
    LockOrderRule,
    ProcessCaptureRule,
    SharedRngRule,
    UnguardedSharedWriteRule,
)

FIXTURES = Path(__file__).resolve().parent / "race_fixtures"


def run_fixture(name, rules):
    return race_paths(
        [FIXTURES / name], rules=rules,
        root=FIXTURES / name, context_paths=(),
    )


def findings(result, code, path_suffix=None):
    return [
        v for v in result.unsuppressed
        if v.code == code
        and (path_suffix is None or v.path.endswith(path_suffix))
    ]


# ---------------------------------------------------------------------------
# C201 lock-order
# ---------------------------------------------------------------------------


def test_c201_flags_inversion_and_self_deadlock():
    result = run_fixture("c201_order", [LockOrderRule()])
    bad = findings(result, "C201", "bad.py")
    messages = [v.message for v in bad]
    assert any("lock-order inversion" in m for m in messages)
    assert any("self-deadlock" in m for m in messages)
    assert len(bad) == 2


def test_c201_sees_inversion_through_call_boundary():
    result = run_fixture("c201_order", [LockOrderRule()])
    bad = findings(result, "C201", "bad_calls.py")
    assert len(bad) == 1
    assert "lock-order inversion" in bad[0].message
    assert "lock_x" in bad[0].message and "lock_y" in bad[0].message


def test_c201_clean_on_consistent_order_and_rlock():
    result = run_fixture("c201_order", [LockOrderRule()])
    assert findings(result, "C201", "ok.py") == []


# ---------------------------------------------------------------------------
# C202 unguarded-shared-write
# ---------------------------------------------------------------------------


def test_c202_flags_pool_and_closure_workers():
    result = run_fixture("c202_shared_write", [UnguardedSharedWriteRule()])
    bad = findings(result, "C202", "bad.py")
    roots = {v.message for v in bad}
    assert any("counts" in m for m in roots)  # module global via pool.submit
    assert any("results" in m for m in roots)  # closure via Thread(target=...)
    assert len(bad) == 2


def test_c202_clean_when_locked_or_queue():
    result = run_fixture("c202_shared_write", [UnguardedSharedWriteRule()])
    assert findings(result, "C202", "ok.py") == []


# ---------------------------------------------------------------------------
# C203 check-then-act
# ---------------------------------------------------------------------------


def test_c203_flags_both_spellings_in_lock_owning_class():
    result = run_fixture("c203_check_then_act", [CheckThenActRule()])
    bad = findings(result, "C203", "bad.py")
    assert len(bad) == 2
    assert all("self._items" in v.message for v in bad)


def test_c203_clean_under_lock_setdefault_or_unshared_class():
    result = run_fixture("c203_check_then_act", [CheckThenActRule()])
    assert findings(result, "C203", "ok.py") == []


# ---------------------------------------------------------------------------
# C204 process-capture
# ---------------------------------------------------------------------------


def test_c204_flags_lambda_closure_lock_and_bound_method():
    result = run_fixture("c204_process", [ProcessCaptureRule()])
    bad = findings(result, "C204", "bad.py")
    messages = " | ".join(v.message for v in bad)
    assert "lambda" in messages
    assert "closure 'helper'" in messages
    assert "'lock'" in messages  # unsafe argument
    assert "closure 'setup'" in messages  # initializer
    assert "bound method" in messages
    assert len(bad) == 5


def test_c204_clean_with_module_level_function_and_plain_args():
    result = run_fixture("c204_process", [ProcessCaptureRule()])
    assert findings(result, "C204", "ok.py") == []


# ---------------------------------------------------------------------------
# C205 blocking-under-lock
# ---------------------------------------------------------------------------


def test_c205_flags_direct_and_through_call_blocking():
    result = run_fixture("c205_blocking", [BlockingUnderLockRule()])
    bad = findings(result, "C205", "bad.py")
    messages = " | ".join(v.message for v in bad)
    assert "time.sleep" in messages
    assert "write_text" in messages
    assert "slow_write" in messages  # via the resolvable callee
    assert "result" in messages
    assert len(bad) == 4


def test_c205_clean_outside_lock_and_for_condition_wait():
    result = run_fixture("c205_blocking", [BlockingUnderLockRule()])
    assert findings(result, "C205", "ok.py") == []


# ---------------------------------------------------------------------------
# C206 shared-rng
# ---------------------------------------------------------------------------


def test_c206_flags_off_lock_class_draw_closure_and_thread_args():
    result = run_fixture("c206_rng", [SharedRngRule()])
    bad = findings(result, "C206", "bad.py")
    messages = " | ".join(v.message for v in bad)
    assert "self._rng" in messages  # off-lock draw in lock-owning class
    assert "closure" in messages  # shared via closure in a worker
    assert "passed to a thread" in messages  # generator in Thread args
    assert len(bad) == 3


def test_c206_clean_for_locked_class_and_per_task_generators():
    result = run_fixture("c206_rng", [SharedRngRule()])
    assert findings(result, "C206", "ok.py") == []
