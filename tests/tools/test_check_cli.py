"""Tests for ``repro check``: six analyzers, one parse, one report."""

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

import repro.cli
from repro.tools.check.cli import main as check_main
from repro.tools.check.runner import TOOL_NAMES, run_check
from repro.tools.exitcodes import EXIT_CRASH, EXIT_FINDINGS, EXIT_USAGE

REPO_SRC = Path(__file__).resolve().parents[2] / "src"
FIXTURES = Path(__file__).resolve().parent


def run_main(argv):
    out = io.StringIO()
    code = check_main(argv, out=out)
    return code, out.getvalue()


def test_clean_tree_exits_zero_with_all_six_sections():
    code, output = run_main([str(REPO_SRC / "repro")])
    assert code == 0
    for name in TOOL_NAMES:
        assert f"== repro {name} ==" in output
    assert "across 6 analyzer(s)" in output


def test_merged_json_nests_every_tool_and_totals_the_summary():
    code, output = run_main([
        str(FIXTURES / "wire_fixtures" / "w503_lifecycle"),
        "--format", "json",
    ])
    assert code == EXIT_FINDINGS
    report = json.loads(output)
    assert sorted(report["tools"]) == sorted(TOOL_NAMES)
    assert report["summary"]["exit_code"] == EXIT_FINDINGS
    assert report["summary"]["crashed"] == []
    per_tool = sum(len(report["tools"][name]["violations"])
                   for name in TOOL_NAMES)
    assert report["summary"]["violations"] == per_tool
    wire = report["tools"]["wire"]
    assert {v["code"] for v in wire["violations"]} == {"W503"}


def test_tools_subset_runs_only_the_named_analyzers():
    code, output = run_main([
        str(FIXTURES / "wire_fixtures" / "w503_lifecycle"),
        "--tools", "lint,wire", "--format", "json",
    ])
    report = json.loads(output)
    assert sorted(report["tools"]) == ["lint", "wire"]


def test_unknown_tool_is_a_usage_error(capsys):
    code, _ = run_main([
        str(REPO_SRC / "repro"), "--tools", "lint,quantum",
    ])
    assert code == EXIT_USAGE
    assert "unknown analyzer(s): quantum" in capsys.readouterr().err


def test_nonexistent_path_is_a_usage_error():
    code, _ = run_main(["definitely/not/a/path"])
    assert code == EXIT_USAGE


def test_artifacts_dir_gets_one_report_per_tool(tmp_path):
    artifacts = tmp_path / "reports"
    code, output = run_main([
        str(FIXTURES / "wire_fixtures" / "w503_lifecycle"),
        "--tools", "shape,wire", "--artifacts-dir", str(artifacts),
        "--format", "json",
    ])
    written = sorted(p.name for p in artifacts.iterdir())
    assert written == ["shape-report.json", "wire-report.json"]
    wire = json.loads((artifacts / "wire-report.json").read_text())
    assert wire["summary"]["exit_code"] == EXIT_FINDINGS


def test_a_crashing_tool_reports_exit_three_without_silencing_others(
        monkeypatch):
    import repro.tools.check.runner as check_runner

    def boom(loaded):
        raise RuntimeError("synthetic lint crash")

    monkeypatch.setattr(check_runner, "_run_lint_shared", boom)
    report = run_check([REPO_SRC / "repro"])
    assert report.exit_code == EXIT_CRASH
    assert "synthetic lint crash" in report.crashes["lint"]
    assert "lint" not in report.results
    # The other five analyzers still delivered their results.
    assert sorted(report.results) == ["flow", "perf", "race", "shape",
                                      "wire"]


def test_worst_exit_code_wins_across_tools():
    # The fixture only trips wire; every other analyzer is clean, and
    # the merged exit code is still 1.
    report = run_check([FIXTURES / "wire_fixtures" / "w503_lifecycle"],
                       root=FIXTURES / "wire_fixtures" / "w503_lifecycle")
    assert report.results["wire"].exit_code == EXIT_FINDINGS
    assert report.results["lint"].exit_code in (0, 1)
    assert report.exit_code >= EXIT_FINDINGS


def test_python_dash_m_entry_point():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.tools.check",
         str(REPO_SRC / "repro"), "--tools", "lint"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "== repro lint ==" in proc.stdout


def test_repro_cli_check_subcommand():
    out = io.StringIO()
    code = repro.cli.main(
        ["check", str(REPO_SRC / "repro"), "--tools", "wire"], out=out)
    assert code == 0
    assert "== repro wire ==" in out.getvalue()


@pytest.mark.parametrize("fmt", ["text", "json"])
def test_show_suppressed_flows_through_to_every_tool(fmt):
    code, output = run_main([
        str(REPO_SRC / "repro"), "--show-suppressed", "--format", fmt,
    ])
    assert code == 0
    assert "suppressed" in output
