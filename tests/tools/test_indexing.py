"""Tests for the memoized project-loading facade shared by the analyzers."""

from pathlib import Path

import pytest

import repro
from repro.tools.indexing import (
    clear_index_cache,
    index_cache_info,
    load_indexed_project,
)

SOURCE_ROOT = Path(repro.__file__).resolve().parent


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_index_cache()
    yield
    clear_index_cache()


def write_tree(tmp_path):
    tmp_path.mkdir(exist_ok=True)
    (tmp_path / "alpha.py").write_text(
        '"""Alpha."""\n\n__all__ = ["one"]\n\n\ndef one():\n    return 1\n',
        encoding="utf-8",
    )
    (tmp_path / "beta.py").write_text(
        '"""Beta."""\n\n__all__ = ["two"]\n\n\ndef two():\n    return 2\n',
        encoding="utf-8",
    )
    return tmp_path


def test_identical_arguments_hit_the_cache(tmp_path):
    tree = write_tree(tmp_path)
    first = load_indexed_project([tree], root=tree)
    second = load_indexed_project([tree], root=tree)
    assert second is first  # the exact same object, not an equal copy
    info = index_cache_info()
    assert info["hits"] == 1 and info["misses"] == 1
    assert first.n_files == 2
    assert {m.dotted_name for m in first.project.modules} == {"alpha", "beta"}


def test_touching_a_file_invalidates_the_entry(tmp_path):
    tree = write_tree(tmp_path)
    first = load_indexed_project([tree], root=tree)
    target = tree / "alpha.py"
    target.write_text(
        target.read_text(encoding="utf-8").replace("return 1", "return 10"),
        encoding="utf-8",
    )
    second = load_indexed_project([tree], root=tree)
    assert second is not first
    assert index_cache_info()["misses"] == 2


def test_different_context_paths_are_distinct_entries(tmp_path):
    tree = write_tree(tmp_path / "pkg")
    context = tmp_path / "ctx"
    context.mkdir()
    (context / "uses.py").write_text(
        '"""Ctx."""\n\nfrom alpha import one\n\nprint(one())\n',
        encoding="utf-8",
    )
    bare = load_indexed_project([tree], root=tree)
    with_context = load_indexed_project([tree], root=tree,
                                        context_paths=[context])
    assert with_context is not bare
    assert len(with_context.context_modules) == 1
    assert index_cache_info()["misses"] == 2


def test_all_six_analyzers_share_one_parse_of_the_real_tree():
    from repro.tools.flow import flow_paths
    from repro.tools.perf import perf_paths
    from repro.tools.race import race_paths
    from repro.tools.shape import shape_paths
    from repro.tools.wire import wire_paths

    flow_paths([SOURCE_ROOT])
    after_flow = index_cache_info()
    race_paths([SOURCE_ROOT])
    after_race = index_cache_info()
    assert after_race["misses"] == after_flow["misses"]  # no re-parse
    assert after_race["hits"] > after_flow["hits"]
    perf_paths([SOURCE_ROOT])
    after_perf = index_cache_info()
    assert after_perf["misses"] == after_flow["misses"]  # still one parse
    assert after_perf["hits"] > after_race["hits"]
    shape_paths([SOURCE_ROOT])
    after_shape = index_cache_info()
    assert after_shape["misses"] == after_flow["misses"]  # still one parse
    assert after_shape["hits"] > after_perf["hits"]
    wire_paths([SOURCE_ROOT])
    after_wire = index_cache_info()
    assert after_wire["misses"] == after_flow["misses"]  # still one parse
    assert after_wire["hits"] > after_shape["hits"]


def test_perf_memoizes_its_loop_model_on_the_shared_entry():
    from repro.tools.perf import perf_paths

    perf_paths([SOURCE_ROOT])
    loaded = load_indexed_project([SOURCE_ROOT])
    model = loaded.loop_model()
    assert model is loaded.loop_model()  # built once per cache entry
    assert loaded.loop_model().functions  # and actually populated


def test_shape_memoizes_its_shape_model_on_the_shared_entry():
    from repro.tools.shape import shape_paths

    shape_paths([SOURCE_ROOT])
    loaded = load_indexed_project([SOURCE_ROOT])
    model = loaded.shape_model()
    assert model is loaded.shape_model()  # built once per cache entry
    assert loaded.shape_model().functions  # and actually populated
    # Loop and shape models coexist on one entry without eviction.
    assert loaded.loop_model() is loaded.loop_model()


def test_wire_memoizes_its_wire_model_on_the_shared_entry():
    from repro.tools.wire import wire_paths

    wire_paths([SOURCE_ROOT])
    loaded = load_indexed_project([SOURCE_ROOT])
    model = loaded.wire_model()
    assert model is loaded.wire_model()  # built once per cache entry
    assert model.gateways and model.clients  # and actually populated
    # The wire model consumes the shape model, so one wire run warms
    # both on the same entry.
    assert loaded.shape_model() is loaded.shape_model()
    assert model.shape_model is loaded.shape_model()


def test_check_runs_the_whole_suite_on_one_parse():
    from repro.tools.check import run_check

    report = run_check([SOURCE_ROOT])
    assert tuple(report.results) == (
        "lint", "flow", "race", "perf", "shape", "wire",
    )
    assert not report.crashes
    info = index_cache_info()
    assert info["misses"] == 1  # six analyzers, one parse
    assert info["hits"] >= 5


def test_callers_must_copy_parse_violations(tmp_path):
    tree = write_tree(tmp_path)
    (tree / "broken.py").write_text("def nope(:\n", encoding="utf-8")
    loaded = load_indexed_project([tree], root=tree)
    assert len(loaded.parse_violations) == 1
    # The documented contract: consumers copy before appending, so the
    # cached list is still pristine for the next tool in the process.
    again = load_indexed_project([tree], root=tree)
    assert again.parse_violations == loaded.parse_violations
    assert len(again.parse_violations) == 1
