"""Spec that matches the fixture estimator's derived array contract."""

__all__ = ["ARRAY_CONTRACTS"]

ARRAY_CONTRACTS = {
    'model.TinyCentroid': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': (),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': ('samples',),
            'out_dtype': 'float64',
        },
    },
}
