"""S405 fixture estimator: a fixed, derivable array contract."""

import numpy as np


class BaseEstimator:
    """Stand-in base so the fixture tree is self-contained."""


class TinyCentroid(BaseEstimator):
    """Nearest-mean scorer with a stable fit/predict contract."""

    def fit(self, X, y):
        self.classes_ = np.unique(y)
        self._mean = np.mean(X, axis=0)
        return self

    def predict(self, X):
        X = np.asarray(X, dtype=np.float64)
        scores = X @ np.ones(X.shape[1])
        return (scores > 0.0).astype(np.float64)
