"""Spec with one drifted method entry and one stale estimator."""

__all__ = ["ARRAY_CONTRACTS"]

ARRAY_CONTRACTS = {
    'model.TinyCentroid': {
        'fit': {
            'in': {'X': ('samples', 'features'), 'y': ('samples',)},
            'validates': (),
            'out': 'self',
            'out_dtype': None,
        },
        'predict': {
            'in': {'X': ('samples', 'features')},
            'validates': (),
            'out': ('samples',),
            'out_dtype': 'float32',
        },
    },
    'model.Gone': {
        'fit': {
            'in': {'X': ('samples', 'features')},
            'validates': ('X',),
            'out': 'self',
            'out_dtype': None,
        },
    },
}
