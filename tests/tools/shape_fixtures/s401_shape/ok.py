"""S401 clean fixture: shape algebra that checks out symbolically."""

import numpy as np


def projection(X):
    weights = np.zeros(X.shape[1])
    return X @ weights  # (samples, features) @ (features,) contracts


def doubled(X):
    return np.vstack([X, X])


def centered(X, y):
    return X - np.mean(X, axis=0)  # (samples, features) - (features,)
