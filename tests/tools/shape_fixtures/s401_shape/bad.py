"""S401 firing fixture: provable dimension conflicts."""

import numpy as np


def mismatched_projection(X, y):
    # X is (samples, features), y is (samples,): the inner dimensions
    # cannot contract.
    return np.dot(X, y)


def mismatched_stack(X):
    flipped = X.T
    return np.vstack([X, flipped])  # features joined against samples
