"""S402 clean fixture: explicit widths everywhere."""

import numpy as np


def widen(flags, idx):
    scores = flags.astype(np.float64)
    order = np.zeros(idx.shape[0], dtype=np.intp)
    return scores, order


def totals(codes):
    wide = codes.astype(np.intp)
    return np.cumsum(wide)
