"""S402 firing fixture: builtin dtype names and an int32 reduction."""

import numpy as np


def widen(flags, idx):
    scores = flags.astype(float)               # implicit width
    order = np.zeros(idx.shape[0], dtype=int)  # platform-width ints
    return scores, order


def overflowing(codes):
    small = codes.astype(np.int32)
    return np.cumsum(small)  # running total can exceed 32 bits
