"""S406 clean fixture: boundary normalization, direct and delegated."""

import numpy as np


def _normalize(X):
    return np.asarray(X, dtype=np.float64)


class Endpoint:
    """Platform front end normalizing queries at the boundary."""

    def predict_batch(self, model, X):
        X = np.asarray(X, dtype=np.float64)
        return model.predict(X)


class Gateway:
    """Boundary method that validates through an in-project helper."""

    def upload(self, X):
        return _normalize(X)
