"""S406 firing fixture: raw client arrays reach the estimator."""


class Endpoint:
    """Platform front end that forwards queries unvalidated."""

    def predict_batch(self, model, X):
        return model.predict(X)  # X is whatever the client sent
