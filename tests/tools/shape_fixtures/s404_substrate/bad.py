"""S404 firing fixture: cache-hostile reads in compiled hot loops."""

import numpy as np

_COMPILED_SUBSTRATE = True


def gather(X):
    rows = np.flatnonzero(X[:, 0] > 0.0)
    total = np.zeros(X.shape[1])
    for i in range(X.shape[0]):
        block = X[rows]  # same gather copied every row
        total = total + block[0]
    return total


def stream(X, j):
    total = 0.0
    for i in range(X.shape[0]):
        column = X[:, j]  # strided column read per row
        total += column[0]
    return total
