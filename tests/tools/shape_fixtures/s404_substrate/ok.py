"""S404 clean fixture: hoisted gathers and loop-varying indexes."""

import numpy as np

_COMPILED_SUBSTRATE = True


def gather(X):
    rows = np.flatnonzero(X[:, 0] > 0.0)
    block = X[rows]  # hoisted: one gather before the loop
    total = np.zeros(X.shape[1])
    for i in range(X.shape[0]):
        total = total + block[0]
    return total


def route(X, depth=4):
    nodes = np.arange(X.shape[0])
    level = 0
    while level < depth:
        nodes = nodes[nodes > 0]  # the index is rebuilt every level
        level += 1
    return nodes


def binned(X):
    total = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        total[j] = X[:, j].sum()  # features-dim loop: columns expected
    return total
