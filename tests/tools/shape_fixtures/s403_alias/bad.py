"""S403 firing fixture: in-place writes into arrays the code doesn't own."""

import numpy as np


def clamp_rows(X, limit):
    X[X > limit] = limit  # mutates the caller's buffer in place
    return X


def center_view(X):
    first = X[:, 0]
    first -= first.mean()  # augmented write through a view of X
    return X


def poison_cache(cache, X):
    features = cache.fit_transform(X)
    features[0] = 0.0  # cache-stored arrays are shared read-only
    return features


def sort_in_place(y):
    y.sort()  # reorders the caller's labels
    return y
