"""S403 clean fixture: copy before writing."""

import numpy as np


def clamp_rows(X, limit):
    X = X.copy()
    X[X > limit] = limit
    return X


def center_column(X):
    first = X[:, 0].copy()
    first -= first.mean()
    return first


def sorted_labels(y):
    ordered = np.sort(y)  # np.sort returns a fresh array
    return ordered
