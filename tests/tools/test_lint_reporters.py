"""Reporter snapshots: text and JSON renderings of a fixed result."""

import json

from repro.tools.lint import LintResult, Violation, render_json, render_text

_RESULT = LintResult(
    violations=[
        Violation(code="R001", message="unseeded rng", path="src/a.py",
                  line=3, col=4),
        Violation(code="R004", message="bare except", path="src/b.py",
                  line=9, col=0, suppressed=True, reason="fixture"),
    ],
    n_files=2,
)


def test_text_report_hides_suppressed_by_default():
    text = render_text(_RESULT)
    assert "src/a.py:3:4: R001 unseeded rng" in text
    assert "bare except" not in text
    assert "1 violation (1 suppressed) in 2 files" in text


def test_text_report_can_show_suppressed():
    text = render_text(_RESULT, show_suppressed=True)
    assert "bare except" in text
    assert "fixture" in text


def test_text_report_clean_summary():
    text = render_text(LintResult(violations=[], n_files=5))
    assert "0 violations" in text


def test_json_report_round_trips():
    payload = json.loads(render_json(_RESULT))
    assert payload["summary"]["files"] == 2
    assert payload["summary"]["violations"] == 1
    assert payload["summary"]["suppressed"] == 1
    assert payload["summary"]["exit_code"] == 1
    [violation] = [v for v in payload["violations"] if v["code"] == "R001"]
    assert violation["path"] == "src/a.py"
    assert violation["line"] == 3


def test_json_report_includes_suppressed_when_asked():
    payload = json.loads(render_json(_RESULT, show_suppressed=True))
    codes = {v["code"] for v in payload["violations"]}
    assert codes == {"R001", "R004"}
