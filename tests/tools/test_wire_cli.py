"""Tests for the ``repro wire`` command-line front ends and exit codes."""

import io
import json
import subprocess
import sys
from pathlib import Path

import repro.cli
from repro.tools.wire.cli import main as wire_main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"
FIXTURES = Path(__file__).resolve().parent / "wire_fixtures"

W_CODES = ("W501", "W502", "W503", "W504", "W505", "W506")


def run_main(argv):
    out = io.StringIO()
    code = wire_main(argv, out=out)
    return code, out.getvalue()


def test_list_rules_prints_all_six_rules():
    code, output = run_main(["--list-rules"])
    assert code == 0
    for rule_code in W_CODES:
        assert rule_code in output


def test_nonexistent_path_is_a_usage_error():
    code, _ = run_main(["definitely/not/a/path"])
    assert code == 2


def test_clean_tree_exits_zero():
    code, output = run_main([str(REPO_SRC / "repro")])
    assert code == 0
    assert "0 violations" in output


def test_violating_fixture_exits_one_with_json_report():
    code, output = run_main([
        str(FIXTURES / "w503_lifecycle"), "--format", "json",
    ])
    assert code == 1
    report = json.loads(output)
    assert report["summary"]["exit_code"] == 1
    codes = {v["code"] for v in report["violations"]}
    assert codes == {"W503"}
    assert all(v["path"].endswith("bad.py")
               for v in report["violations"])


def test_python_dash_m_entry_point():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.tools.wire", "--list-rules"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "W501" in proc.stdout


def test_repro_cli_wire_subcommand():
    out = io.StringIO()
    code = repro.cli.main(["wire", "--list-rules"], out=out)
    assert code == 0
    assert "W506" in out.getvalue()


def test_wire_suppression_with_reason_is_honored(tmp_path):
    source = FIXTURES / "w503_lifecycle" / "bad.py"
    patched = tmp_path / "patched.py"
    patched.write_text(
        source.read_text(encoding="utf-8").replace(
            "    handle = open(path)",
            "    handle = open(path)  # repro: disable=W503 -- "
            "fixture documents the leak",
        ),
        encoding="utf-8",
    )
    code, output = run_main([str(tmp_path), "--show-suppressed"])
    assert code == 1  # the socket and thread leaks still fire
    assert "suppressed: fixture documents the leak" in output
    assert output.count("W503") == 3


def test_wire_suppression_without_reason_is_r000(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text(
        '"""Mod."""\n\n\n'
        "def idle():\n"
        "    pass  # repro: disable=W503\n",
        encoding="utf-8",
    )
    code, output = run_main([str(tmp_path)])
    assert code == 1
    assert "R000" in output and "justification" in output


def test_update_spec_round_trips(tmp_path):
    pkg = FIXTURES / "w501_contract" / "pkg"
    spec = tmp_path / "spec.py"

    code, output = run_main(["--update-spec", "--spec", str(spec), str(pkg)])
    assert code == 0
    assert "wrote derived wire contract (2 route(s), 4 client method(s), " \
        "0 error kind(s))" in output
    first = spec.read_text(encoding="utf-8")
    assert "'GET /health'" in first and "'predict'" in first

    # A check run against the freshly written spec reports no drift —
    # only the fixture's deliberate client/server cross-findings remain.
    code, output = run_main([
        str(pkg), "--spec", str(spec), "--format", "json",
    ])
    report = json.loads(output)
    messages = [v["message"] for v in report["violations"]]
    assert not any("spec" in message for message in messages)

    # Regenerating is a fixed point: byte-identical output.
    code, _ = run_main(["--update-spec", "--spec", str(spec), str(pkg)])
    assert code == 0
    assert spec.read_text(encoding="utf-8") == first


def test_fixture_spec_match_is_update_spec_output(tmp_path):
    # The checked-in fixture specs are real --update-spec output, so
    # the drift fixtures stay one recorded fact away from reality.
    pkg = FIXTURES / "w506_metrics" / "pkg"
    spec = tmp_path / "spec.py"
    code, _ = run_main(["--update-spec", "--spec", str(spec), str(pkg)])
    assert code == 0
    assert spec.read_text(encoding="utf-8") == \
        (FIXTURES / "w506_metrics" / "spec_match.py").read_text(
            encoding="utf-8")


def test_checked_in_spec_is_the_update_spec_fixed_point(tmp_path):
    # Rederiving the real tree's wire contract must reproduce the
    # committed spec byte for byte, so `--update-spec` never churns.
    from repro.tools.wire.spec import DEFAULT_SPEC_PATH

    spec = tmp_path / "spec.py"
    code, _ = run_main([
        "--update-spec", "--spec", str(spec), str(REPO_SRC / "repro"),
    ])
    assert code == 0
    assert spec.read_text(encoding="utf-8") == \
        DEFAULT_SPEC_PATH.read_text(encoding="utf-8")
