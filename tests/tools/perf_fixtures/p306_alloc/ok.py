"""P306 clean fixture: the buffer preallocated outside the hot loop."""

import numpy as np

_COMPILED_SUBSTRATE = True


def route(X, depth: int = 8):
    scratch = np.zeros(4)
    level = 0
    while level < depth:
        scratch[:] = 0.0
        level += 1 if scratch.sum() >= 0 else 2
    return X
