"""P306 firing fixture: allocation inside a compiled module's hot loop."""

import numpy as np

_COMPILED_SUBSTRATE = True


def route(X, depth: int = 8):
    level = 0
    while level < depth:
        scratch = np.zeros(4)  # fresh buffer on every routing level
        level += 1 if scratch.sum() >= 0 else 2
    return X
