"""Spec that matches the fixture estimator's derived complexity."""

__all__ = ["COMPLEXITY"]

COMPLEXITY = {
    "model.SlowKNN": {
        "fit": {"samples": 1, "features": 1},
        "predict": {"samples": 1},
    },
}
