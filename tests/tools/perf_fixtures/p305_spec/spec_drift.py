"""Spec that disagrees with the fixture estimator and carries a stale entry."""

__all__ = ["COMPLEXITY"]

COMPLEXITY = {
    "model.SlowKNN": {
        "fit": {},
        "predict": {"samples": 1},
    },
    "model.Gone": {
        "fit": {"samples": 2},
    },
}
