"""P305 fixture estimator: known loop-nest depths for fit/predict."""

import numpy as np


class BaseEstimator:
    """Stand-in base so the fixture tree is self-contained."""


class SlowKNN(BaseEstimator):
    """Per-feature/per-sample Python loops with a fixed derived cost."""

    def fit(self, X, y):
        n_samples, n_features = X.shape
        self._means = np.zeros(n_features)
        for j in range(n_features):
            total = 0.0
            for i in range(n_samples):
                total += float(X[i, j])
            self._means[j] = total / n_samples
        self._classes = np.unique(y)
        return self

    def predict(self, X):
        out = np.zeros(X.shape[0])
        for i in range(X.shape[0]):
            out[i] = float((X[i] - self._means).sum() > 0.0)
        return out
