"""P303 clean fixture: the invariant call hoisted above the loop."""

import numpy as np


def anneal(temps, n_iter: int = 50):
    edges = np.sort(temps)
    best = 0.0
    for step in range(n_iter):
        best = max(best, float(edges[step % edges.size]) / (step + 1))
    return best


def resample(temps, rng, n_iter: int = 50):
    draws = []
    for _ in range(n_iter):
        draws.append(np.sort(rng.uniform(0.0, 1.0, 4)))  # fresh draw each pass
    return draws
