"""P303 firing fixture: a loop-invariant pure call recomputed per pass."""

import numpy as np


def anneal(temps, n_iter: int = 50):
    best = 0.0
    for step in range(n_iter):
        edges = np.sort(temps)  # temps never changes inside the loop
        best = max(best, float(edges[step % edges.size]) / (step + 1))
    return best
