"""P302 firing fixture: arrays and lists grown by copy inside loops."""

import numpy as np


def collect_array(values):
    out = np.zeros(0)
    for value in values:
        out = np.append(out, value)  # copies the prefix every iteration
    return out


def collect_list(values):
    acc = []
    for value in values:
        acc = acc + [value]  # list self-concatenation: same quadratic shape
    return acc
