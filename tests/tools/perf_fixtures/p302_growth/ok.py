"""P302 clean fixture: collect into a list, concatenate once."""

import numpy as np


def collect_array(values):
    parts = []
    for value in values:
        parts.append(value)
    return np.asarray(parts)


def running_total(values):
    total = np.zeros(3)
    for value in values:
        total += value  # in-place accumulation is not growth
    return total
