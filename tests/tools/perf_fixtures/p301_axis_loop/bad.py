"""P301 firing fixture: Python-level loops over ndarray axes."""

import numpy as np


def per_feature_scores(X, y):
    scores = np.zeros(X.shape[1])
    for j in range(X.shape[1]):  # one Python iteration per feature
        scores[j] = float(np.dot(X[:, j], y))
    return scores


def per_sample_collect(X):
    rows = []
    for row in X:  # one Python iteration per sample
        rows.append(row.sum())
    return rows
