"""P301 clean fixture: the same work vectorized (or sanctioned chunking)."""

import numpy as np


def per_feature_scores(X, y):
    return X.T @ y


def per_sample_collect(X):
    return X.sum(axis=1)


def chunked_norms(X, chunk: int = 256):
    out = np.zeros(X.shape[0])
    for start in range(0, X.shape[0], chunk):  # stepped range: chunking
        block = X[start:start + chunk]
        out[start:start + chunk] = np.sqrt((block ** 2).sum(axis=1))
    return out
