"""P304 firing fixture: per-candidate clone+fit with no cache in sight."""


def sweep(estimator, X, y, grid, clone):
    scores = []
    for params in grid:
        model = clone(estimator)
        model.fit(X, y)  # identical inputs re-fitted every candidate
        scores.append((model, params))
    return scores
