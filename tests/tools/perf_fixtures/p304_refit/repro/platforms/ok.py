"""P304 clean fixture: the repeated pure fit routed through a cache."""


def sweep(estimator, X, y, grid, clone, memory):
    scores = []
    for params in grid:
        fitted, transformed = memory.fit_transform(clone(estimator), X, y)
        scores.append((fitted, transformed, params))
    return scores
