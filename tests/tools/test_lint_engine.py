"""Engine mechanics: suppressions, R000 diagnostics, result shaping."""

import textwrap

from repro.tools.lint import ENGINE_CODE, LintResult, Violation, lint_source
from repro.tools.lint.engine import parse_suppressions
from repro.tools.lint.rules import DeterminismRule


def _lint(source):
    return lint_source(textwrap.dedent(source), rules=[DeterminismRule()])


def test_parse_suppressions_same_line():
    [sup] = parse_suppressions(
        "x = risky()  # repro: disable=R001 -- documented opt-in\n"
    )
    assert sup.codes == ("R001",)
    assert sup.reason == "documented opt-in"
    assert not sup.standalone
    assert sup.applies_to_line == 1


def test_parse_suppressions_standalone_covers_next_line():
    source = "# repro: disable=R001,R004 -- spans two rules\nx = 1\n"
    [sup] = parse_suppressions(source)
    assert sup.standalone
    assert sup.codes == ("R001", "R004")
    assert sup.applies_to_line == 2


def test_suppression_text_inside_string_literal_is_ignored():
    source = 'msg = "# repro: disable=R001 -- not a comment"\n'
    assert parse_suppressions(source) == []


def test_justified_suppression_silences_violation():
    result = _lint("""
        import numpy as np
        rng = np.random.default_rng()  # repro: disable=R001 -- fixture
    """)
    assert result.unsuppressed == []
    assert len(result.suppressed) == 1
    assert result.exit_code == 0


def test_suppression_without_reason_is_rejected():
    result = _lint("""
        import numpy as np
        rng = np.random.default_rng()  # repro: disable=R001
    """)
    codes = {v.code for v in result.unsuppressed}
    # The original finding survives AND the reasonless comment is flagged.
    assert codes == {"R001", ENGINE_CODE}


def test_unknown_code_in_suppression_is_flagged():
    result = _lint("x = 1  # repro: disable=R999 -- no such rule\n")
    [violation] = result.unsuppressed
    assert violation.code == ENGINE_CODE
    assert "R999" in violation.message


def test_engine_code_cannot_be_suppressed():
    result = _lint(f"x = 1  # repro: disable={ENGINE_CODE} -- nice try\n")
    assert any(v.code == ENGINE_CODE for v in result.unsuppressed)


def test_syntax_error_becomes_engine_violation():
    result = lint_source("def broken(:\n", rules=[DeterminismRule()])
    [violation] = result.unsuppressed
    assert violation.code == ENGINE_CODE
    assert result.exit_code == 1


def test_violations_sorted_by_location():
    result = _lint("""
        import numpy as np
        b = np.random.normal()
        a = np.random.rand()
    """)
    lines = [v.line for v in result.unsuppressed]
    assert lines == sorted(lines)


def test_exit_code_reflects_unsuppressed_only():
    clean = LintResult(violations=[], n_files=1)
    assert clean.exit_code == 0
    suppressed_only = LintResult(
        violations=[Violation(code="R001", message="m", path="p", line=1,
                              suppressed=True, reason="why")],
        n_files=1,
    )
    assert suppressed_only.exit_code == 0
    dirty = LintResult(
        violations=[Violation(code="R001", message="m", path="p", line=1)],
        n_files=1,
    )
    assert dirty.exit_code == 1
