"""C202 clean fixture: the same writes, but under a lock (or to a queue)."""

import queue
import threading


def run_locked(results):
    lock = threading.Lock()

    def worker():
        with lock:
            results["x"] = 1

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()


def run_queue(items):
    out = queue.Queue()

    def worker():
        for item in items:
            out.put(item)  # queues are thread-safe by design

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
    return out
