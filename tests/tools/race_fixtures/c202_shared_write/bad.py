"""C202 firing fixture: worker threads write shared state off-lock."""

import threading
from concurrent.futures import ThreadPoolExecutor

counts = {}


def tally(key):
    counts[key] = 1  # module-global written by pool workers


def run_pool(keys):
    with ThreadPoolExecutor(max_workers=2) as pool:
        for key in keys:
            pool.submit(tally, key)


def run_closure(results):
    def worker():
        results["x"] = 1  # closure capture written off-lock

    thread = threading.Thread(target=worker)
    thread.start()
    thread.join()
