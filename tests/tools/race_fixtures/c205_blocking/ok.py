"""C205 clean fixture: snapshot under the lock, block outside it."""

import threading
import time

lock = threading.Lock()
cv = threading.Condition(lock)


def prepare_then_write(path):
    with lock:
        payload = "z"
    path.write_text(payload)
    time.sleep(0.1)


def wait_on_held_condition():
    with cv:
        cv.wait()  # releases the lock while waiting: sanctioned protocol
