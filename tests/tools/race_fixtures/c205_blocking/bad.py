"""C205 firing fixture: blocking work while holding a lock."""

import threading
import time

lock = threading.Lock()


def slow_write(path, payload):
    path.write_text(payload)


def direct(path):
    with lock:
        time.sleep(0.1)  # every other thread stalls on the lock
        path.write_text("x")


def through_call(path):
    with lock:
        slow_write(path, "y")  # callee does the file I/O


def waits_elsewhere(other):
    with lock:
        other.result()  # Future.result under the lock
