"""C206 clean fixture: locked class draws, per-task seeded generators."""

import threading

import numpy as np


class SeededSampler:
    def __init__(self, seed):
        self._lock = threading.Lock()
        self._rng = np.random.default_rng(seed)

    def draw(self):
        with self._lock:
            return self._rng.uniform()


def worker_body(seed, results):
    rng = np.random.default_rng(seed)  # private, per-task generator
    results.append(rng.uniform())


def run(results, seeds):
    threads = [
        threading.Thread(target=worker_body, args=(seed, results))
        for seed in seeds
    ]
    for thread in threads:
        thread.start()
