"""C206 firing fixture: one Generator reachable from many workers."""

import threading

import numpy as np


class Sampler:
    def __init__(self, seed):
        self._lock = threading.Lock()
        self._rng = np.random.default_rng(seed)

    def draw(self):
        return self._rng.uniform()  # off-lock draw in a lock-owning class


def consume(rng, results):
    results.append(rng.uniform())


def run_closure(results):
    rng = np.random.default_rng(0)

    def worker():
        results.append(rng.uniform())  # one generator, many workers

    threads = [threading.Thread(target=worker) for _ in range(2)]
    for thread in threads:
        thread.start()


def run_args(results):
    rng = np.random.default_rng(1)
    thread = threading.Thread(target=consume, args=(rng, results))
    thread.start()
