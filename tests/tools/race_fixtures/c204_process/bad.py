"""C204 firing fixture: unpicklable things crossing the process boundary."""

import threading
from concurrent.futures import ProcessPoolExecutor


def compute(x):
    return x


def run(jobs):
    lock = threading.Lock()

    def helper(job):
        return job

    with ProcessPoolExecutor() as pool:
        pool.submit(lambda: 1)  # lambdas cannot be pickled
        pool.submit(helper, jobs[0])  # closures cannot be pickled
        pool.submit(compute, lock)  # a lock cannot cross the boundary


def run_init(items):
    def setup():
        pass

    with ProcessPoolExecutor(initializer=setup) as pool:
        return list(pool.map(compute, items))


class Engine:
    def __init__(self):
        self._lock = threading.Lock()

    def compute(self, x):
        return x

    def run(self, xs):
        with ProcessPoolExecutor() as pool:
            return [pool.submit(self.compute, x) for x in xs]
