"""C204 clean fixture: module-level function, plain-data arguments."""

from concurrent.futures import ProcessPoolExecutor


def compute(x):
    return x * x


def _setup(verbose):
    return verbose


def run(xs):
    with ProcessPoolExecutor(initializer=_setup, initargs=(False,)) as pool:
        return list(pool.map(compute, xs))


def run_submit(xs):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(compute, x) for x in xs]
    return [f.result() for f in futures]
