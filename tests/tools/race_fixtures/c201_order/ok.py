"""C201 clean fixture: one global order, reentrant re-entry."""

import threading

first = threading.Lock()
second = threading.Lock()
reentrant = threading.RLock()


def ordered_one():
    with first:
        with second:
            pass


def ordered_two():
    with first:
        with second:
            pass


def reenter():
    with reentrant:
        with reentrant:  # RLock: legal
            pass
