"""C201 firing fixture: the inversion hides behind a call boundary."""

import threading

lock_x = threading.Lock()
lock_y = threading.Lock()


def take_y():
    with lock_y:
        pass


def outer():
    with lock_x:
        take_y()  # acquires y while holding x


def reverse():
    with lock_y:
        with lock_x:  # acquires x while holding y: cycle with outer()
            pass
