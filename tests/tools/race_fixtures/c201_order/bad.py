"""C201 firing fixture: conflicting lock orders and a self-deadlock."""

import threading

lock_a = threading.Lock()
lock_b = threading.Lock()


def forward():
    with lock_a:
        with lock_b:
            pass


def backward():
    with lock_b:
        with lock_a:
            pass


def relock():
    with lock_a:
        with lock_a:  # non-reentrant re-acquisition: self-deadlock
            pass
