"""C203 clean fixture: the same patterns made atomic (or not shared)."""

import threading


class SafeRegistry:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}

    def ensure_get(self, key):
        with self._lock:
            item = self._items.get(key)
            if item is None:
                item = self._items[key] = object()
        return item

    def ensure_atomic(self, key, value):
        return self._items.setdefault(key, value)


class PlainBox:
    """Owns no lock: not thread-shared, so check-then-act is fine."""

    def __init__(self):
        self._items = {}

    def ensure(self, key, value):
        if key not in self._items:
            self._items[key] = value
