"""C203 firing fixture: non-atomic check-then-act in a lock-owning class."""

import threading


class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}

    def ensure_get(self, key):
        item = self._items.get(key)
        if item is None:  # another thread can insert between check and store
            item = self._items[key] = object()
        return item

    def ensure_membership(self, key, value):
        if key not in self._items:
            self._items[key] = value
