"""Cross-tool suppression round-trip: one comment syntax, six analyzers.

``repro lint``, ``repro flow``, ``repro race``, ``repro perf``,
``repro shape``, and ``repro wire`` share the ``# repro: disable=CODE
-- reason`` syntax in one source tree, so each tool must treat the
other tools' codes as *known* (no R000 unknown-code finding) while
still reporting a genuinely unknown code.
"""

from repro.tools.flow import flow_paths
from repro.tools.lint import lint_paths
from repro.tools.perf import perf_paths
from repro.tools.race import race_paths
from repro.tools.shape import shape_paths
from repro.tools.wire import wire_paths


def write_tree(tmp_path, body):
    (tmp_path / "mod.py").write_text(body, encoding="utf-8")
    return tmp_path


def r000_messages(result):
    return [v.message for v in result.unsuppressed if v.code == "R000"]


SOURCE_WITH_COMPANION_SUPPRESSIONS = '''\
"""Module carrying suppressions owned by all six analyzers."""

__all__ = ["work"]


def work(items):
    total = 0  # repro: disable=R001 -- lint-owned code, documented
    for item in items:  # repro: disable=F104 -- flow-owned code, documented
        total += item  # repro: disable=C202 -- race-owned code, documented
    # repro: disable=P301 -- perf-owned code, documented
    # repro: disable=S403 -- shape-owned code, documented
    # repro: disable=W503 -- wire-owned code, documented
    return total
'''


def test_lint_accepts_flow_race_perf_and_shape_codes(tmp_path):
    tree = write_tree(tmp_path, SOURCE_WITH_COMPANION_SUPPRESSIONS)
    result = lint_paths([tree], root=tree)
    assert r000_messages(result) == []


def test_flow_accepts_lint_race_perf_and_shape_codes(tmp_path):
    tree = write_tree(tmp_path, SOURCE_WITH_COMPANION_SUPPRESSIONS)
    result = flow_paths([tree], root=tree, context_paths=())
    assert r000_messages(result) == []


def test_race_accepts_lint_flow_perf_and_shape_codes(tmp_path):
    tree = write_tree(tmp_path, SOURCE_WITH_COMPANION_SUPPRESSIONS)
    result = race_paths([tree], root=tree, context_paths=())
    assert r000_messages(result) == []


def test_perf_accepts_lint_flow_race_and_shape_codes(tmp_path):
    tree = write_tree(tmp_path, SOURCE_WITH_COMPANION_SUPPRESSIONS)
    result = perf_paths([tree], root=tree, context_paths=())
    assert r000_messages(result) == []


def test_shape_accepts_lint_flow_race_and_perf_codes(tmp_path):
    tree = write_tree(tmp_path, SOURCE_WITH_COMPANION_SUPPRESSIONS)
    result = shape_paths([tree], root=tree, context_paths=())
    assert r000_messages(result) == []


def test_wire_accepts_the_other_five_tools_codes(tmp_path):
    tree = write_tree(tmp_path, SOURCE_WITH_COMPANION_SUPPRESSIONS)
    result = wire_paths([tree], root=tree, context_paths=())
    assert r000_messages(result) == []


def test_all_six_tools_reject_a_truly_unknown_code(tmp_path):
    tree = write_tree(tmp_path, (
        '"""Module with a bogus suppression code."""\n\n'
        '__all__ = []\n\n'
        'VALUE = 1  # repro: disable=Z999 -- no tool owns this code\n'
    ))
    for runner, kwargs in (
        (lint_paths, {}),
        (flow_paths, {"context_paths": ()}),
        (race_paths, {"context_paths": ()}),
        (perf_paths, {"context_paths": ()}),
        (shape_paths, {"context_paths": ()}),
        (wire_paths, {"context_paths": ()}),
    ):
        result = runner([tree], root=tree, **kwargs)
        messages = r000_messages(result)
        assert any("Z999" in message for message in messages), runner
