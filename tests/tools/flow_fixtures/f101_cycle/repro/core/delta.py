"""Fixture: top-level import of gamma; the reverse edge is deferred."""

from repro.core import gamma


def answer():
    return 42


def call_back():
    return gamma.lazy_call
