"""Fixture: the other half of the import-time cycle (F101)."""

from repro.core import alpha


def pong():
    return alpha.ping()
