"""Fixture: a would-be cycle broken by a deferred import (NOT an F101).

``delta`` imports this module at the top level; this module only imports
``delta`` inside a function, so no cycle exists at import time.
"""


def lazy_call():
    from repro.core import delta

    return delta.answer()
