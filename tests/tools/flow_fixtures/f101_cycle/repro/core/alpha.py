"""Fixture: half of a deliberate import-time cycle (F101)."""

from repro.core import beta


def ping():
    return beta.pong()
