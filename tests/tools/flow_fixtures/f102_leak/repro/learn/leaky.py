"""Fixture: deliberate test-data leakage, direct and interprocedural (F102)."""


def clean_evaluate(X, y, estimator, train_test_split):
    X_train, X_test, y_train, y_test = train_test_split(X, y, random_state=0)
    estimator.fit(X_train, y_train)
    return estimator.predict(X_test)


def leaky_evaluate(X, y, estimator, train_test_split):
    X_train, X_test, y_train, y_test = train_test_split(X, y, random_state=0)
    estimator.fit(X_test, y_test)  # deliberate leak: trains on the test fold
    return estimator


def _probe_matrix(X, y, train_test_split):
    X_train, X_test, y_train, y_test = train_test_split(X, y, random_state=0)
    return X_test


def _fit_quietly(model, data):
    model.fit(data)


def leak_through_helpers(X, y, scaler, model, train_test_split):
    probe = _probe_matrix(X, y, train_test_split)
    scaler.fit_transform(probe)  # leak: helper returned held-out data
    X_train, X_test, y_train, y_test = train_test_split(X, y, random_state=0)
    _fit_quietly(model, X_test)  # leak: helper fits whatever it is handed
    return scaler
