"""Fixture: a justified F102 suppression (calibration on held-out data)."""


def calibrate(X, y, calibrator, train_test_split):
    X_train, X_test, y_train, y_test = train_test_split(X, y, random_state=0)
    calibrator.fit(X_test, y_test)  # repro: disable=F102 -- post-hoc calibration split, never evaluated on
    return calibrator
