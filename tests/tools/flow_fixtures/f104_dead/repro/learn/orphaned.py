"""Fixture: module-level symbols nothing can reach (F104)."""

__all__ = ["used_entry"]

LIVE_CONSTANT = 10

ORPHAN_CONSTANT = 7  # deliberate dead code


def used_entry():
    return _live_helper() + LIVE_CONSTANT


def _live_helper():
    return 1


def orphan_function():  # deliberate dead code
    return 2


class OrphanClass:  # deliberate dead code
    pass
