"""Fixture: a measurement-layer module (target of an upward import)."""


def run_study():
    return "measured"
