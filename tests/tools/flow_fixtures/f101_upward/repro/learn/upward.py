"""Fixture: a learn-layer module reaching UP into the measurement layer.

Deliberate F101 violation: ``repro.learn`` (layer "learn") must never
import ``repro.core`` (layer "measurement").
"""

from repro.core.runner0 import run_study


def train_and_measure():
    return run_study()
