"""Fixture: a seeded caller dropping its seed on the floor (F103)."""


class Shuffler:
    def __init__(self, n_rounds=3, random_state=None):
        self.n_rounds = n_rounds
        self.random_state = random_state


def sample_rows(data, random_state=None):
    return data


def build_pipeline(random_state=0):
    shuffler = Shuffler(n_rounds=5)  # deliberate: seed not threaded
    rows = sample_rows([1, 2, 3])  # deliberate: seed not threaded
    return shuffler, rows


def build_pipeline_correctly(random_state=0):
    shuffler = Shuffler(n_rounds=5, random_state=random_state)
    rows = sample_rows([1, 2, 3], random_state=random_state)
    return shuffler, rows


__all__ = [
    "Shuffler",
    "build_pipeline",
    "build_pipeline_correctly",
    "sample_rows",
]
