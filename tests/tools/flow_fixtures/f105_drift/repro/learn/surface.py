"""Fixture: a public module whose surface drifted from its spec (F105)."""

__all__ = ["predict_scores"]


def predict_scores(X, threshold=0.5):
    return [threshold for _ in X]
