"""The shared exit-code taxonomy, enforced across all six analyzers.

Every CLI — ``repro lint``/``flow``/``race``/``perf``/``shape``/
``wire`` plus the combined ``repro check`` driver — must agree on what
its exit code means: 0 clean, 1 findings, 2 usage error, 3 the
analyzer itself crashed.  CI and the pre-commit hook branch on these,
so they are part of the tools' contract, not an implementation detail.
"""

import io
from pathlib import Path

import pytest

import repro.cli
import repro.tools.check.cli as check_cli
import repro.tools.flow.cli as flow_cli
import repro.tools.lint.cli as lint_cli
import repro.tools.perf.cli as perf_cli
import repro.tools.race.cli as race_cli
import repro.tools.shape.cli as shape_cli
import repro.tools.wire.cli as wire_cli
from repro.tools.exitcodes import (
    EXIT_CLEAN,
    EXIT_CRASH,
    EXIT_FINDINGS,
    EXIT_USAGE,
    run_guarded,
)

FIXTURES = Path(__file__).resolve().parent / "perf_fixtures"

CLIS = [
    pytest.param(lint_cli, "run_lint_command", id="lint"),
    pytest.param(flow_cli, "run_flow_command", id="flow"),
    pytest.param(race_cli, "run_race_command", id="race"),
    pytest.param(perf_cli, "run_perf_command", id="perf"),
    pytest.param(shape_cli, "run_shape_command", id="shape"),
    pytest.param(wire_cli, "run_wire_command", id="wire"),
]

#: ``repro check`` shares the taxonomy but has no ``--list-rules``.
ALL_CLIS = CLIS + [
    pytest.param(check_cli, "run_check_command", id="check"),
]


def test_the_taxonomy_constants():
    assert (EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, EXIT_CRASH) == (0, 1, 2, 3)


@pytest.mark.parametrize("cli,command_name", ALL_CLIS)
def test_nonexistent_path_is_usage_error_everywhere(cli, command_name):
    code = cli.main(["definitely/not/a/path"], out=io.StringIO())
    assert code == EXIT_USAGE


@pytest.mark.parametrize("cli,command_name", CLIS)
def test_list_rules_is_clean_everywhere(cli, command_name):
    code = cli.main(["--list-rules"], out=io.StringIO())
    assert code == EXIT_CLEAN


@pytest.mark.parametrize("cli,command_name", ALL_CLIS)
def test_analyzer_crash_is_exit_3_everywhere(cli, command_name,
                                             monkeypatch, capsys):
    def boom(args, out=None):
        raise RuntimeError("synthetic analyzer crash")

    monkeypatch.setattr(cli, command_name, boom)
    code = cli.main([str(FIXTURES / "p301_axis_loop")], out=io.StringIO())
    assert code == EXIT_CRASH
    err = capsys.readouterr().err
    assert "internal error" in err
    assert "synthetic analyzer crash" in err  # traceback reaches the user


@pytest.mark.parametrize("subcommand", ["lint", "flow", "race", "perf",
                                        "shape", "wire", "check"])
def test_repro_cli_propagates_usage_errors(subcommand):
    code = repro.cli.main(
        [subcommand, "definitely/not/a/path"], out=io.StringIO())
    assert code == EXIT_USAGE


def test_findings_exit_one_through_the_perf_cli():
    code = perf_cli.main([str(FIXTURES / "p302_growth")], out=io.StringIO())
    assert code == EXIT_FINDINGS


def test_findings_exit_one_through_the_shape_cli():
    fixtures = FIXTURES.parent / "shape_fixtures"
    code = shape_cli.main(
        [str(fixtures / "s401_shape")], out=io.StringIO())
    assert code == EXIT_FINDINGS


def test_findings_exit_one_through_the_wire_cli():
    fixtures = FIXTURES.parent / "wire_fixtures"
    code = wire_cli.main(
        [str(fixtures / "w503_lifecycle")], out=io.StringIO())
    assert code == EXIT_FINDINGS


def test_findings_exit_one_through_the_check_cli():
    fixtures = FIXTURES.parent / "wire_fixtures"
    code = check_cli.main(
        [str(fixtures / "w503_lifecycle")], out=io.StringIO())
    assert code == EXIT_FINDINGS


def test_run_guarded_reraises_control_flow_exits():
    def bail(args, out=None):
        raise SystemExit(7)

    with pytest.raises(SystemExit):
        run_guarded(bail, None)


# -- the serving subcommands share the same taxonomy ---------------------


def test_loadgen_clean_run_exits_zero(tmp_path):
    report_path = tmp_path / "report.json"
    out = io.StringIO()
    code = repro.cli.main([
        "loadgen", "--loopback", "--platform", "bigml",
        "--clients", "2", "--predicts", "1", "--seed", "3",
        "--samples", "24", "--compare-serial",
        "--output", str(report_path),
    ], out=out)
    assert code == EXIT_CLEAN
    import json

    report = json.loads(report_path.read_text())
    assert report["requests_failed"] == 0
    assert report["serial_equivalent"] is True
    assert report["overall_latency"]["p99"] >= report["overall_latency"]["p50"]


def test_loadgen_usage_errors_exit_two(capsys):
    # argparse rejects a missing target (--url/--loopback) with SystemExit 2.
    with pytest.raises(SystemExit) as excinfo:
        repro.cli.main(["loadgen", "--clients", "2"], out=io.StringIO())
    assert excinfo.value.code == EXIT_USAGE
    # Config validation failures map to the same usage exit code.
    code = repro.cli.main(
        ["loadgen", "--loopback", "--clients", "0"], out=io.StringIO())
    assert code == EXIT_USAGE
    assert "usage error" in capsys.readouterr().err


def test_loadgen_failed_requests_exit_one(capsys):
    # An unreachable server: every request fails, reported as findings.
    code = repro.cli.main([
        "loadgen", "--url", "http://127.0.0.1:9",  # port 9: discard
        "--platform", "bigml", "--clients", "1", "--predicts", "0",
    ], out=io.StringIO())
    assert code == EXIT_FINDINGS
    assert "requests failed" in capsys.readouterr().err


def test_serve_usage_errors_exit_two(capsys):
    with pytest.raises(SystemExit) as excinfo:
        repro.cli.main(["serve", "--platform", "quantum"],
                       out=io.StringIO())
    assert excinfo.value.code == EXIT_USAGE
    code = repro.cli.main(["serve", "--max-body-bytes", "0"],
                          out=io.StringIO())
    assert code == EXIT_USAGE
    assert "usage error" in capsys.readouterr().err


def test_serve_request_budget_run_exits_zero():
    import threading

    out = io.StringIO()
    codes = []

    def serve():
        codes.append(repro.cli.main([
            "serve", "--platform", "bigml", "--port", "0",
            "--max-requests", "2",
        ], out=out))

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    url = None
    for _ in range(200):
        text = out.getvalue()
        if " at http://" in text:
            url = text.split(" at ")[1].split()[0]
            break
        thread.join(timeout=0.05)
    assert url is not None, f"server never announced itself: {out.getvalue()!r}"

    from repro.serving import HTTPPlatformClient

    client = HTTPPlatformClient(url, "bigml")
    assert client.health()["status"] == "ok"
    assert client.health()["status"] == "ok"
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert codes == [EXIT_CLEAN]
