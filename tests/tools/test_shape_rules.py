"""Per-rule tests for the S-rules, driven by the fixture mini-packages.

Each directory under ``shape_fixtures/`` holds a ``bad.py`` with the
deliberate array-contract hazards one rule must catch and an ``ok.py``
with the same computation done on owned, explicitly-typed, contiguous
arrays that must stay silent.  ``context_paths=()`` keeps the real
tests/benchmarks out of the fixture analyses; the S405 fixtures keep
their spec files one directory above the analyzed package so the specs
are data, not input.  The S402/S406 fixtures nest their files under
``repro/learn`` and ``repro/platforms`` because those rules are scoped
by dotted module prefix.
"""

from pathlib import Path

from repro.tools.shape import shape_paths
from repro.tools.shape.rules import (
    AliasMutationRule,
    BoundaryValidationRule,
    ContractSpecRule,
    DtypeStabilityRule,
    ShapeMismatchRule,
    SubstrateAccessRule,
)

FIXTURES = Path(__file__).resolve().parent / "shape_fixtures"


def run_fixture(name, rules, spec_path=None):
    return shape_paths(
        [FIXTURES / name], rules=rules,
        root=FIXTURES / name, context_paths=(), spec_path=spec_path,
    )


def findings(result, code, path_suffix=None):
    return [
        v for v in result.unsuppressed
        if v.code == code
        and (path_suffix is None or v.path.endswith(path_suffix))
    ]


# ---------------------------------------------------------------------------
# S401 shape-mismatch
# ---------------------------------------------------------------------------


def test_s401_flags_uncontractable_dot_and_mixed_stack():
    result = run_fixture("s401_shape", [ShapeMismatchRule()])
    bad = findings(result, "S401", "bad.py")
    messages = " | ".join(v.message for v in bad)
    assert "'features' x 'samples' do not contract" in messages
    assert "vstack joins incompatible dimensions" in messages
    assert len(bad) == 2


def test_s401_clean_on_contracting_matmul_and_broadcasts():
    result = run_fixture("s401_shape", [ShapeMismatchRule()])
    assert findings(result, "S401", "ok.py") == []


# ---------------------------------------------------------------------------
# S402 dtype-instability
# ---------------------------------------------------------------------------


def test_s402_flags_builtin_dtypes_and_int32_reduction():
    result = run_fixture("s402_dtype", [DtypeStabilityRule()])
    bad = findings(result, "S402", "bad.py")
    messages = " | ".join(v.message for v in bad)
    assert "builtin dtype `float`" in messages
    assert "builtin dtype `int`" in messages
    assert "int32 array feeds np.cumsum(small)" in messages
    assert len(bad) == 3


def test_s402_clean_when_widths_are_explicit():
    result = run_fixture("s402_dtype", [DtypeStabilityRule()])
    assert findings(result, "S402", "ok.py") == []


def test_s402_builtin_dtype_arms_are_scoped_to_the_learn_substrate():
    # The same astype(float) outside a repro.learn module is style, not
    # a determinism hazard; only the int32-reduce arm is global.
    result = run_fixture("s403_alias", [DtypeStabilityRule()])
    assert findings(result, "S402") == []


# ---------------------------------------------------------------------------
# S403 alias-mutation
# ---------------------------------------------------------------------------


def test_s403_flags_caller_view_and_cache_mutations():
    result = run_fixture("s403_alias", [AliasMutationRule()])
    bad = findings(result, "S403", "bad.py")
    messages = " | ".join(v.message for v in bad)
    assert "mutates caller-owned array X in place" in messages
    assert "(a view of X)" in messages  # first -= first.mean()
    assert "mutates cache-stored array features" in messages
    assert "y.sort() mutates caller-owned array y" in messages
    assert len(bad) == 4


def test_s403_clean_when_copies_are_taken_first():
    result = run_fixture("s403_alias", [AliasMutationRule()])
    assert findings(result, "S403", "ok.py") == []


# ---------------------------------------------------------------------------
# S404 substrate-access
# ---------------------------------------------------------------------------


def test_s404_flags_invariant_gather_and_strided_column_read():
    result = run_fixture("s404_substrate", [SubstrateAccessRule()])
    bad = findings(result, "S404", "bad.py")
    messages = " | ".join(v.message for v in bad)
    assert "loop-invariant fancy gather X[rows]" in messages
    assert "strided column read X[:, j]" in messages
    assert len(bad) == 2


def test_s404_clean_on_hoisted_and_loop_varying_access():
    result = run_fixture("s404_substrate", [SubstrateAccessRule()])
    assert findings(result, "S404", "ok.py") == []


def test_s404_ignores_untagged_modules_with_the_same_loops():
    # Identical access patterns outside a _COMPILED_SUBSTRATE module
    # are P301/P303 territory, not S404.
    result = run_fixture("s403_alias", [SubstrateAccessRule()])
    assert findings(result, "S404") == []


# ---------------------------------------------------------------------------
# S405 array-contract-spec
# ---------------------------------------------------------------------------


def test_s405_silent_when_spec_matches_derivation():
    result = run_fixture(
        "s405_contract/pkg", [ContractSpecRule()],
        spec_path=FIXTURES / "s405_contract" / "spec_match.py",
    )
    assert findings(result, "S405") == []


def test_s405_flags_drifted_and_stale_entries():
    result = run_fixture(
        "s405_contract/pkg", [ContractSpecRule()],
        spec_path=FIXTURES / "s405_contract" / "spec_drift.py",
    )
    bad = findings(result, "S405")
    messages = " | ".join(v.message for v in bad)
    assert "disagrees with the spec on predict" in messages  # drifted
    assert "matches no analyzed estimator" in messages  # model.Gone stale
    assert len(bad) == 2
    drifted = [v for v in bad if "disagrees" in v.message]
    assert drifted[0].path.endswith("model.py")
    assert drifted[0].line == 10  # anchored at the class definition


def test_s405_flags_new_estimator_missing_from_real_spec():
    # With the repo's checked-in spec, the fixture estimator is unknown.
    result = run_fixture("s405_contract/pkg", [ContractSpecRule()])
    bad = findings(result, "S405")
    assert len(bad) == 1
    assert "model.TinyCentroid is not in the array-contract spec" \
        in bad[0].message


def test_s405_reports_unreadable_spec_once():
    result = run_fixture(
        "s405_contract/pkg", [ContractSpecRule()],
        spec_path=FIXTURES / "s405_contract" / "no_such_spec.py",
    )
    bad = findings(result, "S405")
    assert len(bad) == 1
    assert "missing or unreadable" in bad[0].message


# ---------------------------------------------------------------------------
# S406 boundary-validation
# ---------------------------------------------------------------------------


def test_s406_flags_public_boundary_method_forwarding_raw_arrays():
    result = run_fixture("s406_boundary", [BoundaryValidationRule()])
    bad = findings(result, "S406", "bad.py")
    assert len(bad) == 1
    assert "array parameter(s) X cross the platform API boundary" \
        in bad[0].message
    assert "[Endpoint.predict_batch]" in bad[0].message


def test_s406_clean_with_direct_and_delegated_validation():
    # Endpoint validates inline; Gateway validates through an
    # in-project helper, exercising the interprocedural fixpoint.
    result = run_fixture("s406_boundary", [BoundaryValidationRule()])
    assert findings(result, "S406", "ok.py") == []


def test_s406_ignores_modules_outside_the_platform_boundary():
    result = run_fixture("s401_shape", [BoundaryValidationRule()])
    assert findings(result, "S406") == []
