"""A gateway with a timed operation and a /metrics/summary route."""


class Response:
    def __init__(self, status=200, body=None):
        self.status = status
        self.body = body


class MetricGateway:
    def _route(self, request):
        segments = request.segments
        if request.method == "GET" and segments == ("metrics", "summary"):
            return Response(status=200, body={"operations": self._ops(),
                                              "uptime": self._uptime()})
        if request.method == "GET" and segments == ("health",):
            return self._timed("health_check", lambda: {"status": "ok"})
        return Response(status=404, body={"error": "no route"})

    def _timed(self, operation, handler):
        self.metrics.record_sample(f"latency_samples.{operation}", 0.0)
        return Response(status=200, body=handler())

    def _ops(self):
        return {}

    def _uptime(self):
        return 0.0
