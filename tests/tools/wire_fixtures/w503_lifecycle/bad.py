"""Resources acquired without exception-path protection (W503 fires)."""

import socket
import threading


def success_only_close(host, port):
    sock = socket.create_connection((host, port))
    greeting = handshake(sock)
    sock.close()
    return greeting


def never_released(path):
    handle = open(path)
    text = handle.read()
    return text.strip()


def fire_and_forget(work):
    worker = threading.Thread(target=work)
    worker.start()
    work_done = compute()
    return work_done


def handshake(sock):
    sock.sendall(b"hello")
    return sock.recv(64)


def compute():
    return 1
