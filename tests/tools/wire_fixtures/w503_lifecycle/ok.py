"""The same acquisitions with lifecycle discipline (W503 stays silent)."""

import socket
import threading


def with_protected(path):
    with open(path) as handle:
        return handle.read()


def try_finally(host, port):
    sock = socket.create_connection((host, port))
    try:
        return handshake(sock)
    finally:
        sock.close()


def immediate_cleanup(host, port):
    sock = socket.create_connection((host, port))
    sock.close()
    return True


def build_worker(work):
    worker = threading.Thread(target=work)
    return worker  # unstarted and returned: the caller owns it


def stored_server(registry, factory):
    server = factory.ThreadingHTTPServer(("127.0.0.1", 0), None)
    registry["server"] = server  # stored: ownership transferred
    return registry


def handshake(sock):
    sock.sendall(b"hello")
    return sock.recv(64)
