"""Indefinitely blocking calls reachable from a gateway (W505 fires)."""

import subprocess
import time


class Response:
    def __init__(self, status=200, body=None):
        self.status = status
        self.body = body


class SleepyGateway:
    def _route(self, request):
        segments = request.segments
        if request.method == "GET" and segments == ("slow",):
            return self._slow(request)
        if request.method == "GET" and segments == ("drain",):
            return self._drain(request)
        return Response(status=404, body={"error": "no route"})

    def _slow(self, request):
        time.sleep(5)
        report = run_tool()
        return Response(status=200, body={"report": report})

    def _drain(self, request):
        self._done.wait()
        return Response(status=200, body={"drained": True})


def run_tool():
    return subprocess.check_output(["tool"])
