"""Handlers that bound every wait with a timeout (W505 stays silent)."""


class Response:
    def __init__(self, status=200, body=None):
        self.status = status
        self.body = body


class PromptGateway:
    def _route(self, request):
        segments = request.segments
        if request.method == "GET" and segments == ("ready",):
            return self._ready(request)
        return Response(status=404, body={"error": "no route"})

    def _ready(self, request):
        finished = self._done.wait(0.1)
        return Response(status=200, body={"ready": finished})
