"""Values json.dumps rejects reaching encode sites (W504 fires)."""

import json

import numpy as np


def encode_mean(x):
    return json.dumps(np.float64(x))


def encode_tags():
    return json.dumps({"fast", "slow"})


def encode_rate():
    return json.dumps(float("nan"))


def encode_rows(values):
    rows = np.asarray(values, dtype=np.float64)
    return json.dumps(rows)


def encode_mixed(values):
    cells = np.array(values, dtype=np.object_)
    return json.dumps(cells)
