"""The same payloads made JSON-safe first (W504 stays silent)."""

import json

import numpy as np


def encode_mean(x):
    return json.dumps(float(np.float64(x)))


def encode_tags():
    return json.dumps(sorted({"fast", "slow"}))


def encode_rows(values):
    rows = np.asarray(values, dtype=np.float64)
    return json.dumps(rows.tolist())


def encode_payload(values):
    rows = np.asarray(values, dtype=np.float64)
    return encode_array(rows)


def encode_array(array):
    return json.dumps(array.tolist())
