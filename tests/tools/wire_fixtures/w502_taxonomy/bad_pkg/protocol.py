"""A wire taxonomy with every completeness defect W502 names."""

__all__ = ["ERROR_STATUS", "KIND_TO_ERROR"]


class ReproError(Exception):
    """Root of the wire-visible error family."""


class ValidationError(ReproError):
    pass


class MissingError(ReproError):
    pass


class GhostError(ReproError):
    pass


class StatusOnlyError(ReproError):
    pass


class _InternalError(ReproError):
    pass


ERROR_STATUS = {
    "ReproError": 500,
    "ValidationError": 400,
    "GhostError": 410,
    "StatusOnlyError": 418,
}

KIND_TO_ERROR = {
    "ReproError": ReproError,
    "ValidationError": ValidationError,
    "GhostError": GhostError,
    "WrongError": ValidationError,
}


def check(payload):
    if not payload:
        raise ValidationError("empty payload")
    return payload


def fetch(store, key):
    if key not in store:
        raise MissingError(key)
    return store[key]


def scan(rows):
    try:
        for row in rows:
            if row is None:
                raise _InternalError()
    except _InternalError:
        return None
    return rows
