"""A complete, alive, round-trippable wire taxonomy: W502 stays silent."""

__all__ = ["ERROR_STATUS", "KIND_TO_ERROR"]


class ReproError(Exception):
    """Root of the wire-visible error family."""


class ValidationError(ReproError):
    pass


ERROR_STATUS = {
    "ReproError": 500,
    "ValidationError": 400,
}

KIND_TO_ERROR = {
    "ReproError": ReproError,
    "ValidationError": ValidationError,
}


def check(payload):
    if not payload:
        raise ValidationError("empty payload")
    return payload
