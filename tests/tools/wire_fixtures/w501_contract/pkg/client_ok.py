"""A client whose expectations match the derived routes exactly."""


class WireClient:
    def _request(self, method, path, payload=None):
        return {"status": "ok"}

    def health(self):
        result = self._request("GET", "/health")
        return result["status"]

    def predict(self, X):
        result = self._request("POST", "/predict", {"X": X})
        return result["predictions"]
