"""A miniature gateway: two routes derivable from ``_route``."""


class Response:
    def __init__(self, status=200, body=None):
        self.status = status
        self.body = body


class Gateway:
    def __init__(self, platform):
        self.platform = platform

    def _route(self, request):
        segments = request.segments
        if request.method == "GET" and segments == ("health",):
            return Response(status=200, body={"status": "ok"})
        if request.method == "POST" and segments == ("predict",):
            return self._predict(request)
        return Response(status=404, body={"error": "no route"})

    def _predict(self, request):
        body = request.json()
        rows = self.platform.predict(body["X"])
        return Response(status=200, body={"predictions": rows})
