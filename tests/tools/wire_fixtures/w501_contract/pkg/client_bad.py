"""A client that drifts from the server: dead path, extra key, bad read."""


class LooseClient:
    def _request(self, method, path, payload=None):
        return {}

    def missing(self):
        result = self._request("GET", "/nope")
        return result.get("status")

    def loose_predict(self, X):
        result = self._request("POST", "/predict", {"X": X, "debug": True})
        return result["labels"]
