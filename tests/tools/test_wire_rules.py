"""Per-rule tests for the W-rules, driven by the fixture mini-trees.

Each directory under ``wire_fixtures/`` holds the smallest serving
layer that makes one rule fire (a ``bad`` module) next to the same
contract kept honest (an ``ok`` module).  ``context_paths=()`` keeps
the real tests/benchmarks out of the fixture analyses.  The spec rules
(W501/W506) read their ``spec_match.py``/``spec_drift.py`` from one
directory above the analyzed package — the match files are themselves
``--update-spec`` output over the fixture, so the drift tests change
exactly one recorded fact.  The W504 fixture nests its files under
``repro/serving`` because the encode-site scan is scoped to serving
modules by dotted name.
"""

from pathlib import Path

from repro.tools.wire import wire_paths
from repro.tools.wire.rules import (
    BlockingHandlerRule,
    EncodeSafetyRule,
    ErrorTaxonomyRule,
    MetricsSpecRule,
    ResourceLifecycleRule,
    RouteConformanceRule,
)

FIXTURES = Path(__file__).resolve().parent / "wire_fixtures"

#: A spec path that exists nowhere: the spec-diff arms stay out of the
#: way of tests that target the specless checks.
NO_SPEC = FIXTURES / "no_such_spec.py"


def run_fixture(name, rules, spec_path=NO_SPEC):
    return wire_paths(
        [FIXTURES / name], rules=rules,
        root=FIXTURES / name, context_paths=(), spec_path=spec_path,
    )


def findings(result, code, path_suffix=None):
    return [
        v for v in result.unsuppressed
        if v.code == code
        and (path_suffix is None or v.path.endswith(path_suffix))
    ]


# ---------------------------------------------------------------------------
# W501 wire-contract
# ---------------------------------------------------------------------------


def test_w501_cross_checks_client_against_derived_routes():
    result = run_fixture(
        "w501_contract/pkg", [RouteConformanceRule()],
        spec_path=FIXTURES / "w501_contract" / "spec_match.py",
    )
    bad = findings(result, "W501", "client_bad.py")
    messages = " | ".join(v.message for v in bad)
    assert "missing() targets `GET /nope`, which matches no route" \
        in messages
    assert "loose_predict() sends payload key(s) debug" in messages
    assert "loose_predict() reads key(s) labels" in messages
    assert len(bad) == 3
    assert findings(result, "W501", "client_ok.py") == []
    assert findings(result, "W501", "server.py") == []


def test_w501_flags_spec_drift_and_stale_entries():
    result = run_fixture(
        "w501_contract/pkg", [RouteConformanceRule()],
        spec_path=FIXTURES / "w501_contract" / "spec_drift.py",
    )
    drift = [v for v in findings(result, "W501")
             if "spec" in v.message]
    messages = " | ".join(v.message for v in drift)
    assert "route `POST /predict` disagrees with the spec on statuses" \
        in messages
    assert "client method predict() is not in the wire spec" in messages
    assert "spec client method predict_all() matches no derived client" \
        in messages
    assert len(drift) == 3
    route_drift = [v for v in drift if "POST /predict" in v.message]
    assert route_drift[0].path.endswith("server.py")  # anchored at the route


def test_w501_reports_a_missing_spec_once():
    result = run_fixture("w501_contract/pkg", [RouteConformanceRule()])
    missing = [v for v in findings(result, "W501")
               if "missing or unreadable" in v.message]
    assert len(missing) == 1
    # The specless client/server cross-checks still ran.
    assert len(findings(result, "W501", "client_bad.py")) == 3


def test_w501_is_silent_without_a_serving_layer():
    # No gateway, no client: even a missing spec is not reported.
    result = run_fixture("w503_lifecycle", [RouteConformanceRule()])
    assert findings(result, "W501") == []


# ---------------------------------------------------------------------------
# W502 error-taxonomy
# ---------------------------------------------------------------------------


def test_w502_flags_every_taxonomy_defect():
    result = run_fixture("w502_taxonomy/bad_pkg", [ErrorTaxonomyRule()])
    bad = findings(result, "W502", "protocol.py")
    messages = " | ".join(v.message for v in bad)
    assert "StatusOnlyError has a status in ERROR_STATUS but no " \
        "KIND_TO_ERROR entry" in messages
    assert "WrongError is in KIND_TO_ERROR but has no ERROR_STATUS" \
        in messages
    assert "KIND_TO_ERROR['WrongError'] maps to ValidationError" in messages
    assert "mapped error kind GhostError is never raised or constructed" \
        in messages
    assert "MissingError is raised here but has no KIND_TO_ERROR mapping" \
        in messages
    assert len(bad) == 5


def test_w502_private_kinds_are_internal_control_flow():
    result = run_fixture("w502_taxonomy/bad_pkg", [ErrorTaxonomyRule()])
    assert not any("_InternalError" in v.message
                   for v in findings(result, "W502"))


def test_w502_clean_on_a_complete_round_trippable_taxonomy():
    result = run_fixture("w502_taxonomy/ok_pkg", [ErrorTaxonomyRule()])
    assert findings(result, "W502") == []


def test_w502_is_silent_without_a_taxonomy():
    result = run_fixture("w501_contract/pkg", [ErrorTaxonomyRule()])
    assert findings(result, "W502") == []


# ---------------------------------------------------------------------------
# W503 resource-lifecycle
# ---------------------------------------------------------------------------


def test_w503_flags_leaky_acquisitions():
    result = run_fixture("w503_lifecycle", [ResourceLifecycleRule()])
    bad = findings(result, "W503", "bad.py")
    messages = " | ".join(v.message for v in bad)
    assert "socket `sock` is released only on the success path" in messages
    assert "file `handle` is acquired but never released" in messages
    assert "thread `worker` is acquired but never released" in messages
    assert len(bad) == 3


def test_w503_clean_on_protected_or_transferred_resources():
    result = run_fixture("w503_lifecycle", [ResourceLifecycleRule()])
    assert findings(result, "W503", "ok.py") == []


# ---------------------------------------------------------------------------
# W504 json-wire-safety
# ---------------------------------------------------------------------------


def test_w504_flags_unencodable_values_at_encode_sites():
    result = run_fixture("w504_encode", [EncodeSafetyRule()])
    bad = findings(result, "W504", "bad.py")
    messages = " | ".join(v.message for v in bad)
    assert "numpy scalar np.float64(...) reaches json.dumps" in messages
    assert "set literal reaches json.dumps" in messages
    assert "non-finite float float('nan') reaches json.dumps" in messages
    assert "ndarray `rows` reaches json.dumps without encode_array()" \
        in messages
    assert "object-dtype array `cells` reaches json.dumps" in messages
    assert len(bad) == 5


def test_w504_clean_when_values_are_converted_first():
    result = run_fixture("w504_encode", [EncodeSafetyRule()])
    assert findings(result, "W504", "ok.py") == []


# ---------------------------------------------------------------------------
# W505 blocking-handler
# ---------------------------------------------------------------------------


def test_w505_flags_blocking_calls_in_the_handler_closure():
    result = run_fixture("w505_blocking", [BlockingHandlerRule()])
    bad = findings(result, "W505", "bad.py")
    messages = " | ".join(v.message for v in bad)
    assert "time.sleep() blocks the handler thread" in messages
    assert "`.wait()` with no timeout" in messages
    # The subprocess call lives in a helper the handler resolves into.
    assert "subprocess.check_output() blocks on a child process" in messages
    assert all("[reachable from SleepyGateway]" in v.message for v in bad)
    assert len(bad) == 3


def test_w505_clean_when_every_wait_has_a_timeout():
    result = run_fixture("w505_blocking", [BlockingHandlerRule()])
    assert findings(result, "W505", "ok.py") == []


# ---------------------------------------------------------------------------
# W506 metrics-spec
# ---------------------------------------------------------------------------


def test_w506_silent_when_the_metrics_surface_matches_the_spec():
    result = run_fixture(
        "w506_metrics/pkg", [MetricsSpecRule()],
        spec_path=FIXTURES / "w506_metrics" / "spec_match.py",
    )
    assert findings(result, "W506") == []


def test_w506_flags_a_renamed_operation():
    result = run_fixture(
        "w506_metrics/pkg", [MetricsSpecRule()],
        spec_path=FIXTURES / "w506_metrics" / "spec_drift.py",
    )
    bad = findings(result, "W506", "server.py")
    assert len(bad) == 1
    assert "metrics surface of MetricGateway disagrees with the wire " \
        "spec on operations" in bad[0].message


def test_w506_is_silent_without_a_spec_metrics_section():
    result = run_fixture("w506_metrics/pkg", [MetricsSpecRule()])
    assert findings(result, "W506") == []
