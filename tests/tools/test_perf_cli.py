"""Tests for the ``repro perf`` command-line front ends and exit codes."""

import io
import json
import subprocess
import sys
from pathlib import Path

import repro.cli
from repro.tools.perf.cli import main as perf_main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"
FIXTURES = Path(__file__).resolve().parent / "perf_fixtures"

P_CODES = ("P301", "P302", "P303", "P304", "P305", "P306")


def run_main(argv):
    out = io.StringIO()
    code = perf_main(argv, out=out)
    return code, out.getvalue()


def test_list_rules_prints_all_six_rules():
    code, output = run_main(["--list-rules"])
    assert code == 0
    for rule_code in P_CODES:
        assert rule_code in output


def test_nonexistent_path_is_a_usage_error():
    code, _ = run_main(["definitely/not/a/path"])
    assert code == 2


def test_clean_tree_exits_zero():
    code, output = run_main([str(REPO_SRC / "repro")])
    assert code == 0
    assert "0 violations" in output


def test_violating_fixture_exits_one_with_json_report():
    code, output = run_main([
        str(FIXTURES / "p301_axis_loop"), "--format", "json",
    ])
    assert code == 1
    report = json.loads(output)
    assert report["summary"]["exit_code"] == 1
    codes = {v["code"] for v in report["violations"]}
    assert codes == {"P301"}
    assert all(v["path"].endswith("bad.py")
               for v in report["violations"])


def test_python_dash_m_entry_point():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.tools.perf", "--list-rules"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "P301" in proc.stdout


def test_repro_cli_perf_subcommand():
    out = io.StringIO()
    code = repro.cli.main(["perf", "--list-rules"], out=out)
    assert code == 0
    assert "P306" in out.getvalue()


def test_perf_suppression_with_reason_is_honored(tmp_path):
    source = FIXTURES / "p302_growth" / "bad.py"
    patched = tmp_path / "patched.py"
    patched.write_text(
        source.read_text(encoding="utf-8").replace(
            "out = np.append(out, value)  # copies the prefix every "
            "iteration",
            "out = np.append(out, value)  # repro: disable=P302 -- "
            "bounded to three items in this fixture",
        ),
        encoding="utf-8",
    )
    code, output = run_main([str(tmp_path), "--show-suppressed"])
    assert code == 1  # the list self-concatenation still fires
    assert "suppressed: bounded to three items" in output
    assert output.count("P302") == 2


def test_perf_suppression_without_reason_is_r000(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text(
        "import numpy as np\n\n\n"
        "def idle():\n"
        "    pass  # repro: disable=P301\n",
        encoding="utf-8",
    )
    code, output = run_main([str(tmp_path)])
    assert code == 1
    assert "R000" in output and "justification" in output


def test_update_spec_round_trips(tmp_path):
    pkg = FIXTURES / "p305_spec" / "pkg"
    spec = tmp_path / "spec.py"

    code, output = run_main(["--update-spec", "--spec", str(spec), str(pkg)])
    assert code == 0
    assert "wrote derived complexity of 1 estimator(s)" in output
    first = spec.read_text(encoding="utf-8")
    assert "SlowKNN" in first and "'fit'" in first

    # A check run against the freshly written spec reports no drift.
    code, output = run_main([
        str(pkg), "--spec", str(spec), "--format", "json",
    ])
    report = json.loads(output)
    assert "P305" not in {v["code"] for v in report["violations"]}

    # Regenerating is a fixed point: byte-identical output.
    code, _ = run_main(["--update-spec", "--spec", str(spec), str(pkg)])
    assert code == 0
    assert spec.read_text(encoding="utf-8") == first


def test_top_appends_ranked_hotspot_section():
    code, output = run_main([str(FIXTURES / "p301_axis_loop"), "--top", "2"])
    assert code == 1
    assert "top 2 hotspot(s) of 2 finding(s):" in output
    assert output.index("hotspot") > output.index("P301")


def test_profile_reweights_the_hotspot_ranking(tmp_path):
    # Without a profile the two P301s tie and sort by line: 8 before 15.
    # A profile charging 9s to per_sample_collect (def at line 13) must
    # put the line-15 finding on top.
    profile = tmp_path / "profile.json"
    profile.write_text(
        json.dumps([{"file": "bad.py", "line": 13, "cumtime": 9.0}]),
        encoding="utf-8",
    )
    code, plain = run_main([str(FIXTURES / "p301_axis_loop"), "--top", "1"])
    assert code == 1
    assert "bad.py:8" in plain.split("hotspot(s)")[1]
    code, ranked = run_main([
        str(FIXTURES / "p301_axis_loop"), "--top", "1",
        "--profile", str(profile),
    ])
    assert code == 1
    assert "bad.py:15" in ranked.split("hotspot(s)")[1]


def test_unreadable_profile_is_a_usage_error(tmp_path):
    profile = tmp_path / "profile.json"
    profile.write_text("not json", encoding="utf-8")
    code, _ = run_main([
        str(FIXTURES / "p301_axis_loop"), "--profile", str(profile),
    ])
    assert code == 2
