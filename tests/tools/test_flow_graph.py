"""Unit tests for the shared flow indexes (symbol/import/call graphs)."""

import ast
from pathlib import Path

from repro.tools.flow.graph import build_index, dotted_path, import_bindings
from repro.tools.lint.engine import Project, load_module


def index_from(tmp_path, files):
    """Write ``{relpath: source}`` under tmp_path and index the tree."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source, encoding="utf-8")
    project = Project()
    for relpath in sorted(files):
        module, errors = load_module(tmp_path / relpath, root=tmp_path)
        assert errors == []
        project.modules.append(module)
    return build_index(project)


def test_dotted_path():
    node = ast.parse("a.b.c", mode="eval").body
    assert dotted_path(node) == ("a", "b", "c")
    assert dotted_path(ast.parse("a", mode="eval").body) == ("a",)
    assert dotted_path(ast.parse("f().x", mode="eval").body) is None


def test_import_bindings_resolve_relative_imports(tmp_path):
    index = index_from(tmp_path, {
        "repro/pkg/__init__.py": "",
        "repro/pkg/util.py": "VALUE = 1\n",
        "repro/pkg/mod.py": "from .util import VALUE\nfrom . import util\n",
    })
    module = index.modules["repro.pkg.mod"]
    bindings = import_bindings(module)
    assert bindings["VALUE"].module == "repro.pkg.util"
    assert bindings["VALUE"].symbol == "VALUE"
    assert bindings["util"].module == "repro.pkg"
    assert bindings["util"].symbol == "util"


def test_resolve_symbol_chases_reexport_chains(tmp_path):
    index = index_from(tmp_path, {
        "repro/deep.py": "def origin():\n    return 1\n",
        "repro/middle.py": "from repro.deep import origin\n",
        "repro/top.py": "from repro.middle import origin\n",
    })
    resolved = index.resolve_symbol("repro.top", "origin")
    assert resolved is not None
    assert resolved.module_name == "repro.deep"
    assert resolved.kind == "function"


def test_class_init_chases_base_classes(tmp_path):
    index = index_from(tmp_path, {
        "repro/base.py": (
            "class Base:\n"
            "    def __init__(self, random_state=None):\n"
            "        self.random_state = random_state\n"
        ),
        "repro/child.py": (
            "from repro.base import Base\n"
            "class Child(Base):\n"
            "    pass\n"
        ),
    })
    init = index.class_init("repro.child", "Child")
    assert init is not None
    assert init.module_name == "repro.base"
    assert "random_state" in init.all_param_names()


def test_import_edges_mark_deferred_function_scoped_imports(tmp_path):
    index = index_from(tmp_path, {
        "repro/a.py": "import repro.b\n",
        "repro/b.py": (
            "def late():\n"
            "    import repro.a\n"
            "    return repro.a\n"
        ),
    })
    edges = {(e.source, e.target): e.deferred for e in index.import_edges}
    assert edges[("repro.a", "repro.b")] is False
    assert edges[("repro.b", "repro.a")] is True


def test_call_graph_resolves_local_self_and_constructor_calls(tmp_path):
    index = index_from(tmp_path, {
        "repro/calls.py": (
            "class Widget:\n"
            "    def __init__(self, size=1):\n"
            "        self.size = size\n"
            "    def helper(self):\n"
            "        return self.size\n"
            "    def run(self):\n"
            "        return self.helper()\n"
            "def free():\n"
            "    return 0\n"
            "def driver():\n"
            "    w = Widget(size=2)\n"
            "    return free() + w.run()\n"
        ),
    })
    driver_sites = index.calls[("repro.calls", "driver")]
    targets = {site.target for site in driver_sites if site.target}
    assert ("repro.calls", "Widget.__init__") in targets
    assert ("repro.calls", "free") in targets
    constructor = next(s for s in driver_sites
                       if s.target == ("repro.calls", "Widget.__init__"))
    assert constructor.target_class == "Widget"
    run_sites = index.calls[("repro.calls", "Widget.run")]
    assert [s.target for s in run_sites] == [("repro.calls", "Widget.helper")]


def test_module_body_calls_live_in_pseudo_scope(tmp_path):
    index = index_from(tmp_path, {
        "repro/body.py": (
            "def build():\n"
            "    return 3\n"
            "SINGLETON = build()\n"
        ),
    })
    body_sites = index.calls[("repro.body", "")]
    assert [s.target for s in body_sites] == [("repro.body", "build")]
