"""Per-rule tests for the P-rules, driven by the fixture mini-packages.

Each directory under ``perf_fixtures/`` holds a ``bad.py`` with the
deliberate hot-path hazards one rule must catch and an ``ok.py`` with
the same work vectorized, hoisted, cached, or preallocated that must
stay silent.  ``context_paths=()`` keeps the real tests/benchmarks out
of the fixture analyses; the P305 fixtures keep their spec files one
directory above the analyzed package so the specs are data, not input.
"""

from pathlib import Path

from repro.tools.perf import perf_paths
from repro.tools.perf.rules import (
    AxisLoopRule,
    ComplexitySpecRule,
    HotLoopAllocRule,
    InvariantCallRule,
    QuadraticGrowthRule,
    UncachedRefitRule,
)

FIXTURES = Path(__file__).resolve().parent / "perf_fixtures"


def run_fixture(name, rules, spec_path=None):
    return perf_paths(
        [FIXTURES / name], rules=rules,
        root=FIXTURES / name, context_paths=(), spec_path=spec_path,
    )


def findings(result, code, path_suffix=None):
    return [
        v for v in result.unsuppressed
        if v.code == code
        and (path_suffix is None or v.path.endswith(path_suffix))
    ]


# ---------------------------------------------------------------------------
# P301 axis-loop
# ---------------------------------------------------------------------------


def test_p301_flags_feature_range_and_direct_sample_loops():
    result = run_fixture("p301_axis_loop", [AxisLoopRule()])
    bad = findings(result, "P301", "bad.py")
    messages = " | ".join(v.message for v in bad)
    assert "features axis" in messages  # range(X.shape[1]) loop
    assert "samples axis" in messages  # for row in X append loop
    assert "depth-1" in messages
    assert len(bad) == 2


def test_p301_clean_on_vectorized_and_chunked_forms():
    result = run_fixture("p301_axis_loop", [AxisLoopRule()])
    assert findings(result, "P301", "ok.py") == []


# ---------------------------------------------------------------------------
# P302 quadratic-growth
# ---------------------------------------------------------------------------


def test_p302_flags_np_append_and_list_self_concat():
    result = run_fixture("p302_growth", [QuadraticGrowthRule()])
    bad = findings(result, "P302", "bad.py")
    messages = " | ".join(v.message for v in bad)
    assert "np.append" in messages
    assert "acc + [value]" in messages
    assert len(bad) == 2


def test_p302_clean_on_collect_then_concat_and_inplace_add():
    result = run_fixture("p302_growth", [QuadraticGrowthRule()])
    assert findings(result, "P302", "ok.py") == []


# ---------------------------------------------------------------------------
# P303 invariant-call
# ---------------------------------------------------------------------------


def test_p303_flags_invariant_sort_recomputed_per_pass():
    result = run_fixture("p303_invariant", [InvariantCallRule()])
    bad = findings(result, "P303", "bad.py")
    assert len(bad) == 1
    assert "np.sort(temps)" in bad[0].message
    assert "hoist" in bad[0].message


def test_p303_clean_when_hoisted_and_ignores_fresh_rng_draws():
    result = run_fixture("p303_invariant", [InvariantCallRule()])
    assert findings(result, "P303", "ok.py") == []


# ---------------------------------------------------------------------------
# P304 uncached-refit
# ---------------------------------------------------------------------------


def test_p304_flags_clone_fit_loop_on_search_path():
    result = run_fixture("p304_refit", [UncachedRefitRule()])
    bad = findings(result, "P304", "bad.py")
    assert len(bad) == 1
    assert "model = clone(...)" in bad[0].message
    assert "FitCache" in bad[0].message


def test_p304_clean_when_the_fit_goes_through_a_memory_handle():
    result = run_fixture("p304_refit", [UncachedRefitRule()])
    assert findings(result, "P304", "ok.py") == []


# ---------------------------------------------------------------------------
# P305 complexity-spec
# ---------------------------------------------------------------------------


def test_p305_silent_when_spec_matches_derivation():
    result = run_fixture(
        "p305_spec/pkg", [ComplexitySpecRule()],
        spec_path=FIXTURES / "p305_spec" / "spec_match.py",
    )
    assert findings(result, "P305") == []


def test_p305_flags_drifted_and_stale_entries():
    result = run_fixture(
        "p305_spec/pkg", [ComplexitySpecRule()],
        spec_path=FIXTURES / "p305_spec" / "spec_drift.py",
    )
    bad = findings(result, "P305")
    messages = " | ".join(v.message for v in bad)
    assert "disagrees with the spec" in messages  # SlowKNN.fit drifted
    assert "matches no analyzed estimator" in messages  # model.Gone stale
    assert len(bad) == 2
    drifted = [v for v in bad if "disagrees" in v.message]
    assert drifted[0].path.endswith("model.py")
    assert drifted[0].line == 10  # anchored at the class definition


def test_p305_flags_new_estimator_missing_from_real_spec():
    # With the repo's checked-in spec, the fixture estimator is unknown.
    result = run_fixture("p305_spec/pkg", [ComplexitySpecRule()])
    bad = findings(result, "P305")
    assert len(bad) == 1
    assert "model.SlowKNN is not in the complexity spec" in bad[0].message


def test_p305_reports_unreadable_spec_once():
    result = run_fixture(
        "p305_spec/pkg", [ComplexitySpecRule()],
        spec_path=FIXTURES / "p305_spec" / "no_such_spec.py",
    )
    bad = findings(result, "P305")
    assert len(bad) == 1
    assert "missing or unreadable" in bad[0].message


# ---------------------------------------------------------------------------
# P306 hot-loop-alloc
# ---------------------------------------------------------------------------


def test_p306_flags_allocation_in_compiled_module_hot_loop():
    result = run_fixture("p306_alloc", [HotLoopAllocRule()])
    bad = findings(result, "P306", "bad.py")
    assert len(bad) == 1
    assert "np.zeros(4)" in bad[0].message
    assert "preallocate" in bad[0].message


def test_p306_clean_when_buffer_is_preallocated():
    result = run_fixture("p306_alloc", [HotLoopAllocRule()])
    assert findings(result, "P306", "ok.py") == []


def test_p306_ignores_untagged_modules_with_the_same_loop():
    # The identical allocation pattern outside a _COMPILED_SUBSTRATE
    # module is P301/P303 territory, not P306.
    result = run_fixture("p303_invariant", [HotLoopAllocRule()])
    assert findings(result, "P306") == []
