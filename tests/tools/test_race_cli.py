"""Tests for the ``repro race`` command-line front ends and exit codes."""

import io
import json
import subprocess
import sys
from pathlib import Path

import repro.cli
from repro.tools.race.cli import main as race_main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"
FIXTURES = Path(__file__).resolve().parent / "race_fixtures"

C_CODES = ("C201", "C202", "C203", "C204", "C205", "C206")


def run_main(argv):
    out = io.StringIO()
    code = race_main(argv, out=out)
    return code, out.getvalue()


def test_list_rules_prints_all_six_rules():
    code, output = run_main(["--list-rules"])
    assert code == 0
    for rule_code in C_CODES:
        assert rule_code in output


def test_nonexistent_path_is_a_usage_error():
    code, _ = run_main(["definitely/not/a/path"])
    assert code == 2


def test_clean_tree_exits_zero():
    code, output = run_main([str(REPO_SRC / "repro")])
    assert code == 0
    assert "0 violations" in output


def test_violating_fixture_exits_one_with_json_report():
    code, output = run_main([
        str(FIXTURES / "c203_check_then_act"), "--format", "json",
    ])
    assert code == 1
    report = json.loads(output)
    assert report["summary"]["exit_code"] == 1
    codes = {v["code"] for v in report["violations"]}
    assert codes == {"C203"}
    assert all(v["path"].endswith("bad.py")
               for v in report["violations"])


def test_python_dash_m_entry_point():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.tools.race", "--list-rules"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "C201" in proc.stdout


def test_repro_cli_race_subcommand():
    out = io.StringIO()
    code = repro.cli.main(["race", "--list-rules"], out=out)
    assert code == 0
    assert "C206" in out.getvalue()


def test_race_suppression_with_reason_is_honored(tmp_path):
    source = FIXTURES / "c203_check_then_act" / "bad.py"
    patched = tmp_path / "patched.py"
    patched.write_text(
        source.read_text(encoding="utf-8").replace(
            "if item is None:  # another thread can insert between check "
            "and store",
            "if item is None:  # repro: disable=C203 -- single-writer "
            "phase, documented in the fixture",
        ),
        encoding="utf-8",
    )
    code, output = run_main([str(tmp_path), "--show-suppressed"])
    assert code == 1  # ensure_membership still fires
    assert "suppressed: single-writer phase" in output
    assert output.count("C203") == 2


def test_race_suppression_without_reason_is_r000(tmp_path):
    bad = tmp_path / "mod.py"
    bad.write_text(
        "import threading\n\n\n"
        "def idle():\n"
        "    pass  # repro: disable=C205\n",
        encoding="utf-8",
    )
    code, output = run_main([str(tmp_path)])
    assert code == 1
    assert "R000" in output and "justification" in output
