"""Exit-code contract of ``repro lint`` / ``python -m repro.tools.lint``."""

import io
import json
import textwrap

import pytest

from repro.cli import main as repro_main
from repro.tools.lint.cli import main as lint_main

_CLEAN = '__all__ = ["CONSTANT"]\n\nCONSTANT = 1\n'

_DIRTY = textwrap.dedent("""
    import numpy as np

    __all__ = ["sample"]


    def sample():
        \"\"\"Draw without a seed (deliberately violates R001).\"\"\"
        return np.random.default_rng()
""")


def _run(main, argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture()
def clean_file(tmp_path):
    path = tmp_path / "clean.py"
    path.write_text(_CLEAN)
    return path


@pytest.fixture()
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text(_DIRTY)
    return path


def test_exit_zero_on_clean_file(clean_file):
    code, output = _run(lint_main, [str(clean_file)])
    assert code == 0
    assert "0 violations" in output


def test_exit_one_on_violation(dirty_file):
    code, output = _run(lint_main, [str(dirty_file)])
    assert code == 1
    assert "R001" in output
    assert "dirty.py" in output


def test_exit_two_on_missing_path(tmp_path):
    code, _ = _run(lint_main, [str(tmp_path / "does_not_exist")])
    assert code == 2


def test_exit_two_on_directory_without_python(tmp_path):
    (tmp_path / "empty").mkdir()
    code, _ = _run(lint_main, [str(tmp_path / "empty")])
    assert code == 2


def test_exit_two_on_bad_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        lint_main(["--format", "yaml"])
    assert excinfo.value.code == 2


def test_json_format_is_parseable(dirty_file):
    code, output = _run(lint_main, ["--format", "json", str(dirty_file)])
    assert code == 1
    payload = json.loads(output)
    assert payload["summary"]["exit_code"] == 1
    assert payload["violations"][0]["code"] == "R001"


def test_list_rules_mentions_every_family():
    code, output = _run(lint_main, ["--list-rules"])
    assert code == 0
    for rule_code in ("R001", "R002", "R003", "R004", "R005"):
        assert rule_code in output


def test_repro_cli_exposes_lint_subcommand(clean_file, dirty_file):
    assert _run(repro_main, ["lint", str(clean_file)])[0] == 0
    assert _run(repro_main, ["lint", str(dirty_file)])[0] == 1
