"""Per-rule unit tests: a violating fixture and a clean fixture each."""

import textwrap

from repro.platforms.table1_spec import (
    ClassifierEntry,
    ParameterEntry,
    PlatformEntry,
)
from repro.tools.lint import lint_source
from repro.tools.lint.rules import (
    DeterminismRule,
    EstimatorContractRule,
    ExceptionHygieneRule,
    ExportSyncRule,
    Table1ConformanceRule,
)


def _codes(source, rule):
    result = lint_source(textwrap.dedent(source), rules=[rule])
    return [v.code for v in result.unsuppressed]


# -- R001 determinism --------------------------------------------------------

def test_r001_flags_legacy_np_random():
    assert _codes("""
        import numpy as np
        x = np.random.rand(3)
    """, DeterminismRule()) == ["R001"]


def test_r001_flags_argless_default_rng():
    assert _codes("""
        import numpy as np
        rng = np.random.default_rng()
    """, DeterminismRule()) == ["R001"]


def test_r001_flags_stdlib_random():
    assert _codes("""
        import random
        x = random.random()
    """, DeterminismRule()) == ["R001"]


def test_r001_resolves_import_aliases():
    assert _codes("""
        from numpy import random as npr
        x = npr.shuffle([1, 2])
    """, DeterminismRule()) == ["R001"]


def test_r001_clean_seeded_generator():
    assert _codes("""
        import numpy as np
        rng = np.random.default_rng(7)
        seeded = np.random.default_rng(seed=0)
    """, DeterminismRule()) == []


# -- R002 estimator contract -------------------------------------------------

def test_r002_flags_init_logic_and_missing_fit_contract():
    codes = _codes("""
        from repro.learn.base import BaseEstimator

        class Bad(BaseEstimator):
            def __init__(self, alpha=1.0):
                self.alpha = alpha * 2

            def fit(self, X, y):
                self.coef = X.mean()
                return None
    """, EstimatorContractRule())
    # init logic, alpha never stored verbatim, non-self return, missing
    # validation, unfitted attribute name
    assert codes == ["R002"] * 5


def test_r002_flags_missing_param_assignment_and_varargs():
    codes = _codes("""
        from repro.learn.base import BaseEstimator

        class Bad(BaseEstimator):
            def __init__(self, alpha=1.0, **kwargs):
                pass
    """, EstimatorContractRule())
    assert len(codes) == 3  # **kwargs, 'pass' is not verbatim, alpha unstored


def test_r002_clean_estimator():
    assert _codes("""
        from repro.learn.base import BaseEstimator
        from repro.learn.validation import check_X_y

        class Good(BaseEstimator):
            def __init__(self, alpha=1.0):
                self.alpha = alpha

            def fit(self, X, y):
                X, y = check_X_y(X, y)
                self.coef_ = X.mean()
                return self
    """, EstimatorContractRule()) == []


def test_r002_fit_may_delegate_to_subestimator():
    assert _codes("""
        from repro.learn.base import BaseEstimator

        class Wrapper(BaseEstimator):
            def __init__(self, base=None):
                self.base = base

            def fit(self, X, y):
                self.model_ = self.base.fit(X, y)
                return self
    """, EstimatorContractRule()) == []


def test_r002_ignores_classes_outside_hierarchy():
    assert _codes("""
        class Unrelated:
            def __init__(self, alpha=1.0):
                self.alpha = alpha * 2
    """, EstimatorContractRule()) == []


# -- R003 Table 1 conformance ------------------------------------------------

_DEMO_SPEC = {
    "demo": PlatformEntry(
        name="demo",
        complexity=2,
        dimensions=frozenset({"CLF", "PARA"}),
        feature_selectors=("kbest",),
        classifiers=(
            ClassifierEntry("LR", "Logistic Regression", (
                ParameterEntry("C", 1.0, (0.01, 1.0, 100.0)),
            )),
        ),
    ),
}

_DEMO_MODULE = """
    from repro.platforms.base import (
        ClassifierOption, ControlSurface, MLaaSPlatform, ParameterSpec,
    )

    class DemoPlatform(MLaaSPlatform):
        name = "demo"
        complexity = {complexity}
        controls = ControlSurface(
            feature_selectors=("kbest",),
            classifiers=(
                ClassifierOption("LR", "Logistic Regression", (
                    ParameterSpec("{param}", 1.0, (0.01, 1.0, 100.0)),
                )),
            ),
            supports_parameter_tuning=True,
        )
"""


def test_r003_clean_when_declaration_matches_spec():
    source = _DEMO_MODULE.format(complexity=2, param="C")
    assert _codes(source, Table1ConformanceRule(spec=_DEMO_SPEC)) == []


def test_r003_flags_complexity_drift():
    source = _DEMO_MODULE.format(complexity=5, param="C")
    result = lint_source(
        textwrap.dedent(source), rules=[Table1ConformanceRule(spec=_DEMO_SPEC)]
    )
    [violation] = result.unsuppressed
    assert violation.code == "R003"
    assert "complexity 5" in violation.message


def test_r003_flags_renamed_parameter():
    source = _DEMO_MODULE.format(complexity=2, param="regularization")
    result = lint_source(
        textwrap.dedent(source), rules=[Table1ConformanceRule(spec=_DEMO_SPEC)]
    )
    assert any(
        v.code == "R003" and "regularization" in v.message
        for v in result.unsuppressed
    )


def test_r003_flags_platform_missing_from_spec():
    source = _DEMO_MODULE.format(complexity=2, param="C").replace(
        '"demo"', '"unknown"'
    )
    result = lint_source(
        textwrap.dedent(source), rules=[Table1ConformanceRule(spec=_DEMO_SPEC)]
    )
    assert any("no entry" in v.message for v in result.unsuppressed)


def test_r003_live_spec_matches_vendor_modules():
    """The shipped spec and the shipped platforms must agree at runtime too."""
    from repro.platforms import ALL_PLATFORMS
    from repro.platforms.table1_spec import TABLE1_SPEC

    for cls in ALL_PLATFORMS:
        platform = cls()
        entry = TABLE1_SPEC[platform.name]
        assert platform.complexity == entry.complexity
        assert tuple(platform.controls.feature_selectors) == \
            tuple(entry.feature_selectors)
        assert platform.classifier_abbrs() == [c.abbr for c in entry.classifiers]


# -- R004 exception hygiene --------------------------------------------------

def test_r004_flags_bare_except():
    assert _codes("""
        try:
            x = 1
        except:
            pass
    """, ExceptionHygieneRule()) == ["R004"]


def test_r004_flags_silent_broad_swallow():
    assert _codes("""
        for item in ():
            try:
                x = 1
            except Exception:
                continue
    """, ExceptionHygieneRule()) == ["R004"]


def test_r004_allows_broad_catch_that_records_failure():
    assert _codes("""
        failures = []
        try:
            x = 1
        except Exception as exc:
            failures.append(str(exc))
    """, ExceptionHygieneRule()) == []


def test_r004_flags_foreign_exception_hierarchy():
    codes = _codes("""
        class HomegrownError(object):
            pass

        def fail():
            raise HomegrownError("nope")
    """, ExceptionHygieneRule())
    assert codes == ["R004"]


def test_r004_allows_repro_and_stdlib_raises():
    assert _codes("""
        from repro.exceptions import ValidationError

        def fail(flag):
            if flag:
                raise ValidationError("bad input")
            raise ValueError("stdlib is fine")
    """, ExceptionHygieneRule()) == []


# -- R005 export sync --------------------------------------------------------

def test_r005_requires_all_declaration():
    result = lint_source(
        "def public():\n    pass\n",
        filename="mod.py", rules=[ExportSyncRule()],
    )
    assert [v.code for v in result.unsuppressed] == ["R005"]


def test_r005_flags_phantom_and_missing_exports():
    result = lint_source(textwrap.dedent("""
        __all__ = ["ghost"]

        def visible():
            pass
    """), filename="mod.py", rules=[ExportSyncRule()])
    messages = " | ".join(v.message for v in result.unsuppressed)
    assert "ghost" in messages       # exported but undefined
    assert "visible" in messages     # defined but unexported


def test_r005_flags_duplicate_entries():
    result = lint_source(
        '__all__ = ["a", "a"]\n\ndef a():\n    pass\n',
        filename="mod.py", rules=[ExportSyncRule()],
    )
    assert any("more than once" in v.message for v in result.unsuppressed)


def test_r005_clean_module():
    assert _codes("""
        __all__ = ["CONSTANT", "helper"]

        CONSTANT = 3

        def helper():
            pass

        def _private():
            pass
    """, ExportSyncRule()) == []


def test_r005_skips_private_modules():
    result = lint_source(
        "def anything():\n    pass\n",
        filename="_internal.py", rules=[ExportSyncRule()],
    )
    assert result.unsuppressed == []
