"""Tests for the ``repro flow`` command-line front ends and exit codes."""

import io
import json
import shutil
import subprocess
import sys
from pathlib import Path

import repro.cli
from repro.tools.flow.cli import main as flow_main

REPO_SRC = Path(__file__).resolve().parents[2] / "src"
FIXTURES = Path(__file__).resolve().parent / "flow_fixtures"


def run_main(argv):
    out = io.StringIO()
    code = flow_main(argv, out=out)
    return code, out.getvalue()


def test_list_rules_prints_all_five_families():
    code, output = run_main(["--list-rules"])
    assert code == 0
    for rule_code in ("F101", "F102", "F103", "F104", "F105"):
        assert rule_code in output


def test_nonexistent_path_is_a_usage_error():
    code, _ = run_main(["definitely/not/a/path"])
    assert code == 2


def test_clean_tree_exits_zero():
    code, output = run_main([str(REPO_SRC / "repro")])
    assert code == 0
    assert "0 violations" in output


def test_violating_fixture_exits_one_with_json_report(tmp_path):
    # Analyze only the F103 fixture: self-contained, no spec needed for
    # the other families because F105 needs --spec to find drift.
    spec = tmp_path / "spec.json"
    code, _ = run_main([
        str(FIXTURES / "f103_seed"), "--update-spec", "--spec", str(spec),
    ])
    assert code == 0 and spec.exists()
    code, output = run_main([
        str(FIXTURES / "f103_seed"), "--format", "json", "--spec", str(spec),
    ])
    assert code == 1
    report = json.loads(output)
    assert report["summary"]["exit_code"] == 1
    codes = {v["code"] for v in report["violations"]}
    assert codes == {"F103"}


def test_update_spec_then_rerun_is_clean(tmp_path):
    spec = tmp_path / "api_spec.json"
    fixture = tmp_path / "tree"
    shutil.copytree(FIXTURES / "f105_drift" / "repro", fixture / "repro")
    code, output = run_main([str(fixture), "--update-spec", "--spec", str(spec)])
    assert code == 0
    assert "wrote API surface" in output
    code, _ = run_main([str(fixture), "--spec", str(spec)])
    assert code == 0
    # Drift the tree: the rerun must now fail with F105.
    surface = fixture / "repro" / "learn" / "surface.py"
    surface.write_text(
        surface.read_text(encoding="utf-8").replace(
            "threshold=0.5", "threshold=0.75"
        ),
        encoding="utf-8",
    )
    code, output = run_main([
        str(fixture), "--spec", str(spec), "--format", "json",
    ])
    assert code == 1
    report = json.loads(output)
    assert any(v["code"] == "F105" for v in report["violations"])


def test_python_dash_m_entry_point():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.tools.flow", "--list-rules"],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_SRC), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0
    assert "F101" in proc.stdout


def test_repro_cli_flow_subcommand():
    out = io.StringIO()
    code = repro.cli.main(["flow", "--list-rules"], out=out)
    assert code == 0
    assert "F104" in out.getvalue()


def test_show_suppressed_includes_justified_suppressions():
    code, output = run_main([
        str(FIXTURES / "f102_leak"), "--show-suppressed",
    ])
    assert code == 1  # the unsuppressed leaks in leaky.py
    assert "suppressed:" in output
    assert "calibration" in output
