"""Dogfood gate: the repro source tree must satisfy its own P-rules.

This enforces the performance invariants documented in DESIGN.md §7.3:
no un-vectorized Python loops over ndarray axes (P301), no quadratic
array growth (P302), no loop-invariant recomputation (P303), no
cache-bypassing repeated pure fits on search paths (P304), estimator
complexities matching the checked-in ``complexity_spec.py`` (P305), and
allocation-free hot loops in the compiled substrate (P306).  A failure
here means a change regressed a hot path or altered an estimator's cost
class without recording it — run ``repro perf`` for the full report;
genuinely loop-shaped code needs a ``# repro: disable=P3xx -- why``
comment stating the performance argument, and intentional complexity
changes are recorded with ``repro perf --update-spec``.
"""

from pathlib import Path

import repro
from repro.tools.perf import perf_paths

SOURCE_ROOT = Path(repro.__file__).resolve().parent


def test_source_tree_has_no_unsuppressed_perf_violations():
    result = perf_paths([SOURCE_ROOT])
    report = "\n".join(
        f"{v.location}: {v.code} {v.message}" for v in result.unsuppressed
    )
    assert result.unsuppressed == [], f"repro perf found:\n{report}"
    assert result.n_files > 50  # the whole tree was actually scanned


def test_every_perf_suppression_carries_a_reason():
    result = perf_paths([SOURCE_ROOT])
    for violation in result.suppressed:
        assert violation.reason, (
            f"{violation.location}: suppressed {violation.code} without a "
            "reason (use '# repro: disable=CODE -- why')"
        )


def test_the_analyzer_still_sees_the_hot_code():
    # Guard against the gate passing vacuously: the loop model must
    # cover the substrate's known loops and the documented suppressions
    # must be the ones this PR negotiated with the analyzer.
    from repro.tools.flow.runner import build_flow_index
    from repro.tools.perf.loops import build_loop_model

    index = build_flow_index([SOURCE_ROOT])
    model = build_loop_model(index)

    kendall = model.functions[
        ("repro.learn.feature_selection.filters", "kendall_score")
    ]
    assert any(loop.dim == "features" for loop in kendall.loops)

    cross_val = model.functions[
        ("repro.learn.model_selection", "cross_val_score")
    ]
    assert any(loop.fit_calls for loop in cross_val.loops)

    depths = model.depth_summary()
    forest_fit = depths[
        ("repro.learn.ensemble.forest", "RandomForestClassifier.fit")
    ]
    assert forest_fit.get("estimators", 0) >= 1

    result = perf_paths([SOURCE_ROOT])
    suppressed_codes = {v.code for v in result.suppressed}
    assert "P301" in suppressed_codes  # kendall/mutual-info column loops
    assert "P304" in suppressed_codes  # per-fold fits on distinct rows


def test_checked_in_spec_matches_a_fresh_derivation():
    from repro.tools.perf.complexity import derive_complexity, load_spec
    from repro.tools.flow.runner import build_flow_index
    from repro.tools.perf.loops import build_loop_model

    spec = load_spec()
    assert spec, "complexity_spec.py is missing or empty"
    derived = derive_complexity(build_loop_model(build_flow_index([SOURCE_ROOT])))
    assert derived == spec, (
        "derived complexity drifted from complexity_spec.py; "
        "run `repro perf --update-spec` to record an intentional change"
    )
