"""Dogfood gate: the repro source tree must satisfy its own W-rules.

This enforces the wire-contract invariants documented in DESIGN.md
§7.5: derived routes and client expectations matching each other and
the checked-in ``wire_spec.py`` (W501), a complete round-trippable
error taxonomy (W502), no resource acquired without exception-path
protection (W503), nothing JSON-unsafe reaching a protocol encode
site (W504), no indefinitely blocking call reachable from a gateway
handler (W505), and a ``/metrics/summary`` surface matching the spec
(W506).  A failure here means a change moved the HTTP surface, raised
a new unmapped error kind, or leaked a resource without recording or
fixing it — run ``repro wire`` for the full report; intentional
contract changes are recorded with ``repro wire --update-spec``.
"""

from pathlib import Path

import repro
from repro.tools.wire import wire_paths

SOURCE_ROOT = Path(repro.__file__).resolve().parent


def test_source_tree_has_no_unsuppressed_wire_violations():
    result = wire_paths([SOURCE_ROOT])
    report = "\n".join(
        f"{v.location}: {v.code} {v.message}" for v in result.unsuppressed
    )
    assert result.unsuppressed == [], f"repro wire found:\n{report}"
    assert result.n_files > 50  # the whole tree was actually scanned


def test_every_wire_suppression_carries_a_reason():
    result = wire_paths([SOURCE_ROOT])
    for violation in result.suppressed:
        assert violation.reason, (
            f"{violation.location}: suppressed {violation.code} without a "
            "reason (use '# repro: disable=CODE -- why')"
        )


def test_the_analyzer_still_sees_the_serving_layer():
    # Guard against the gate passing vacuously: the wire model must
    # really derive the gateway's route table, the client's
    # expectations, and the protocol's taxonomy.
    from repro.tools.flow.runner import build_flow_index
    from repro.tools.shape.arrays import build_shape_model
    from repro.tools.wire.wiremodel import build_wire_model

    index = build_flow_index([SOURCE_ROOT])
    model = build_wire_model(index, build_shape_model(index))

    routes = model.routes()
    assert "GET /health" in routes
    assert "POST /platforms/*/models/*/predict" in routes
    predict = routes["POST /platforms/*/models/*/predict"]
    assert predict["operation"] == "batch_predict"
    assert predict["request"] == ("X",)
    assert predict["response"] == ("predictions",)
    assert set(predict["statuses"]) >= {200, 400, 413}

    entries = model.client_entries()
    assert entries["upload_dataset"]["payload"] == ("X", "name", "y")
    assert entries["get_model"]["path"] == "/platforms/*/models/*"

    # W502 stays quiet because the taxonomy really is complete, not
    # because the analyzer lost sight of the raise sites.
    assert model.taxonomies, "no ERROR_STATUS/KIND_TO_ERROR module found"
    mapped = set(model.taxonomies[0].kind_to_error)
    assert "NotFittedError" in mapped  # the PR-10 dogfood fix
    assert "ValidationError" in model.raised_kinds
    assert "DeadlineExceededError" in model.constructed_kinds


def test_checked_in_spec_matches_a_fresh_derivation():
    from repro.tools.flow.runner import build_flow_index
    from repro.tools.shape.arrays import build_shape_model
    from repro.tools.wire.spec import derive_wire_spec, load_spec
    from repro.tools.wire.spec import DEFAULT_SPEC_PATH
    from repro.tools.wire.wiremodel import build_wire_model

    spec = load_spec(DEFAULT_SPEC_PATH)
    assert spec, "wire_spec.py is missing or empty"
    assert len(spec["routes"]) >= 11  # the serving surface, Table-1 style
    assert len(spec["client"]) >= 10
    index = build_flow_index([SOURCE_ROOT])
    derived = derive_wire_spec(build_wire_model(index,
                                                build_shape_model(index)))
    assert derived == spec, (
        "derived wire contract drifted from wire_spec.py; run "
        "`repro wire --update-spec` to record an intentional change"
    )
