"""Tests for the exception hierarchy and public package exports."""

import pytest

import repro
import repro.analysis as analysis
import repro.core as core
import repro.datasets as datasets
import repro.learn as learn
import repro.platforms as platforms
from repro.exceptions import (
    JobFailedError,
    NotFittedError,
    PlatformError,
    QuotaExceededError,
    ReproError,
    ResourceNotFoundError,
    UnsupportedControlError,
    ValidationError,
)


def test_all_errors_derive_from_repro_error():
    for error in (
        NotFittedError, ValidationError, PlatformError,
        UnsupportedControlError, ResourceNotFoundError, JobFailedError,
        QuotaExceededError,
    ):
        assert issubclass(error, ReproError)


def test_validation_error_is_also_value_error():
    # Callers using plain `except ValueError` still catch our validation
    # failures.
    assert issubclass(ValidationError, ValueError)


def test_platform_errors_subclass_platform_error():
    for error in (
        UnsupportedControlError, ResourceNotFoundError, JobFailedError,
        QuotaExceededError,
    ):
        assert issubclass(error, PlatformError)


def test_version_is_exposed():
    assert repro.__version__


@pytest.mark.parametrize("module", [learn, datasets, platforms, core, analysis])
def test_all_exports_resolve(module):
    for name in module.__all__:
        assert hasattr(module, name), f"{module.__name__}.{name} missing"


def test_classifier_registry_families_partition():
    assert not (learn.LINEAR_FAMILY & learn.NONLINEAR_FAMILY)
    assert learn.LINEAR_FAMILY | learn.NONLINEAR_FAMILY == \
        set(learn.CLASSIFIER_REGISTRY)


def test_registry_entries_are_estimator_classes():
    from repro.learn.base import BaseEstimator

    for cls in learn.CLASSIFIER_REGISTRY.values():
        assert issubclass(cls, BaseEstimator)
