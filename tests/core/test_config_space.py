"""Tests for configuration-space enumeration (§3.2, Table 2)."""

import pytest

from repro.core.config_space import (
    baseline_configuration,
    count_measurements,
    enumerate_configurations,
    per_control_configurations,
)
from repro.core.controls import CLF, FEAT, PARA
from repro.exceptions import ValidationError
from repro.platforms import ABM, Amazon, BigML, Google, Microsoft, PredictionIO


class TestBaseline:
    def test_blackbox_baseline_is_empty(self):
        config = baseline_configuration(Google())
        assert config.classifier is None
        assert config.params == ()

    def test_classifier_platforms_baseline_is_default_lr(self):
        for platform in (Amazon(), PredictionIO(), BigML(), Microsoft()):
            config = baseline_configuration(platform)
            assert config.classifier == "LR"
            assert config.feature_selection is None
            option = platform.controls.classifier("LR")
            assert config.params_dict == option.default_params()


class TestEnumerate:
    def test_blackbox_yields_single_config(self):
        assert len(list(enumerate_configurations(ABM()))) == 1

    def test_amazon_single_axis_counts(self):
        # LR has params with grids 3+3+2; single-axis = 1 default + (2+2+1).
        configs = list(enumerate_configurations(Amazon(), para_grid="single_axis"))
        assert len(configs) == 6

    def test_full_grid_is_product(self):
        configs = list(enumerate_configurations(Amazon(), para_grid="full"))
        assert len(configs) == 3 * 3 * 2

    def test_default_grid_one_per_classifier(self):
        configs = list(enumerate_configurations(
            PredictionIO(), para_grid="default"
        ))
        assert len(configs) == 3  # LR, NB, DT with defaults

    def test_feat_multiplies_space(self):
        with_feat = list(enumerate_configurations(
            Microsoft(), para_grid="default", include_feat=True
        ))
        without = list(enumerate_configurations(
            Microsoft(), para_grid="default", include_feat=False
        ))
        assert len(with_feat) == len(without) * 9  # None + 8 selectors

    def test_tuned_dimensions_annotated(self):
        configs = list(enumerate_configurations(
            Microsoft(), para_grid="single_axis"
        ))
        baseline_like = [c for c in configs if not c.tuned]
        assert len(baseline_like) == 1  # exactly the baseline
        assert any(c.tuned == {CLF} for c in configs)
        assert any(c.tuned == {PARA} for c in configs)
        assert any(c.tuned == {FEAT} for c in configs)
        assert any(c.tuned == {FEAT, CLF, PARA} for c in configs)

    def test_unknown_para_grid_rejected(self):
        with pytest.raises(ValidationError):
            list(enumerate_configurations(Amazon(), para_grid="adaptive"))


class TestPerControl:
    def test_feat_sweep_only_on_microsoft_like(self):
        assert per_control_configurations(Amazon(), FEAT) == []
        assert per_control_configurations(BigML(), FEAT) == []
        microsoft = per_control_configurations(Microsoft(), FEAT)
        assert len(microsoft) == 8
        assert all(c.classifier == "LR" for c in microsoft)
        assert all(c.tuned == {FEAT} for c in microsoft)

    def test_clf_sweep_holds_defaults(self):
        configs = per_control_configurations(BigML(), CLF)
        assert [c.classifier for c in configs] == ["LR", "DT", "BAG", "RF"]
        for config in configs:
            option = BigML().controls.classifier(config.classifier)
            assert config.params_dict == option.default_params()

    def test_clf_sweep_empty_for_single_classifier_platform(self):
        assert per_control_configurations(Amazon(), CLF) == []

    def test_para_sweep_stays_on_baseline_classifier(self):
        configs = per_control_configurations(Amazon(), PARA)
        assert all(c.classifier == "LR" for c in configs)
        assert len(configs) == 6  # single-axis grid of Amazon LR

    def test_blackbox_has_no_sweeps(self):
        for dimension in (FEAT, CLF, PARA):
            assert per_control_configurations(Google(), dimension) == []

    def test_unknown_dimension_rejected(self):
        with pytest.raises(ValidationError):
            per_control_configurations(Amazon(), "IMPL")


class TestCounts:
    def test_table_2_row_shape(self):
        row = count_measurements(Microsoft(), n_datasets=119)
        assert row["n_feature_selectors"] == 8
        assert row["n_classifiers"] == 7
        assert row["n_parameters"] == 23
        assert row["total_measurements"] == row["configs_per_dataset"] * 119

    def test_counts_scale_with_datasets(self):
        small = count_measurements(Amazon(), n_datasets=10)
        large = count_measurements(Amazon(), n_datasets=100)
        assert large["total_measurements"] == 10 * small["total_measurements"]
