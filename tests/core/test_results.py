"""Tests for result records and the result store."""

import numpy as np
import pytest

from repro.core.controls import Configuration
from repro.core.results import ExperimentResult, ResultStore
from repro.learn.metrics import MetricSummary


def make_result(platform="p", dataset="d", f=0.5, status="ok", classifier="LR",
                params=None, feat=None, tuned=()):
    return ExperimentResult(
        platform=platform,
        dataset=dataset,
        configuration=Configuration.make(
            classifier=classifier, params=params, feature_selection=feat,
            tuned=tuned,
        ),
        metrics=MetricSummary(f_score=f, accuracy=f, precision=f, recall=f),
        status=status,
    )


def test_store_collects_and_counts():
    store = ResultStore()
    store.add(make_result())
    store.extend([make_result(dataset="e"), make_result(dataset="f")])
    assert len(store) == 3
    assert store.datasets() == ["d", "e", "f"]


def test_ok_filters_failures():
    store = ResultStore([make_result(), make_result(status="failed", f=0.0)])
    assert len(store.ok()) == 1


def test_platform_and_dataset_queries():
    store = ResultStore([
        make_result(platform="a", dataset="x"),
        make_result(platform="b", dataset="x"),
        make_result(platform="a", dataset="y"),
    ])
    assert len(store.for_platform("a")) == 2
    assert len(store.for_dataset("x")) == 2
    assert store.platforms() == ["a", "b"]


def test_best_per_dataset_picks_max():
    store = ResultStore([
        make_result(dataset="x", f=0.3, params={"C": 1}),
        make_result(dataset="x", f=0.8, params={"C": 2}),
        make_result(dataset="x", f=0.5, params={"C": 3}),
        make_result(dataset="y", f=0.4),
    ])
    best = store.best_per_dataset()
    assert best["x"].f_score == 0.8
    assert best["y"].f_score == 0.4


def test_best_per_dataset_ignores_failures():
    store = ResultStore([
        make_result(dataset="x", f=0.2),
        make_result(dataset="x", f=0.9, status="failed"),
    ])
    assert store.best_per_dataset()["x"].f_score == 0.2


def test_mean_score_is_average_of_per_dataset_best():
    store = ResultStore([
        make_result(dataset="x", f=0.4, params={"C": 1}),
        make_result(dataset="x", f=0.6, params={"C": 2}),
        make_result(dataset="y", f=1.0),
    ])
    assert store.mean_score() == pytest.approx(0.8)  # mean(0.6, 1.0)


def test_mean_score_empty_store_is_nan():
    assert np.isnan(ResultStore().mean_score())


def test_scores_by_dataset_groups_all_ok():
    store = ResultStore([
        make_result(dataset="x", f=0.1, params={"C": 1}),
        make_result(dataset="x", f=0.2, params={"C": 2}),
        make_result(dataset="x", f=0.9, status="failed", params={"C": 3}),
    ])
    grouped = store.scores_by_dataset()
    assert sorted(grouped["x"]) == [0.1, 0.2]


def test_json_roundtrip(tmp_path):
    store = ResultStore([
        make_result(dataset="x", f=0.42, params={"C": 1.0}, feat="filter_chi",
                    tuned={"FEAT", "PARA"}),
        make_result(dataset="y", status="failed", f=0.0),
    ])
    path = tmp_path / "results.json"
    store.save(path)
    loaded = ResultStore.load(path)
    assert len(loaded) == 2
    original = list(store)[0]
    restored = list(loaded)[0]
    assert restored.platform == original.platform
    assert restored.configuration == original.configuration
    assert restored.metrics == original.metrics
    assert list(loaded)[1].status == "failed"


def test_where_predicate():
    store = ResultStore([
        make_result(classifier="LR"),
        make_result(classifier="DT"),
    ])
    trees = store.where(lambda r: r.configuration.classifier == "DT")
    assert len(trees) == 1


def test_save_is_atomic_and_leaves_no_tmp(tmp_path):
    path = tmp_path / "results.json"
    ResultStore([make_result()]).save(path)
    assert not path.with_name(path.name + ".tmp").exists()
    assert len(ResultStore.load(path)) == 1


def test_interrupted_save_keeps_previous_checkpoint(tmp_path, monkeypatch):
    """A writer killed mid-save must never tear an existing checkpoint."""
    import repro.core.results as results_module

    path = tmp_path / "checkpoint.json"
    ResultStore([make_result(dataset="before")]).save(path)
    good_bytes = path.read_bytes()

    def crash(src, dst):
        raise OSError("killed before the atomic rename")

    # The kill window: the new payload is on disk only as *.tmp when the
    # process dies; the destination must still hold the old checkpoint.
    monkeypatch.setattr(results_module.os, "replace", crash)
    with pytest.raises(OSError, match="atomic rename"):
        ResultStore([make_result(dataset="after")] * 3).save(path)
    monkeypatch.undo()

    assert path.read_bytes() == good_bytes
    recovered = ResultStore.load(path)
    assert recovered.datasets() == ["before"]
    # And a retry after the "restart" completes normally.
    ResultStore([make_result(dataset="after")] * 3).save(path)
    assert len(ResultStore.load(path)) == 3
