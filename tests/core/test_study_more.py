"""Additional study-orchestration behaviours."""

import pytest

from repro.core import MLaaSStudy, StudyScale
from repro.platforms import Google, LocalLibrary


def test_study_accepts_platform_instances():
    google = Google(random_state=9)
    study = MLaaSStudy(
        scale=StudyScale.tiny(),
        platforms=[google, LocalLibrary],
        random_state=3,
    )
    # The instance is used as-is; the class is instantiated with the
    # study's seed.
    assert study.platform("google") is google
    assert study.platform("local").random_state == 3


def test_corpus_is_cached():
    study = MLaaSStudy(scale=StudyScale.tiny())
    assert study.corpus is study.corpus


def test_different_seeds_select_different_corpora():
    a = MLaaSStudy(scale=StudyScale(max_datasets=6, size_cap=100,
                                    feature_cap=5), random_state=1)
    b = MLaaSStudy(scale=StudyScale(max_datasets=6, size_cap=100,
                                    feature_cap=5), random_state=2)
    assert {d.name for d in a.corpus} != {d.name for d in b.corpus}


def test_baseline_store_statuses_ok():
    study = MLaaSStudy(scale=StudyScale.tiny(), random_state=0)
    store = study.run_baseline()
    assert all(result.ok for result in store)


def test_per_control_rejects_unknown_dimension():
    study = MLaaSStudy(scale=StudyScale.tiny())
    with pytest.raises(Exception):
        study.run_per_control("IMPL")
