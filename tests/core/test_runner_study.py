"""Tests for the experiment runner and study orchestration."""

import numpy as np
import pytest

from repro.core import (
    Configuration,
    ExperimentRunner,
    MLaaSStudy,
    StudyScale,
)
from repro.datasets import load_dataset
from repro.platforms import Amazon, Google, LocalLibrary, Microsoft


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("synthetic/linear", size_cap=250)


@pytest.fixture(scope="module")
def circle():
    return load_dataset("synthetic/circle", size_cap=250)


class TestRunner:
    def test_run_one_success(self, dataset):
        runner = ExperimentRunner()
        result = runner.run_one(Google(), dataset, Configuration.make())
        assert result.ok
        assert result.platform == "google"
        assert result.dataset == dataset.name
        assert 0.0 <= result.f_score <= 1.0

    def test_split_is_cached_and_shared(self, dataset):
        runner = ExperimentRunner()
        first = runner.split(dataset)
        second = runner.split(dataset)
        assert first is second

    def test_same_split_across_platforms(self, dataset):
        # Paper: same train and held-out test set on every platform.
        runner = ExperimentRunner()
        split = runner.split(dataset)
        runner.run_one(Google(), dataset, Configuration.make())
        assert runner.split(dataset) is split

    def test_failed_configuration_recorded(self, dataset):
        runner = ExperimentRunner()
        result = runner.run_one(
            LocalLibrary(),
            dataset,
            Configuration.make(classifier="KNN", params={"n_neighbors": -3}),
        )
        assert not result.ok
        assert result.metrics.f_score == 0.0
        assert result.failure_reason

    def test_unsupported_control_recorded_as_failure(self, dataset):
        runner = ExperimentRunner()
        result = runner.run_one(
            Google(), dataset, Configuration.make(classifier="LR")
        )
        assert not result.ok
        assert "black-box" in result.failure_reason

    def test_sweep_covers_grid(self, dataset, circle):
        runner = ExperimentRunner()
        configs = [
            Configuration.make(classifier="LR", params={"maxIter": 10}),
            Configuration.make(classifier="LR", params={"maxIter": 1000}),
        ]
        store = runner.sweep(Amazon(), [dataset, circle], configs)
        assert len(store) == 4

    def test_resources_freed_after_run(self, dataset):
        runner = ExperimentRunner()
        platform = Google()
        runner.run_one(platform, dataset, Configuration.make())
        assert platform.list_datasets() == []

    def test_predictions_for_returns_test_labels(self, dataset):
        runner = ExperimentRunner()
        y_test, predictions = runner.predictions_for(
            Google(), dataset, Configuration.make()
        )
        assert len(y_test) == len(predictions)
        split = runner.split(dataset)
        assert np.array_equal(y_test, split.y_test)


class TestStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return MLaaSStudy(scale=StudyScale.tiny(), random_state=0)

    def test_corpus_respects_scale(self, study):
        assert len(study.corpus) == 4
        assert all(d.X.shape[0] <= 150 for d in study.corpus)

    def test_baseline_one_result_per_platform_dataset(self, study):
        store = study.run_baseline()
        assert len(store) == 7 * 4
        for platform in store.platforms():
            assert len(store.for_platform(platform)) == 4

    def test_per_control_skips_unsupporting_platforms(self, study):
        feat_store = study.run_per_control("FEAT")
        assert set(feat_store.platforms()) == {"microsoft", "local"}
        clf_store = study.run_per_control("CLF")
        assert "amazon" not in clf_store.platforms()
        assert "bigml" in clf_store.platforms()

    def test_platform_lookup(self, study):
        assert study.platform("google").name == "google"
        with pytest.raises(KeyError):
            study.platform("watson")

    def test_scale_presets(self):
        assert StudyScale.tiny().max_datasets == 4
        assert StudyScale.paper().max_datasets is None
        assert StudyScale.paper().para_grid == "full"

    def test_optimized_platform_filter(self, study):
        store = study.run_optimized(platforms=["amazon"])
        assert store.platforms() == ["amazon"]
