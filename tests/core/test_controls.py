"""Tests for control dimensions and Configuration."""

from repro.core.controls import CLF, CONTROL_DIMENSIONS, FEAT, PARA, Configuration


def test_dimension_constants():
    assert CONTROL_DIMENSIONS == ("FEAT", "CLF", "PARA")
    assert FEAT == "FEAT" and CLF == "CLF" and PARA == "PARA"


def test_make_sorts_params():
    config = Configuration.make(
        classifier="LR", params={"b": 2, "a": 1}
    )
    assert config.params == (("a", 1), ("b", 2))
    assert config.params_dict == {"a": 1, "b": 2}


def test_configuration_is_hashable_and_comparable():
    a = Configuration.make(classifier="LR", params={"C": 1.0})
    b = Configuration.make(classifier="LR", params={"C": 1.0})
    c = Configuration.make(classifier="DT")
    assert a == b
    assert hash(a) == hash(b)
    assert a != c
    assert len({a, b, c}) == 2


def test_empty_configuration_for_blackbox():
    config = Configuration.make()
    assert config.classifier is None
    assert config.params == ()
    assert config.feature_selection is None
    assert config.label() == "auto"


def test_label_rendering():
    config = Configuration.make(
        classifier="RF",
        params={"n_trees": 8},
        feature_selection="filter_chi",
    )
    label = config.label()
    assert "RF" in label
    assert "feat=filter_chi" in label
    assert "n_trees=8" in label


def test_tuned_dimensions_stored_as_frozenset():
    config = Configuration.make(classifier="DT", tuned={CLF, PARA})
    assert config.tuned == frozenset({"CLF", "PARA"})
