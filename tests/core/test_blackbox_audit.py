"""Tests for the end-to-end §6 black-box audit orchestration."""

import pytest

from repro.core import MLaaSStudy, StudyScale


@pytest.fixture(scope="module")
def audit():
    study = MLaaSStudy(
        scale=StudyScale(max_datasets=4, size_cap=180, feature_cap=6,
                         para_grid="default"),
        random_state=0,
    )
    return study.run_blackbox_audit(
        max_configs_per_classifier=2, qualification_threshold=0.9
    ), study


def test_audit_covers_both_blackboxes(audit):
    result, _ = audit
    assert set(result["reports"]) == {"abm", "google"}
    assert set(result["comparisons"]) == {"abm", "google"}


def test_predictors_trained_per_dataset(audit):
    result, study = audit
    assert set(result["predictors"]) == {d.name for d in study.corpus}


def test_reports_only_qualified_datasets(audit):
    result, _ = audit
    qualified = {
        name for name, p in result["predictors"].items() if p.qualified
    }
    for report in result["reports"].values():
        assert set(report.choices) <= qualified


def test_comparisons_cover_corpus(audit):
    result, study = audit
    for comparison in result["comparisons"].values():
        assert comparison.n_datasets == len(study.corpus)
        assert 0 <= comparison.n_naive_wins <= comparison.n_datasets
