"""Edge-case runner behaviours: quotas, rate limits, metadata."""

import numpy as np
import pytest

from repro.core import Configuration, ExperimentRunner
from repro.datasets import load_dataset
from repro.platforms import Google


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("synthetic/linear", size_cap=150)


def test_rate_limited_platform_records_failures(dataset):
    # Five API calls per measurement (upload/create/poll/predict/delete —
    # status polls are metered like every other request): a quota of 5
    # lets the first measurement through and fails the second cleanly.
    class Clock:
        def __call__(self):
            return 0.0

    platform = Google(random_state=0, rate_limit_per_minute=5, clock=Clock())
    runner = ExperimentRunner(split_seed=0)
    first = runner.run_one(platform, dataset, Configuration.make())
    second = runner.run_one(platform, dataset, Configuration.make())
    assert first.ok
    assert not second.ok
    assert "rate limit" in second.failure_reason


def test_upload_quota_records_failure(dataset):
    platform = Google(random_state=0)
    platform.max_upload_samples = 10
    runner = ExperimentRunner(split_seed=0)
    result = runner.run_one(platform, dataset, Configuration.make())
    assert not result.ok
    assert "rejects uploads" in result.failure_reason


def test_result_metadata_carries_job_accounting(dataset):
    runner = ExperimentRunner(split_seed=0)
    result = runner.run_one(Google(random_state=0), dataset, Configuration.make())
    assert result.metadata["training_seconds"] >= 0.0
    assert result.metadata["n_predictions"] == len(runner.split(dataset).y_test)
    assert result.metadata["n_training_samples"] == len(runner.split(dataset).y_train)
    assert isinstance(result.metadata["job_seed"], int)


def test_identical_measurements_are_reproducible(dataset):
    runner = ExperimentRunner(split_seed=0)
    a = runner.run_one(Google(random_state=5), dataset, Configuration.make())
    b = runner.run_one(Google(random_state=5), dataset, Configuration.make())
    assert a.metrics == b.metrics
    assert a.metadata["job_seed"] == b.metadata["job_seed"]
