"""Tests for resumable sweeps and checkpointing."""

import numpy as np
import pytest

from repro.core import Configuration, ExperimentRunner
from repro.core.results import ResultStore
from repro.datasets import load_dataset
from repro.platforms import Amazon


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("synthetic/linear", size_cap=150)


@pytest.fixture()
def configurations():
    return [
        Configuration.make(classifier="LR", params={"maxIter": 10}),
        Configuration.make(classifier="LR", params={"maxIter": 1000}),
        Configuration.make(classifier="LR", params={"regParam": 1.0}),
    ]


def test_resume_skips_completed_measurements(dataset, configurations):
    runner = ExperimentRunner(split_seed=0)
    partial = runner.sweep(Amazon(random_state=0), [dataset], configurations[:2])
    assert len(partial) == 2

    class CountingAmazon(Amazon):
        trained = 0

        def _assemble(self, handle, X, y):
            CountingAmazon.trained += 1
            return super()._assemble(handle, X, y)

    full = runner.sweep(
        CountingAmazon(random_state=0), [dataset], configurations,
        resume_from=partial,
    )
    assert len(full) == 3
    assert CountingAmazon.trained == 1  # only the missing config ran


def test_resume_ignores_other_platforms(dataset, configurations):
    runner = ExperimentRunner(split_seed=0)
    partial = runner.sweep(Amazon(random_state=0), [dataset], configurations[:1])
    # Pretend the partial store came from a different platform.
    foreign = ResultStore()
    for result in partial:
        foreign.add(type(result)(
            platform="someone-else",
            dataset=result.dataset,
            configuration=result.configuration,
            metrics=result.metrics,
        ))
    full = runner.sweep(
        Amazon(random_state=0), [dataset], configurations[:1],
        resume_from=foreign,
    )
    # Foreign results are not ours; the measurement re-runs.
    assert len(full.for_platform("amazon")) == 1


def test_checkpoint_written(tmp_path, dataset, configurations):
    runner = ExperimentRunner(split_seed=0)
    path = tmp_path / "checkpoint.json"
    store = runner.sweep(
        Amazon(random_state=0), [dataset], configurations,
        checkpoint_path=path, checkpoint_every=1,
    )
    assert path.exists()
    loaded = ResultStore.load(path)
    assert len(loaded) == len(store) == 3


def test_resume_from_checkpoint_roundtrip(tmp_path, dataset, configurations):
    runner = ExperimentRunner(split_seed=0)
    path = tmp_path / "checkpoint.json"
    runner.sweep(
        Amazon(random_state=0), [dataset], configurations[:2],
        checkpoint_path=path,
    )
    resumed = runner.sweep(
        Amazon(random_state=0), [dataset], configurations,
        resume_from=ResultStore.load(path),
    )
    assert len(resumed) == 3
    scores = [r.f_score for r in resumed]
    assert all(0.0 <= s <= 1.0 for s in scores)


def test_interrupted_sweep_resumes_to_identical_store(
        tmp_path, dataset, configurations):
    """An interrupted sweep, resumed from its checkpoint, matches an
    uninterrupted run record for record."""
    uninterrupted = ExperimentRunner(split_seed=0).sweep(
        Amazon(random_state=0), [dataset], configurations,
    )

    class CrashingAmazon(Amazon):
        """Dies with a non-platform error on the third measurement."""

        uploads = 0

        def upload_dataset(self, X, y, name="dataset"):
            type(self).uploads += 1
            if type(self).uploads == 3:
                raise RuntimeError("simulated process crash")
            return super().upload_dataset(X, y, name=name)

    path = tmp_path / "interrupted.json"
    with pytest.raises(RuntimeError, match="simulated process crash"):
        ExperimentRunner(split_seed=0).sweep(
            CrashingAmazon(random_state=0), [dataset], configurations,
            checkpoint_path=path, checkpoint_every=1,
        )
    partial = ResultStore.load(path)
    assert len(partial) == 2  # the first two measurements survived

    resumed = ExperimentRunner(split_seed=0).sweep(
        Amazon(random_state=0), [dataset], configurations,
        resume_from=partial, checkpoint_path=path, checkpoint_every=1,
    )
    assert [r.to_dict() for r in resumed] == \
           [r.to_dict() for r in uninterrupted]
    # The final checkpoint also round-trips to the identical store.
    assert [r.to_dict() for r in ResultStore.load(path)] == \
           [r.to_dict() for r in uninterrupted]
