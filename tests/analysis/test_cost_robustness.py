"""Tests for the §8 extension analyses: cost accounting and robustness."""

import numpy as np
import pytest

from repro.analysis.cost import (
    PRICING,
    PricingModel,
    study_cost_report,
)
from repro.analysis.robustness import (
    degradation_slope,
    label_noise_curve,
)
from repro.core import Configuration, ExperimentRunner
from repro.datasets import load_dataset
from repro.platforms import ALL_PLATFORMS, Google, LocalLibrary


class TestPricing:
    def test_campaign_cost_components(self):
        pricing = PricingModel(
            training_usd_per_hour=2.0,
            prediction_usd_per_1k=0.5,
            flat_usd_per_month=10.0,
        )
        cost = pricing.campaign_cost(training_hours=3.0, n_predictions=4000,
                                     months=2.0)
        assert cost == pytest.approx(2.0 * 3 + 0.5 * 4 + 10.0 * 2)

    def test_every_platform_has_a_price_sheet(self):
        for cls in ALL_PLATFORMS:
            assert cls.name in PRICING

    def test_local_library_is_free(self):
        assert PRICING["local"].campaign_cost(10.0, 1_000_000) == 0.0


class TestStudyCostReport:
    @pytest.fixture(scope="class")
    def store(self):
        runner = ExperimentRunner(split_seed=0)
        dataset = load_dataset("synthetic/linear", size_cap=200)
        from repro.core.results import ResultStore

        store = ResultStore()
        for platform_cls in (Google, LocalLibrary):
            store.add(runner.run_one(
                platform_cls(random_state=0), dataset, Configuration.make()
            ))
        return store

    def test_training_time_recorded(self, store):
        for result in store:
            assert result.metadata["training_seconds"] > 0.0
            assert result.metadata["n_predictions"] > 0

    def test_report_covers_all_platforms(self, store):
        reports = {r.platform: r for r in study_cost_report(store)}
        assert set(reports) == {"google", "local"}
        assert reports["google"].n_measurements == 1
        assert reports["google"].training_hours > 0.0
        assert reports["local"].estimated_usd == 0.0
        assert reports["google"].estimated_usd > 0.0

    def test_usd_per_measurement(self, store):
        report = next(
            r for r in study_cost_report(store) if r.platform == "google"
        )
        assert report.usd_per_measurement() == pytest.approx(
            report.estimated_usd / report.n_measurements
        )


class TestRobustness:
    @pytest.fixture(scope="class")
    def dataset(self):
        return load_dataset("synthetic/linear", size_cap=300)

    def test_noise_curve_shape(self, dataset):
        curve = label_noise_curve(
            Google(random_state=0), dataset,
            noise_rates=(0.0, 0.2, 0.4), random_state=0,
        )
        assert curve.noise_rates == [0.0, 0.2, 0.4]
        assert len(curve.f_scores) == 3
        assert all(0.0 <= f <= 1.0 for f in curve.f_scores)

    def test_noise_degrades_performance(self, dataset):
        curve = label_noise_curve(
            Google(random_state=0), dataset,
            noise_rates=(0.0, 0.45), random_state=0,
        )
        # Near-random labels must hurt: clean >= heavily-noisy - slack.
        assert curve.f_scores[0] >= curve.f_scores[-1] - 0.05
        assert curve.degradation() >= -0.05

    def test_degradation_slope_sign(self, dataset):
        curve = label_noise_curve(
            LocalLibrary(random_state=0), dataset,
            configuration=Configuration.make(classifier="DT"),
            noise_rates=(0.0, 0.15, 0.3, 0.45), random_state=0,
        )
        slope = degradation_slope(curve)
        assert np.isfinite(slope)
        assert slope < 0.1  # flat at best, typically negative

    def test_slope_needs_two_points(self, dataset):
        curve = label_noise_curve(
            Google(random_state=0), dataset, noise_rates=(0.0,),
        )
        assert np.isnan(degradation_slope(curve))

    def test_test_labels_stay_clean(self, dataset):
        # Zero-noise curve must equal a plain run: noise only touches train.
        runner = ExperimentRunner(split_seed=7)
        plain = runner.run_one(
            Google(random_state=0), dataset, Configuration.make()
        )
        curve = label_noise_curve(
            Google(random_state=0), dataset, noise_rates=(0.0,),
            split_seed=7,
        )
        assert curve.f_scores[0] == pytest.approx(plain.f_score, abs=1e-9)
