"""Tests for classifier-family inference (§6.2) and the naive strategy (§6.3)."""

import numpy as np
import pytest

from repro.analysis.family import (
    FamilyObservation,
    collect_family_observations,
    family_of,
    infer_blackbox_families,
    train_family_predictors,
)
from repro.analysis.naive import compare_with_blackbox, naive_strategy
from repro.core.runner import ExperimentRunner
from repro.datasets import load_dataset
from repro.exceptions import ValidationError
from repro.platforms import ABM, Google, LocalLibrary


@pytest.fixture(scope="module")
def probes():
    return [
        load_dataset("synthetic/circle", size_cap=300),
        load_dataset("synthetic/linear", size_cap=300),
    ]


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(split_seed=7)


@pytest.fixture(scope="module")
def observations(runner, probes):
    return collect_family_observations(
        runner, [LocalLibrary(random_state=0)], probes,
        max_configs_per_classifier=4,
    )


def test_family_of_mapping():
    assert family_of("LR") == "linear"
    assert family_of("SVM") == "linear"
    assert family_of("RF") == "nonlinear"
    assert family_of("MLP") == "nonlinear"
    with pytest.raises(ValidationError):
        family_of("XGB")


def test_observations_cover_both_families(observations, probes):
    for dataset in probes:
        families = {obs.family for obs in observations[dataset.name]}
        assert families == {"linear", "nonlinear"}


def test_observation_features_include_metrics_and_labels(observations, probes):
    sample = observations[probes[0].name][0]
    assert isinstance(sample, FamilyObservation)
    n_test = len(ExperimentRunner(split_seed=7).split(probes[0]).y_test)
    assert sample.features.shape == (4 + n_test,)


def test_predictor_validates_well_on_divergent_dataset(observations):
    predictors = train_family_predictors(observations, random_state=0)
    # CIRCLE strongly separates linear from non-linear classifiers; the
    # paper's qualification bar is F > 0.95 and not every dataset clears
    # it (64 of 119 did) — but CIRCLE's meta-classifier must come close
    # and generalize to its held-out test experiments.
    circle = predictors["synthetic/circle"]
    assert circle.validation_f_score > 0.9
    assert circle.test_f_score > 0.8


def test_qualification_uses_paper_threshold():
    from repro.analysis.family import FamilyPredictor

    assert FamilyPredictor("d", validation_f_score=0.96).qualified
    assert not FamilyPredictor("d", validation_f_score=0.95).qualified


def test_blackbox_inference_on_probes(runner, probes, observations):
    predictors = train_family_predictors(observations, random_state=0)
    report = infer_blackbox_families(
        runner, Google(random_state=0), probes, predictors
    )
    # Google picks nonlinear on CIRCLE (Fig 10a).
    if "synthetic/circle" in report.choices:
        assert report.choices["synthetic/circle"] == "nonlinear"
    assert report.n_linear + report.n_nonlinear == len(report.choices)


def test_untrained_predictor_raises(observations):
    predictors = train_family_predictors(
        {"empty": []}, random_state=0
    )
    with pytest.raises(ValidationError, match="untrained"):
        predictors["empty"].predict(np.array([0, 1]), np.array([0, 1]))


class TestNaiveStrategy:
    def test_picks_dt_on_circle(self, runner, probes):
        choice = naive_strategy(runner, probes[0], random_state=0)
        assert choice.chosen_family == "nonlinear"
        assert choice.f_score == max(choice.lr_f_score, choice.dt_f_score)

    def test_picks_lr_on_noisy_linear(self, runner, probes):
        choice = naive_strategy(runner, probes[1], random_state=0)
        assert choice.chosen_family == "linear"

    def test_comparison_counts_wins(self, runner, probes):
        comparison = compare_with_blackbox(
            runner, ABM(random_state=0), probes,
            blackbox_families={
                "synthetic/circle": "nonlinear",
                "synthetic/linear": "linear",
            },
            random_state=0,
        )
        assert comparison.n_datasets == 2
        assert comparison.n_naive_wins == len(comparison.win_margins)
        if comparison.n_naive_wins:
            assert comparison.mean_win_margin() > 0.0
            for key in comparison.breakdown:
                assert key[0] in ("linear", "nonlinear")
                assert key[1] in ("linear", "nonlinear")
        assert 0.0 <= comparison.win_fraction() <= 1.0
