"""Tests for the per-domain breakdown analysis."""

import pytest

from repro.analysis.domains import (
    domain_breakdown,
    domain_family_preference,
)
from repro.core.controls import Configuration
from repro.core.results import ExperimentResult, ResultStore
from repro.learn.metrics import MetricSummary


def result(platform, dataset, f, classifier="LR", params=None):
    return ExperimentResult(
        platform=platform,
        dataset=dataset,
        configuration=Configuration.make(classifier=classifier, params=params),
        metrics=MetricSummary(f, f, f, f),
    )


@pytest.fixture()
def store():
    return ResultStore([
        # synthetic/circle: DT (nonlinear) wins.
        result("p", "synthetic/circle", 0.5, "LR"),
        result("p", "synthetic/circle", 0.9, "DT"),
        # synthetic/linear: LR wins.
        result("p", "synthetic/linear", 0.8, "LR"),
        result("p", "synthetic/linear", 0.6, "DT"),
        # unknown dataset -> "external" domain.
        result("p", "my/own-data", 0.7, "LR"),
    ])


def test_domain_breakdown_groups_by_registry_domain(store):
    slices = {(s.domain, s.platform): s for s in domain_breakdown(store)}
    synthetic = slices[("synthetic", "p")]
    assert synthetic.n_datasets == 2
    assert synthetic.mean_f_score == pytest.approx((0.9 + 0.8) / 2)
    assert ("external", "p") in slices


def test_family_preference_counts_winners(store):
    preferences = domain_family_preference(store)
    assert preferences["synthetic"]["linear"] == pytest.approx(0.5)
    assert preferences["synthetic"]["nonlinear"] == pytest.approx(0.5)
    assert preferences["external"]["linear"] == 1.0


def test_blackbox_results_ignored_for_family():
    store = ResultStore([
        ExperimentResult(
            platform="google", dataset="synthetic/circle",
            configuration=Configuration.make(),  # no classifier attribution
            metrics=MetricSummary(0.99, 0.99, 0.99, 0.99),
        ),
        result("p", "synthetic/circle", 0.5, "LR"),
    ])
    preferences = domain_family_preference(store)
    # Only the attributable LR result counts.
    assert preferences["synthetic"]["linear"] == 1.0


def test_empty_store():
    assert domain_breakdown(ResultStore()) == []
    assert domain_family_preference(ResultStore()) == {}
