"""Tests for aggregation (Fig 4/5, Tables 3/4) and variation (Fig 6/7)."""

import numpy as np
import pytest

from repro.analysis.aggregate import (
    classifier_ranking,
    per_control_improvement,
    platform_summary,
)
from repro.analysis.variation import per_control_variation, performance_variation
from repro.core.controls import CLF, FEAT, PARA, Configuration
from repro.core.results import ExperimentResult, ResultStore
from repro.learn.metrics import MetricSummary


def result(platform, dataset, f, classifier="LR", params=None, feat=None,
           tuned=(), status="ok"):
    return ExperimentResult(
        platform=platform,
        dataset=dataset,
        configuration=Configuration.make(
            classifier=classifier, params=params,
            feature_selection=feat, tuned=tuned,
        ),
        metrics=MetricSummary(f_score=f, accuracy=f, precision=f, recall=f),
        status=status,
    )


class TestPlatformSummary:
    def test_summary_sorted_by_friedman(self):
        store = ResultStore([
            result("good", "d1", 0.9), result("good", "d2", 0.8),
            result("bad", "d1", 0.4), result("bad", "d2", 0.3),
        ])
        summaries = platform_summary(store)
        assert [s.platform for s in summaries] == ["good", "bad"]
        assert summaries[0].avg["f_score"] == pytest.approx(0.85)
        assert summaries[0].avg_friedman < summaries[1].avg_friedman

    def test_summary_uses_best_per_dataset(self):
        store = ResultStore([
            result("p", "d1", 0.2, params={"C": 1}),
            result("p", "d1", 0.9, params={"C": 2}),
            result("q", "d1", 0.5),
        ])
        summaries = {s.platform: s for s in platform_summary(store)}
        assert summaries["p"].avg["f_score"] == pytest.approx(0.9)

    def test_row_rendering(self):
        store = ResultStore([
            result("p", "d1", 0.5), result("q", "d1", 0.6),
        ])
        row = platform_summary(store)[0].as_row()
        assert "0.600" in row


class TestPerControlImprovement:
    def test_positive_improvement(self):
        baseline = ResultStore([result("p", "d1", 0.5), result("p", "d2", 0.5)])
        tuned = ResultStore([
            result("p", "d1", 0.6, tuned={CLF}),
            result("p", "d2", 0.7, tuned={CLF}),
        ])
        improvement = per_control_improvement(baseline, tuned, "p")
        assert improvement == pytest.approx(100 * (0.65 - 0.5) / 0.5)

    def test_no_data_gives_nan(self):
        baseline = ResultStore([result("p", "d1", 0.5)])
        assert np.isnan(per_control_improvement(baseline, ResultStore(), "p"))


class TestClassifierRanking:
    def build_store(self):
        return ResultStore([
            # Dataset d1: BST best with tuned params, LR best at defaults.
            result("p", "d1", 0.7, classifier="LR"),
            result("p", "d1", 0.5, classifier="BST"),
            result("p", "d1", 0.9, classifier="BST",
                   params={"lr": 2}, tuned={PARA}),
            # Dataset d2: DT always best.
            result("p", "d2", 0.4, classifier="LR"),
            result("p", "d2", 0.8, classifier="DT"),
        ])

    def test_default_ranking_ignores_tuned_params(self):
        ranking = dict(classifier_ranking(self.build_store(), "p", optimized_params=False))
        assert ranking["LR"] == pytest.approx(50.0)
        assert ranking["DT"] == pytest.approx(50.0)
        assert "BST" not in ranking

    def test_optimized_ranking_uses_best_params(self):
        ranking = dict(classifier_ranking(self.build_store(), "p", optimized_params=True))
        assert ranking["BST"] == pytest.approx(50.0)
        assert ranking["DT"] == pytest.approx(50.0)

    def test_top_limit(self):
        ranking = classifier_ranking(self.build_store(), "p", True, top=1)
        assert len(ranking) == 1

    def test_empty_platform(self):
        assert classifier_ranking(ResultStore(), "p", True) == []


class TestVariation:
    def build_store(self):
        return ResultStore([
            # Config A averages 0.5, config B averages 0.9 across datasets.
            result("p", "d1", 0.4, params={"C": 1}),
            result("p", "d2", 0.6, params={"C": 1}),
            result("p", "d1", 0.8, params={"C": 2}),
            result("p", "d2", 1.0, params={"C": 2}),
        ])

    def test_spread_over_configuration_averages(self):
        summary = performance_variation(self.build_store(), "p")
        assert summary.minimum == pytest.approx(0.5)
        assert summary.maximum == pytest.approx(0.9)
        assert summary.spread == pytest.approx(0.4)
        assert summary.n_configurations == 2

    def test_missing_platform_gives_nan(self):
        summary = performance_variation(ResultStore(), "p")
        assert np.isnan(summary.spread)

    def test_failures_excluded(self):
        store = self.build_store()
        store.add(result("p", "d1", 0.0, params={"C": 3}, status="failed"))
        summary = performance_variation(store, "p")
        assert summary.n_configurations == 2

    def test_per_control_shares(self):
        overall = self.build_store()
        clf_only = ResultStore([
            result("p", "d1", 0.5, classifier="LR", tuned={CLF}),
            result("p", "d1", 0.7, classifier="DT", tuned={CLF}),
        ])
        shares = per_control_variation({CLF: clf_only}, overall, "p")
        assert shares[CLF] == pytest.approx(0.2 / 0.4)
        assert np.isnan(shares[FEAT])
        assert np.isnan(shares[PARA])

    def test_share_capped_at_one(self):
        overall = ResultStore([
            result("p", "d1", 0.5, params={"C": 1}),
            result("p", "d1", 0.6, params={"C": 2}),
        ])
        wild = ResultStore([
            result("p", "d1", 0.1, classifier="A", tuned={CLF}),
            result("p", "d1", 0.9, classifier="B", tuned={CLF}),
        ])
        shares = per_control_variation({CLF: wild}, overall, "p")
        assert shares[CLF] == 1.0
