"""Tests for Friedman ranking and standard error."""

import numpy as np
import pytest

from repro.analysis.stats import friedman_ranking, friedman_test, standard_error
from repro.exceptions import ValidationError


def test_friedman_ranking_orders_dominant_competitor_first():
    scores = {
        "strong": {"d1": 0.9, "d2": 0.8, "d3": 0.95},
        "medium": {"d1": 0.7, "d2": 0.6, "d3": 0.80},
        "weak": {"d1": 0.5, "d2": 0.4, "d3": 0.60},
    }
    ranks = friedman_ranking(scores)
    assert ranks["strong"] == 1.0
    assert ranks["medium"] == 2.0
    assert ranks["weak"] == 3.0


def test_friedman_ranking_ties_get_midranks():
    scores = {
        "a": {"d1": 0.5},
        "b": {"d1": 0.5},
    }
    ranks = friedman_ranking(scores)
    assert ranks["a"] == ranks["b"] == 1.5


def test_friedman_uses_common_datasets_only():
    scores = {
        "a": {"d1": 0.9, "d2": 0.1},
        "b": {"d1": 0.5},           # d2 missing -> only d1 is ranked
    }
    ranks = friedman_ranking(scores)
    assert ranks == {"a": 1.0, "b": 2.0}


def test_friedman_no_common_datasets_rejected():
    with pytest.raises(ValidationError):
        friedman_ranking({"a": {"d1": 0.5}, "b": {"d2": 0.5}})


def test_friedman_needs_two_competitors():
    with pytest.raises(ValidationError):
        friedman_ranking({"a": {"d1": 0.5}})


def test_friedman_rank_average_is_consistent():
    # Average of ranks over competitors must equal (k+1)/2 per block.
    rng = np.random.default_rng(0)
    scores = {
        name: {f"d{i}": float(rng.random()) for i in range(20)}
        for name in ("a", "b", "c", "d")
    }
    ranks = friedman_ranking(scores)
    assert np.mean(list(ranks.values())) == pytest.approx(2.5)


def test_friedman_test_detects_consistent_differences():
    scores = {
        "best": {f"d{i}": 0.9 + 0.001 * i for i in range(15)},
        "mid": {f"d{i}": 0.7 + 0.001 * i for i in range(15)},
        "worst": {f"d{i}": 0.5 + 0.001 * i for i in range(15)},
    }
    statistic, p_value = friedman_test(scores)
    assert statistic > 0
    assert p_value < 0.01


def test_friedman_test_requires_three_of_each():
    with pytest.raises(ValidationError):
        friedman_test({"a": {"d1": 1.0}, "b": {"d1": 0.5}})


def test_standard_error_basics():
    assert standard_error([1.0, 1.0, 1.0]) == 0.0
    assert standard_error([5.0]) == 0.0
    assert np.isnan(standard_error([]))
    values = [1.0, 2.0, 3.0, 4.0]
    expected = np.std(values, ddof=1) / 2.0
    assert standard_error(values) == pytest.approx(expected)
