"""Internal behaviours of the family-inference machinery."""

import numpy as np
import pytest

from repro.analysis.family import (
    FamilyObservation,
    _configs_by_classifier,
    _observation_features,
    train_family_predictors,
)
from repro.platforms import LocalLibrary, Microsoft


def test_configs_capped_per_classifier():
    platform = Microsoft()
    configs = _configs_by_classifier(platform, max_per_classifier=2)
    by_abbr = {}
    for config in configs:
        by_abbr.setdefault(config.classifier, []).append(config)
    assert set(by_abbr) == set(platform.classifier_abbrs())
    assert all(len(v) <= 2 for v in by_abbr.values())
    # No feature selection in the §6.2 observation sweep.
    assert all(c.feature_selection is None for c in configs)


def test_observation_features_layout():
    y_test = np.array([0, 1, 1, 0])
    predictions = np.array([0, 1, 0, 0])
    features = _observation_features(y_test, predictions)
    assert features.shape == (8,)  # 4 metrics + 4 predicted labels
    # Metrics occupy the first four slots in [0, 1].
    assert np.all((features[:4] >= 0.0) & (features[:4] <= 1.0))
    # Predicted labels are binary-encoded.
    assert features[4:].tolist() == [0.0, 1.0, 0.0, 0.0]


def _make_observations(n_per_family, feature_shift, n_features=12, seed=0):
    rng = np.random.default_rng(seed)
    samples = []
    for family, shift in (("linear", 0.0), ("nonlinear", feature_shift)):
        for i in range(n_per_family):
            samples.append(FamilyObservation(
                dataset="d",
                platform="p",
                classifier="LR" if family == "linear" else "DT",
                family=family,
                features=rng.normal(loc=shift, size=n_features),
            ))
    return {"d": samples}


def test_separable_observations_qualify():
    observations = _make_observations(30, feature_shift=4.0)
    predictors = train_family_predictors(observations, random_state=0)
    assert predictors["d"].qualified
    assert predictors["d"].test_f_score > 0.9


def test_unseparable_observations_do_not_qualify():
    observations = _make_observations(30, feature_shift=0.0, seed=1)
    predictors = train_family_predictors(observations, random_state=0)
    assert not predictors["d"].qualified


def test_single_family_yields_untrained_predictor():
    observations = _make_observations(30, feature_shift=1.0)
    observations["d"] = [
        s for s in observations["d"] if s.family == "linear"
    ]
    predictors = train_family_predictors(observations, random_state=0)
    assert predictors["d"].model is None
    assert not predictors["d"].qualified


def test_too_few_observations_yield_untrained_predictor():
    observations = _make_observations(3, feature_shift=5.0)
    predictors = train_family_predictors(observations, random_state=0)
    assert predictors["d"].model is None
