"""Tests for decision-boundary probing (§6.1, Figs 10 & 13)."""

import numpy as np
import pytest

from repro.analysis.boundary import (
    boundary_linearity,
    probe_decision_boundary,
)
from repro.datasets import load_dataset
from repro.exceptions import ValidationError
from repro.platforms import ABM, Amazon, Google, LocalLibrary


@pytest.fixture(scope="module")
def circle_split():
    return load_dataset("synthetic/circle", size_cap=400).split(random_state=0)


@pytest.fixture(scope="module")
def linear_split():
    return load_dataset("synthetic/linear", size_cap=400).split(random_state=0)


def test_probe_shape(linear_split):
    probe = probe_decision_boundary(
        Google(random_state=0), linear_split.X_train, linear_split.y_train,
        resolution=40,
    )
    assert probe.predictions.shape == (40, 40)
    assert probe.xx.shape == (40, 40)


def test_google_linear_on_linear(linear_split):
    probe = probe_decision_boundary(
        Google(random_state=0), linear_split.X_train, linear_split.y_train,
        resolution=60,
    )
    assert boundary_linearity(probe) > 0.97


def test_google_nonlinear_on_circle(circle_split):
    probe = probe_decision_boundary(
        Google(random_state=0), circle_split.X_train, circle_split.y_train,
        resolution=60,
    )
    assert boundary_linearity(probe) < 0.9


def test_abm_nonlinear_on_circle(circle_split):
    probe = probe_decision_boundary(
        ABM(random_state=0), circle_split.X_train, circle_split.y_train,
        resolution=60,
    )
    assert boundary_linearity(probe) < 0.9


def test_amazon_nonlinear_on_circle_fig13(circle_split):
    # Fig 13: Amazon's claimed-LR service produces a non-linear boundary.
    probe = probe_decision_boundary(
        Amazon(random_state=0), circle_split.X_train, circle_split.y_train,
        resolution=60,
    )
    assert boundary_linearity(probe) < 0.9


def test_plain_lr_boundary_is_linear(circle_split):
    platform = LocalLibrary(random_state=0)
    # Train the baseline (default LR) via create_model's default path.
    probe = probe_decision_boundary(
        platform, circle_split.X_train, circle_split.y_train, resolution=50
    )
    assert boundary_linearity(probe) > 0.95


def test_probe_rejects_high_dimensional_data():
    X = np.random.default_rng(0).normal(size=(50, 3))
    y = (X[:, 0] > 0).astype(int)
    with pytest.raises(ValidationError, match="2-feature"):
        probe_decision_boundary(Google(), X, y)


def test_ascii_rendering(circle_split):
    probe = probe_decision_boundary(
        Google(random_state=0), circle_split.X_train, circle_split.y_train,
        resolution=40,
    )
    art = probe.render_ascii(width=20)
    assert "#" in art and "." in art


def test_positive_fraction_between_zero_and_one(circle_split):
    probe = probe_decision_boundary(
        ABM(random_state=0), circle_split.X_train, circle_split.y_train,
        resolution=30,
    )
    assert 0.0 < probe.positive_fraction() < 1.0
