"""Tests for the k-subset analysis (Fig 8) and report rendering."""

import numpy as np
import pytest

from repro.analysis.reporting import (
    cdf_points,
    render_bar_chart,
    render_cdf,
    render_table,
)
from repro.analysis.subsets import expected_max_of_subset, subset_performance_curve
from repro.core.controls import Configuration
from repro.core.results import ExperimentResult, ResultStore
from repro.exceptions import ValidationError
from repro.learn.metrics import MetricSummary


class TestExpectedMax:
    def test_k_one_is_mean(self):
        scores = [0.2, 0.4, 0.9]
        assert expected_max_of_subset(scores, 1) == pytest.approx(0.5)

    def test_k_n_is_max(self):
        scores = [0.2, 0.4, 0.9]
        assert expected_max_of_subset(scores, 3) == pytest.approx(0.9)

    def test_k_two_exact_enumeration(self):
        scores = [0.1, 0.5, 0.7]
        # Subsets: {0.1,0.5}->0.5, {0.1,0.7}->0.7, {0.5,0.7}->0.7.
        assert expected_max_of_subset(scores, 2) == pytest.approx((0.5 + 0.7 + 0.7) / 3)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValidationError):
            expected_max_of_subset([0.5], 2)
        with pytest.raises(ValidationError):
            expected_max_of_subset([0.5], 0)

    def test_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        scores = rng.random(8)
        exact = expected_max_of_subset(scores, 3)
        samples = [
            scores[rng.choice(8, size=3, replace=False)].max()
            for _ in range(20_000)
        ]
        assert exact == pytest.approx(np.mean(samples), abs=0.01)


def result(platform, dataset, classifier, f, params=None):
    return ExperimentResult(
        platform=platform,
        dataset=dataset,
        configuration=Configuration.make(classifier=classifier, params=params),
        metrics=MetricSummary(f_score=f, accuracy=f, precision=f, recall=f),
    )


class TestSubsetCurve:
    def test_curve_monotone_and_saturating(self):
        store = ResultStore([
            result("p", "d1", "LR", 0.5),
            result("p", "d1", "DT", 0.9),
            result("p", "d1", "RF", 0.7),
            result("p", "d2", "LR", 0.8),
            result("p", "d2", "DT", 0.4),
            result("p", "d2", "RF", 0.6),
        ])
        curve = subset_performance_curve(store, "p")
        ks = [k for k, _ in curve]
        values = [v for _, v in curve]
        assert ks == [1, 2, 3]
        assert values == sorted(values)
        assert values[-1] == pytest.approx((0.9 + 0.8) / 2)

    def test_uses_best_configuration_per_classifier(self):
        store = ResultStore([
            result("p", "d1", "LR", 0.3, params={"C": 1}),
            result("p", "d1", "LR", 0.8, params={"C": 2}),
        ])
        curve = subset_performance_curve(store, "p")
        assert curve == [(1, pytest.approx(0.8))]

    def test_empty_for_blackbox(self):
        store = ResultStore([
            ExperimentResult(
                platform="google", dataset="d1",
                configuration=Configuration.make(),
                metrics=MetricSummary(0.7, 0.7, 0.7, 0.7),
            )
        ])
        assert subset_performance_curve(store, "google") == []


class TestReporting:
    def test_table_alignment_and_content(self):
        table = render_table(
            ["name", "value"], [["alpha", 1.5], ["b", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "alpha" in table and "22" in table
        assert lines[2].startswith("---")

    def test_bar_chart_scales(self):
        chart = render_bar_chart(["a", "b"], [1.0, 0.5], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_bar_chart_handles_nan(self):
        chart = render_bar_chart(["a"], [float("nan")])
        assert "n/a" in chart

    def test_cdf_points_monotone(self):
        points = cdf_points([3.0, 1.0, 2.0])
        values = [v for v, _ in points]
        fractions = [f for _, f in points]
        assert values == sorted(values)
        assert fractions[-1] == 1.0

    def test_cdf_empty(self):
        assert cdf_points([]) == []
        assert "(no data)" in render_cdf([])

    def test_render_cdf_has_requested_points(self):
        text = render_cdf(list(np.linspace(0, 1, 100)), n_points=5)
        assert text.count("CDF(") == 5
