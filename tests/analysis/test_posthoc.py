"""Tests for post-hoc pairwise statistical comparisons."""

import numpy as np
import pytest

from repro.analysis.posthoc import (
    nemenyi_critical_difference,
    pairwise_comparisons,
    significantly_different_pairs,
    wilcoxon_signed_rank,
)
from repro.exceptions import ValidationError


def make_scores(shift_b=0.0, shift_c=0.0, n=20, seed=0):
    rng = np.random.default_rng(seed)
    base = rng.uniform(0.4, 0.9, n)
    return {
        "a": {f"d{i}": float(base[i]) for i in range(n)},
        "b": {f"d{i}": float(base[i] + shift_b) for i in range(n)},
        "c": {f"d{i}": float(base[i] + shift_c) for i in range(n)},
    }


class TestWilcoxon:
    def test_detects_consistent_shift(self):
        rng = np.random.default_rng(1)
        a = rng.uniform(0.5, 0.9, 30)
        b = a - 0.05 - 0.01 * rng.random(30)
        _, p = wilcoxon_signed_rank(a, b)
        assert p < 0.001

    def test_no_difference_high_p(self):
        rng = np.random.default_rng(2)
        a = rng.uniform(0.5, 0.9, 30)
        noise = rng.normal(0, 0.05, 30)
        _, p = wilcoxon_signed_rank(a, a + noise - noise.mean())
        assert p > 0.01

    def test_all_ties_returns_p_one(self):
        a = np.full(10, 0.5)
        statistic, p = wilcoxon_signed_rank(a, a)
        assert (statistic, p) == (0.0, 1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            wilcoxon_signed_rank([0.1, 0.2], [0.1, 0.2, 0.3])

    def test_too_few_pairs_rejected(self):
        with pytest.raises(ValidationError):
            wilcoxon_signed_rank([0.1, 0.2], [0.3, 0.4])


class TestPairwise:
    def test_clear_separation_is_significant(self):
        scores = make_scores(shift_b=-0.2, shift_c=-0.4)
        comparisons = pairwise_comparisons(scores)
        assert len(comparisons) == 3
        assert all(c.significant for c in comparisons)
        ac = next(c for c in comparisons
                  if {c.platform_a, c.platform_b} == {"a", "c"})
        assert ac.better == "a"

    def test_identical_platforms_not_significant(self):
        scores = make_scores(shift_b=0.0, shift_c=0.0)
        comparisons = pairwise_comparisons(scores)
        assert not any(c.significant for c in comparisons)

    def test_holm_adjusted_p_at_least_raw(self):
        scores = make_scores(shift_b=-0.1, shift_c=-0.05)
        for c in pairwise_comparisons(scores):
            assert c.adjusted_p >= c.p_value - 1e-12

    def test_holm_monotone_in_sorted_order(self):
        scores = make_scores(shift_b=-0.1, shift_c=-0.3, seed=3)
        comparisons = pairwise_comparisons(scores)
        adjusted = [c.adjusted_p for c in comparisons]
        assert adjusted == sorted(adjusted)

    def test_needs_enough_common_datasets(self):
        with pytest.raises(ValidationError):
            pairwise_comparisons({
                "a": {"d1": 0.5, "d2": 0.4},
                "b": {"d1": 0.6, "d2": 0.5},
            })


class TestNemenyi:
    def test_cd_decreases_with_more_datasets(self):
        cd_small = nemenyi_critical_difference(7, 20)
        cd_large = nemenyi_critical_difference(7, 119)
        assert cd_large < cd_small

    def test_cd_grows_with_more_platforms(self):
        assert nemenyi_critical_difference(7, 50) > \
            nemenyi_critical_difference(3, 50)

    def test_paper_scale_value(self):
        # 7 competitors over 119 datasets — the paper's setting.
        cd = nemenyi_critical_difference(7, 119)
        assert cd == pytest.approx(0.826, abs=0.01)

    def test_out_of_table_rejected(self):
        with pytest.raises(ValidationError):
            nemenyi_critical_difference(11, 50)

    def test_significant_pairs_detects_dominance(self):
        scores = make_scores(shift_b=-0.3, shift_c=-0.6, n=40)
        pairs = significantly_different_pairs(scores)
        assert ("a", "c", pytest.approx(2.0)) in [
            (x, y, pytest.approx(g)) for x, y, g in pairs
        ]

    def test_no_pairs_when_equal(self):
        scores = {
            "a": {f"d{i}": 0.5 + 0.001 * (i % 3) for i in range(30)},
            "b": {f"d{i}": 0.5 + 0.001 * ((i + 1) % 3) for i in range(30)},
            "c": {f"d{i}": 0.5 + 0.001 * ((i + 2) % 3) for i in range(30)},
        }
        assert significantly_different_pairs(scores) == []
