"""Edge-case tests for boundary probing and linearity scoring."""

import numpy as np

from repro.analysis.boundary import BoundaryProbe, boundary_linearity


def _probe_from_predictions(predictions: np.ndarray) -> BoundaryProbe:
    resolution = predictions.shape[0]
    xx, yy = np.meshgrid(
        np.linspace(-1, 1, resolution), np.linspace(-1, 1, resolution)
    )
    return BoundaryProbe(xx=xx, yy=yy, predictions=predictions)


def test_all_one_class_is_trivially_linear():
    probe = _probe_from_predictions(np.zeros((20, 20), dtype=int))
    assert boundary_linearity(probe) == 1.0
    # With a single predicted class, that class is the reference: the
    # fraction is 1.0 by definition.
    assert probe.positive_fraction() == 1.0


def test_halfplane_boundary_scores_near_one():
    predictions = np.zeros((40, 40), dtype=int)
    predictions[:, 20:] = 1  # vertical line boundary
    probe = _probe_from_predictions(predictions)
    assert boundary_linearity(probe) > 0.97


def test_diagonal_boundary_scores_near_one():
    resolution = 40
    xx, yy = np.meshgrid(
        np.linspace(-1, 1, resolution), np.linspace(-1, 1, resolution)
    )
    predictions = (xx + yy > 0).astype(int)
    probe = BoundaryProbe(xx=xx, yy=yy, predictions=predictions)
    assert boundary_linearity(probe) > 0.97


def test_disc_boundary_scores_low():
    resolution = 50
    xx, yy = np.meshgrid(
        np.linspace(-1, 1, resolution), np.linspace(-1, 1, resolution)
    )
    predictions = (xx**2 + yy**2 < 0.3).astype(int)
    probe = BoundaryProbe(xx=xx, yy=yy, predictions=predictions)
    # A disc cannot be explained by any halfplane much better than the
    # majority-class rate.
    majority = max(predictions.mean(), 1 - predictions.mean())
    assert boundary_linearity(probe) < majority + 0.05


def test_checkerboard_scores_lowest():
    resolution = 40
    xx, yy = np.meshgrid(
        np.linspace(-1, 1, resolution), np.linspace(-1, 1, resolution)
    )
    predictions = (((xx > 0).astype(int) + (yy > 0).astype(int)) % 2)
    probe = BoundaryProbe(xx=xx, yy=yy, predictions=predictions)
    assert boundary_linearity(probe) < 0.75


def test_ascii_render_dimensions():
    probe = _probe_from_predictions(
        (np.arange(30)[:, None] + np.arange(30)[None, :]) % 2
    )
    art = probe.render_ascii(width=15)
    lines = art.splitlines()
    assert len(lines) == 15
    assert all(len(line) == 15 for line in lines)
