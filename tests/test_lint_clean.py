"""Dogfood gate: the repro source tree must satisfy its own lint rules.

This is the enforcement point for the reproduction invariants documented
in DESIGN.md: determinism (R001), the estimator contract (R002), Table 1
conformance (R003), exception hygiene (R004) and export sync (R005).
A failure here means a change drifted away from the paper's protocol —
run ``repro lint`` for the full report.
"""

from pathlib import Path

import repro
from repro.tools.lint import lint_paths

SOURCE_ROOT = Path(repro.__file__).resolve().parent


def test_source_tree_has_no_unsuppressed_violations():
    result = lint_paths([SOURCE_ROOT])
    report = "\n".join(
        f"{v.location}: {v.code} {v.message}" for v in result.unsuppressed
    )
    assert result.unsuppressed == [], f"repro lint found:\n{report}"
    assert result.n_files > 50  # the whole tree was actually scanned


def test_every_suppression_carries_a_reason():
    result = lint_paths([SOURCE_ROOT])
    for violation in result.suppressed:
        assert violation.reason, (
            f"{violation.location}: suppressed {violation.code} without a "
            "reason (use '# repro: disable=CODE -- why')"
        )
