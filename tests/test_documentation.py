"""Documentation quality gates: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.rsplit(".", 1)[-1].startswith("_")
]


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), \
        f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("module_name", MODULES)
def test_public_items_documented(module_name):
    module = importlib.import_module(module_name)
    public = getattr(module, "__all__", [])
    undocumented = []
    for name in public:
        item = getattr(module, name)
        if inspect.isclass(item) or inspect.isfunction(item):
            if not (item.__doc__ and item.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, \
        f"{module_name}: undocumented public items {undocumented}"


# Methods defined by the estimator protocol, documented once on the base
# classes (repro.learn.base); repeating "Fit the model." on every class
# would be noise, so the gate exempts them.
_PROTOCOL_METHODS = {
    "fit", "predict", "predict_proba", "transform", "fit_transform",
    "decision_function", "score", "split", "get_params", "set_params",
}


@pytest.mark.parametrize("module_name", MODULES)
def test_public_methods_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        item = getattr(module, name)
        if not inspect.isclass(item):
            continue
        for method_name, method in vars(item).items():
            if method_name.startswith("_") or method_name in _PROTOCOL_METHODS:
                continue
            if inspect.isfunction(method):
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, \
        f"{module_name}: undocumented public methods {undocumented}"
