"""Tests for classification metrics (the paper's Table 3 metrics)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learn.metrics import (
    accuracy_score,
    classification_summary,
    confusion_binary,
    f_score,
    precision_score,
    recall_score,
    roc_auc_score,
)

Y_TRUE = np.array([1, 1, 1, 1, 0, 0, 0, 0])
Y_PRED = np.array([1, 1, 0, 0, 1, 0, 0, 0])  # tp=2 fn=2 fp=1 tn=3


def test_confusion_counts():
    assert confusion_binary(Y_TRUE, Y_PRED) == (2, 1, 2, 3)


def test_accuracy():
    assert accuracy_score(Y_TRUE, Y_PRED) == pytest.approx(5 / 8)


def test_precision():
    assert precision_score(Y_TRUE, Y_PRED) == pytest.approx(2 / 3)


def test_recall():
    assert recall_score(Y_TRUE, Y_PRED) == pytest.approx(0.5)


def test_f_score_is_harmonic_mean():
    precision, recall = 2 / 3, 0.5
    expected = 2 * precision * recall / (precision + recall)
    assert f_score(Y_TRUE, Y_PRED) == pytest.approx(expected)


def test_perfect_prediction_scores_one():
    assert f_score(Y_TRUE, Y_TRUE) == 1.0
    assert accuracy_score(Y_TRUE, Y_TRUE) == 1.0
    assert precision_score(Y_TRUE, Y_TRUE) == 1.0
    assert recall_score(Y_TRUE, Y_TRUE) == 1.0


def test_all_negative_prediction_gives_zero_f():
    prediction = np.zeros_like(Y_TRUE)
    assert precision_score(Y_TRUE, prediction) == 0.0
    assert recall_score(Y_TRUE, prediction) == 0.0
    assert f_score(Y_TRUE, prediction) == 0.0


def test_pos_label_override():
    # Treat 0 as the positive class.
    assert recall_score(Y_TRUE, Y_PRED, pos_label=0) == pytest.approx(3 / 4)


def test_string_labels_supported():
    y_true = np.array(["spam", "ham", "spam", "ham"])
    y_pred = np.array(["spam", "spam", "spam", "ham"])
    assert accuracy_score(y_true, y_pred) == pytest.approx(0.75)
    assert recall_score(y_true, y_pred, pos_label="spam") == 1.0


def test_f_beta_weighting():
    # beta > 1 weighs recall more; here recall < precision so F2 < F1.
    assert f_score(Y_TRUE, Y_PRED, beta=2.0) < f_score(Y_TRUE, Y_PRED, beta=1.0)


def test_f_score_rejects_nonpositive_beta():
    with pytest.raises(ValidationError):
        f_score(Y_TRUE, Y_PRED, beta=0.0)


def test_length_mismatch_rejected():
    with pytest.raises(ValidationError):
        accuracy_score([0, 1], [0, 1, 1])


def test_empty_labels_rejected():
    with pytest.raises(ValidationError):
        accuracy_score([], [])


def test_summary_matches_individual_metrics():
    summary = classification_summary(Y_TRUE, Y_PRED)
    assert summary.f_score == pytest.approx(f_score(Y_TRUE, Y_PRED))
    assert summary.accuracy == pytest.approx(accuracy_score(Y_TRUE, Y_PRED))
    assert summary.precision == pytest.approx(precision_score(Y_TRUE, Y_PRED))
    assert summary.recall == pytest.approx(recall_score(Y_TRUE, Y_PRED))


def test_summary_as_dict_keys():
    summary = classification_summary(Y_TRUE, Y_PRED)
    assert set(summary.as_dict()) == {"f_score", "accuracy", "precision", "recall"}


def test_roc_auc_perfect_separation():
    y = np.array([0, 0, 1, 1])
    scores = np.array([0.1, 0.2, 0.8, 0.9])
    assert roc_auc_score(y, scores) == 1.0


def test_roc_auc_random_scores_half():
    y = np.array([0, 1, 0, 1])
    scores = np.array([0.5, 0.5, 0.5, 0.5])
    assert roc_auc_score(y, scores) == pytest.approx(0.5)


def test_roc_auc_inverted_scores_zero():
    y = np.array([0, 0, 1, 1])
    scores = np.array([0.9, 0.8, 0.2, 0.1])
    assert roc_auc_score(y, scores) == 0.0


def test_roc_auc_requires_both_classes():
    with pytest.raises(ValidationError):
        roc_auc_score(np.array([1, 1]), np.array([0.1, 0.9]))
