"""Tests for the estimator protocol (get/set params, clone, fitted checks)."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError
from repro.learn.base import BaseEstimator, check_is_fitted, clone
from repro.learn.linear import LogisticRegression
from repro.learn.tree import DecisionTreeClassifier


class Toy(BaseEstimator):
    def __init__(self, alpha=1.0, beta="x", gamma=None):
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma


def test_get_params_returns_constructor_arguments():
    toy = Toy(alpha=2.5, beta="y")
    assert toy.get_params() == {"alpha": 2.5, "beta": "y", "gamma": None}


def test_set_params_updates_and_returns_self():
    toy = Toy()
    returned = toy.set_params(alpha=9.0)
    assert returned is toy
    assert toy.alpha == 9.0


def test_set_params_rejects_unknown_name():
    with pytest.raises(ValueError, match="Invalid parameter"):
        Toy().set_params(nonexistent=1)


def test_repr_contains_parameters():
    assert "alpha=2.5" in repr(Toy(alpha=2.5))


def test_clone_copies_parameters_not_fitted_state():
    model = LogisticRegression(C=0.5)
    X = np.random.default_rng(0).normal(size=(30, 2))
    y = (X[:, 0] > 0).astype(int)
    model.fit(X, y)
    cloned = clone(model)
    assert cloned.C == 0.5
    assert not hasattr(cloned, "coef_")


def test_clone_deep_copies_mutable_parameters():
    from repro.learn.neural import MLPClassifier

    model = MLPClassifier(hidden_layer_sizes=(8, 4))
    cloned = clone(model)
    assert cloned.hidden_layer_sizes == (8, 4)
    assert cloned.hidden_layer_sizes is not model.hidden_layer_sizes or isinstance(
        model.hidden_layer_sizes, tuple
    )


def test_clone_clones_nested_estimators():
    from repro.learn.ensemble import BaggingClassifier

    base = DecisionTreeClassifier(max_depth=3)
    bag = BaggingClassifier(base_estimator=base)
    cloned = clone(bag)
    assert cloned.base_estimator is not base
    assert cloned.base_estimator.max_depth == 3


def test_check_is_fitted_raises_before_fit():
    with pytest.raises(NotFittedError, match="not fitted"):
        check_is_fitted(LogisticRegression())


def test_check_is_fitted_passes_after_fit():
    X = np.random.default_rng(1).normal(size=(20, 2))
    y = (X[:, 0] > 0).astype(int)
    model = LogisticRegression().fit(X, y)
    check_is_fitted(model)  # should not raise


def test_classifier_score_is_accuracy():
    X = np.array([[0.0], [1.0], [2.0], [3.0]])
    y = np.array([0, 0, 1, 1])
    model = DecisionTreeClassifier().fit(X, y)
    assert model.score(X, y) == 1.0
