"""Equivalence of the shape-driven dtype fixes with the original code.

``repro shape`` (S402) flagged builtin ``float``/``int`` dtype names
across the learn substrate — ``astype(float)``, ``dtype=int`` and
friends leave the array width to the platform.  The fixes spell them
``np.float64``/``np.intp``, which on every supported platform name the
*same* dtypes Python's builtins resolve to on 64-bit Linux, so the
rewrites must be bit-for-bit no-ops.  The tests here pin that down
three ways: the dtype aliasing itself, exact learned-state dtypes, and
double-run fit/predict determinism for every estimator family touched.
The boundary tests cover the S406 fixes: ``batch_predict`` and the
auto-selector now normalize client arrays through ``check_array`` /
``check_X_y``, which must not change what already-valid input produces.
"""

import numpy as np
import pytest

from repro.learn import (
    AdaBoostClassifier,
    BaggingClassifier,
    BernoulliNB,
    DecisionJungleClassifier,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GaussianNB,
    GradientBoostingClassifier,
    KNeighborsClassifier,
    KNeighborsRegressor,
    LinearRegression,
    MLPClassifier,
    OneVsRestClassifier,
    StratifiedKFold,
    roc_auc_score,
)
from repro.learn.feature_selection.filters import mutual_info_score
from repro.learn.feature_selection.fisher_lda import FisherLDATransform
from repro.learn.linear import LogisticRegression
from repro.platforms import LocalLibrary
from repro.platforms.autoselect import AutoClassifierSelector


def make_problem(seed=0, n_samples=120, n_features=5):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_samples, n_features))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0.0).astype(np.intp)
    if len(np.unique(y)) < 2:  # pragma: no cover - defensive
        y[0] = 1 - y[0]
    return X, y


class TestDtypeAliasing:
    """The rewrite forms are aliases on this platform, not conversions."""

    def test_builtin_float_is_float64(self):
        assert np.dtype(float) == np.dtype(np.float64)
        a = np.arange(5).astype(float)
        b = np.arange(5).astype(np.float64)
        assert a.dtype == b.dtype and np.array_equal(a, b)

    def test_builtin_int_matches_intp_width_here(self):
        # The S402 point: `int` is only 64-bit where the platform says
        # so; np.intp pins what the substrate actually relies on.
        assert np.dtype(int).itemsize == np.dtype(np.intp).itemsize
        a = np.zeros(4, dtype=int)
        b = np.zeros(4, dtype=np.intp)
        assert np.array_equal(a, b) and a.itemsize == b.itemsize

    def test_comparison_mask_round_trip(self):
        # The most common rewritten idiom: (y == c).astype(np.float64).
        y = np.array([0, 1, 1, 0, 1])
        assert np.array_equal((y == 1).astype(np.float64),
                              (y == 1).astype(float))
        assert np.array_equal((y == 1).astype(np.intp),
                              (y == 1).astype(int))


#: Every estimator family with an S402 rewrite in fit/predict paths.
TOUCHED_CLASSIFIERS = [
    ("GaussianNB", lambda: GaussianNB()),
    ("BernoulliNB", lambda: BernoulliNB()),
    ("BaggingClassifier", lambda: BaggingClassifier(random_state=0)),
    ("AdaBoostClassifier", lambda: AdaBoostClassifier(random_state=0)),
    ("GradientBoostingClassifier",
     lambda: GradientBoostingClassifier(random_state=0)),
    ("OneVsRestClassifier", lambda: OneVsRestClassifier(GaussianNB())),
    ("KNeighborsClassifier", lambda: KNeighborsClassifier()),
    ("MLPClassifier", lambda: MLPClassifier(random_state=0)),
    ("DecisionTreeClassifier",
     lambda: DecisionTreeClassifier(random_state=0)),
    ("DecisionJungleClassifier",
     lambda: DecisionJungleClassifier(n_dags=2, random_state=0)),
]


class TestTouchedEstimatorDeterminism:
    @pytest.mark.parametrize(
        "make", [m for _, m in TOUCHED_CLASSIFIERS],
        ids=[n for n, _ in TOUCHED_CLASSIFIERS])
    def test_fit_predict_twice_bit_identical(self, make):
        X, y = make_problem(3)
        pred_a = make().fit(X, y).predict(X)
        pred_b = make().fit(X, y).predict(X)
        assert np.array_equal(pred_a, pred_b)

    @pytest.mark.parametrize(
        "cls", [LinearRegression, DecisionTreeRegressor,
                KNeighborsRegressor], ids=lambda c: c.__name__)
    def test_regressors_deterministic_and_float64(self, cls):
        X, y = make_problem(5)
        y = y.astype(np.float64) + 0.25 * X[:, 0]
        pred_a = cls().fit(X, y).predict(X)
        pred_b = cls().fit(X, y).predict(X)
        assert np.array_equal(pred_a, pred_b)
        assert pred_a.dtype == np.float64


class TestLearnedStateDtypes:
    """Exact dtypes of learned attributes on the rewritten paths."""

    def test_jungle_predictions_deterministic_and_typed(self):
        X, y = make_problem(7, n_samples=80)
        model = DecisionJungleClassifier(
            n_dags=2, random_state=0).fit(X, y)
        pred = model.predict(X)
        assert pred.dtype.kind in "if"
        again = DecisionJungleClassifier(
            n_dags=2, random_state=0).fit(X, y).predict(X)
        assert np.array_equal(pred, again)

    def test_gradient_boosting_probabilities_are_float64(self):
        X, y = make_problem(2, n_samples=90)
        model = GradientBoostingClassifier(random_state=0).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.dtype == np.float64

    def test_mutual_info_scores_float64(self):
        X, y = make_problem(4)
        scores = mutual_info_score(X, y)
        assert scores.dtype == np.float64

    def test_fisher_lda_kept_indices_integer(self):
        X, y = make_problem(6)
        lda = FisherLDATransform().fit(X, y)
        assert lda.kept_indices_.dtype.kind == "i"
        assert lda.kept_indices_.dtype.itemsize == np.dtype(np.intp).itemsize

    def test_stratified_kfold_indices_integer(self):
        X, y = make_problem(8, n_samples=50)
        for train, test in StratifiedKFold(n_splits=3).split(X, y):
            assert train.dtype.kind == "i" and test.dtype.kind == "i"

    def test_roc_auc_unchanged_on_integer_scores(self):
        y = np.array([0, 1, 1, 0, 1, 0, 1, 1])
        scores = np.array([1, 3, 3, 2, 4, 1, 5, 2])  # int input path
        auc = roc_auc_score(y, scores)
        assert auc == roc_auc_score(y, scores.astype(np.float64))


class TestBoundaryValidationEquivalence:
    """S406 fixes: boundary normalization is a no-op for valid input."""

    @staticmethod
    def _trained_platform(X, y):
        platform = LocalLibrary(random_state=0)
        dataset_id = platform.upload_dataset(X, y)
        model_id = platform.create_model(dataset_id)
        platform.await_model(model_id)
        return platform, model_id

    def test_batch_predict_accepts_lists_identically(self):
        X, y = make_problem(1, n_samples=60)
        platform_a, model_a = self._trained_platform(X, y)
        from_array = platform_a.batch_predict(model_a, X[:10])
        platform_b, model_b = self._trained_platform(X, y)
        from_list = platform_b.batch_predict(model_b, X[:10].tolist())
        assert np.array_equal(from_array, from_list)

    def test_batch_predict_rejects_nan_queries(self):
        from repro.exceptions import ValidationError

        X, y = make_problem(1, n_samples=60)
        platform, model_id = self._trained_platform(X, y)
        bad = X[:4].copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValidationError):
            platform.batch_predict(model_id, bad)

    def test_autoselect_identical_for_list_and_array_input(self):
        X, y = make_problem(9, n_samples=100)
        sel_a = AutoClassifierSelector(
            linear_candidate=LogisticRegression(random_state=0),
            nonlinear_candidate=DecisionTreeClassifier(random_state=0),
            random_state=0,
        )
        sel_b = AutoClassifierSelector(
            linear_candidate=LogisticRegression(random_state=0),
            nonlinear_candidate=DecisionTreeClassifier(random_state=0),
            random_state=0,
        )
        winner_a, outcome_a = sel_a.select(X, y)
        winner_b, outcome_b = sel_b.select(X.tolist(), y.tolist())
        assert type(winner_a) is type(winner_b)
        assert outcome_a == outcome_b
