"""Behavioural tests for the linear classifier family."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learn.linear import (
    AveragedPerceptron,
    BayesPointMachine,
    LinearDiscriminantAnalysis,
    LinearSVC,
    LogisticRegression,
)
from repro.learn.metrics import f_score


class TestLogisticRegression:
    def test_recovers_separating_direction(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 2))
        y = (2.0 * X[:, 0] - 1.0 * X[:, 1] > 0).astype(int)
        model = LogisticRegression(penalty="none", max_iter=500).fit(X, y)
        direction = model.coef_ / np.linalg.norm(model.coef_)
        target = np.array([2.0, -1.0]) / np.sqrt(5.0)
        assert abs(direction @ target) > 0.97

    def test_l2_shrinks_weights(self, noisy_linear_data):
        X_train, y_train, _, _ = noisy_linear_data
        weak = LogisticRegression(C=100.0).fit(X_train, y_train)
        strong = LogisticRegression(C=0.001).fit(X_train, y_train)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_l1_sparsifies(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 10))
        y = (X[:, 0] > 0).astype(int)
        model = LogisticRegression(
            penalty="l1", solver="sgd", C=0.05, max_iter=60, random_state=0
        ).fit(X, y)
        # Noise weights collapse toward zero; the signal weight dominates.
        small = np.sum(np.abs(model.coef_) < 1e-2)
        assert small >= 8
        assert np.argmax(np.abs(model.coef_)) == 0

    def test_lbfgs_rejects_l1(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValidationError, match="l1"):
            LogisticRegression(penalty="l1", solver="lbfgs").fit(X_train, y_train)

    def test_invalid_penalty_and_solver_rejected(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValidationError):
            LogisticRegression(penalty="l3").fit(X_train, y_train)
        with pytest.raises(ValidationError):
            LogisticRegression(solver="newton").fit(X_train, y_train)
        with pytest.raises(ValidationError):
            LogisticRegression(C=-1.0).fit(X_train, y_train)

    def test_sgd_solver_learns(self, linear_data):
        X_train, y_train, X_test, y_test = linear_data
        model = LogisticRegression(
            solver="sgd", max_iter=40, random_state=0
        ).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.85

    def test_predict_proba_monotone_in_score(self, linear_data):
        X_train, y_train, X_test, _ = linear_data
        model = LogisticRegression().fit(X_train, y_train)
        scores = model.decision_function(X_test)
        probabilities = model.predict_proba(X_test)[:, 1]
        order = np.argsort(scores)
        assert np.all(np.diff(probabilities[order]) >= -1e-12)

    def test_no_intercept(self, linear_data):
        X_train, y_train, _, _ = linear_data
        model = LogisticRegression(fit_intercept=False).fit(X_train, y_train)
        assert model.intercept_ == 0.0

    def test_records_iterations(self, linear_data):
        X_train, y_train, _, _ = linear_data
        model = LogisticRegression().fit(X_train, y_train)
        assert model.n_iter_ >= 1


class TestLinearSVC:
    def test_margin_classifier_learns(self, linear_data):
        X_train, y_train, X_test, y_test = linear_data
        model = LinearSVC(random_state=0).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.9

    def test_squared_hinge_loss_supported(self, linear_data):
        X_train, y_train, X_test, y_test = linear_data
        model = LinearSVC(loss="squared_hinge", random_state=0).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.85

    def test_invalid_loss_rejected(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValidationError):
            LinearSVC(loss="logistic").fit(X_train, y_train)

    def test_l1_penalty_rejected(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValidationError, match="l2"):
            LinearSVC(penalty="l1").fit(X_train, y_train)

    def test_stronger_regularization_shrinks_weights(self, noisy_linear_data):
        X_train, y_train, _, _ = noisy_linear_data
        weak = LinearSVC(C=100.0, random_state=0).fit(X_train, y_train)
        strong = LinearSVC(C=0.01, random_state=0).fit(X_train, y_train)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)


class TestAveragedPerceptron:
    def test_converges_on_separable_data(self):
        # Strictly separable with margin: drop points near the hyperplane.
        rng = np.random.default_rng(7)
        X = rng.normal(size=(400, 3))
        scores = X @ np.array([1.0, -1.0, 0.5])
        keep = np.abs(scores) > 0.5
        X, y = X[keep], (scores[keep] > 0).astype(int)
        model = AveragedPerceptron(random_state=0).fit(X, y)
        assert model.score(X, y) > 0.97
        assert model.mistakes_ == 0  # separable: last epoch is mistake-free

    def test_averaging_beats_final_weights_on_noise(self, noisy_linear_data):
        X_train, y_train, X_test, y_test = noisy_linear_data
        averaged = AveragedPerceptron(max_iter=20, random_state=0)
        averaged.fit(X_train, y_train)
        assert f_score(y_test, averaged.predict(X_test)) > 0.6

    def test_invalid_learning_rate_rejected(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValidationError):
            AveragedPerceptron(learning_rate=0.0).fit(X_train, y_train)

    def test_no_shuffle_is_deterministic_without_seed(self, linear_data):
        X_train, y_train, X_test, _ = linear_data
        a = AveragedPerceptron(shuffle=False).fit(X_train, y_train).predict(X_test)
        b = AveragedPerceptron(shuffle=False).fit(X_train, y_train).predict(X_test)
        assert np.array_equal(a, b)


class TestBayesPointMachine:
    def test_learns_linear_concept(self, linear_data):
        X_train, y_train, X_test, y_test = linear_data
        model = BayesPointMachine(n_members=5, random_state=0).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.9

    def test_member_count_respected(self, linear_data):
        X_train, y_train, _, _ = linear_data
        model = BayesPointMachine(n_members=4, random_state=0).fit(X_train, y_train)
        assert model.member_weights_.shape[0] == 4

    def test_invalid_config_rejected(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValidationError):
            BayesPointMachine(n_iter=0).fit(X_train, y_train)
        with pytest.raises(ValidationError):
            BayesPointMachine(n_members=0).fit(X_train, y_train)


class TestLDA:
    def test_solvers_agree(self, linear_data):
        X_train, y_train, X_test, _ = linear_data
        lsqr = LinearDiscriminantAnalysis(solver="lsqr").fit(X_train, y_train)
        eigen = LinearDiscriminantAnalysis(solver="eigen").fit(X_train, y_train)
        agreement = np.mean(lsqr.predict(X_test) == eigen.predict(X_test))
        assert agreement > 0.97

    def test_shrinkage_helps_when_features_outnumber_samples(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(30, 60))
        y = (X[:, 0] > 0).astype(int)
        model = LinearDiscriminantAnalysis(shrinkage=0.5).fit(X, y)
        assert np.all(np.isfinite(model.coef_))

    def test_invalid_shrinkage_rejected(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValidationError):
            LinearDiscriminantAnalysis(shrinkage=2.0).fit(X_train, y_train)

    def test_priors_shift_intercept(self, linear_data):
        X_train, y_train, _, _ = linear_data
        model = LinearDiscriminantAnalysis().fit(X_train, y_train)
        assert model.priors_.sum() == pytest.approx(1.0)
