"""Miscellaneous learn-library behaviours not covered elsewhere."""

import numpy as np
import pytest

from repro.learn import (
    CLASSIFIER_REGISTRY,
    GridSearchCV,
    LogisticRegression,
    cross_val_score,
    f_score,
)
from repro.learn.linear import LinearSVC
from repro.learn.tree import DecisionTreeClassifier


def test_sgd_minibatch_matches_lbfgs_direction(linear_data):
    """Both solvers must find essentially the same separator."""
    X_train, y_train, X_test, _ = linear_data
    lbfgs = LogisticRegression(solver="lbfgs").fit(X_train, y_train)
    sgd = LogisticRegression(solver="sgd", max_iter=60, random_state=0)
    sgd.fit(X_train, y_train)
    agreement = np.mean(lbfgs.predict(X_test) == sgd.predict(X_test))
    assert agreement > 0.93


def test_sgd_batching_invariant_to_sample_count():
    """Tiny datasets (below one batch) still train correctly."""
    rng = np.random.default_rng(0)
    X = rng.normal(size=(10, 2))
    y = (X[:, 0] > 0).astype(int)
    model = LogisticRegression(solver="sgd", max_iter=50, random_state=0)
    model.fit(X, y)
    assert model.score(X, y) >= 0.8


def test_svm_iterates_bounded_weights(noisy_linear_data):
    """Pegasos projection keeps weights in the 1/sqrt(lambda) ball."""
    X_train, y_train, _, _ = noisy_linear_data
    model = LinearSVC(C=1000.0, max_iter=20, random_state=0)
    model.fit(X_train, y_train)
    lam = 1.0 / (1000.0 * X_train.shape[0])
    assert np.linalg.norm(model.coef_) <= 1.0 / np.sqrt(lam) + 1e-6


def test_cross_val_score_deterministic_with_seed(linear_data):
    X_train, y_train, _, _ = linear_data
    a = cross_val_score(
        LogisticRegression(), X_train, y_train, cv=4, random_state=5
    )
    b = cross_val_score(
        LogisticRegression(), X_train, y_train, cv=4, random_state=5
    )
    assert np.array_equal(a, b)


def test_grid_search_custom_scoring(circles_data):
    X_train, y_train, _, _ = circles_data

    def inverted(y_true, y_pred):
        return -f_score(y_true, y_pred)

    search = GridSearchCV(
        DecisionTreeClassifier(random_state=0),
        {"max_depth": [1, 8]},
        cv=3,
        scoring=inverted,
        random_state=0,
    ).fit(X_train, y_train)
    # With an inverted metric the *worst* depth wins.
    assert search.best_params_["max_depth"] == 1


@pytest.mark.parametrize("abbr", sorted(CLASSIFIER_REGISTRY))
def test_registry_names_match_param_protocol(abbr):
    cls = CLASSIFIER_REGISTRY[abbr]
    instance = cls()
    params = instance.get_params()
    # Round-trip: constructing from get_params reproduces identical params.
    clone_like = cls(**params)
    assert clone_like.get_params() == params
