"""Tests for bagging, random forests, AdaBoost and gradient boosting."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learn.ensemble import (
    AdaBoostClassifier,
    BaggingClassifier,
    GradientBoostingClassifier,
    RandomForestClassifier,
)
from repro.learn.linear import LogisticRegression
from repro.learn.metrics import f_score
from repro.learn.tree import DecisionTreeClassifier


class TestBagging:
    def test_prediction_is_member_probability_average(self, noisy_linear_data):
        X_train, y_train, X_test, _ = noisy_linear_data
        bag = BaggingClassifier(n_estimators=9, random_state=0).fit(X_train, y_train)
        member_mean = np.mean(
            [m.predict_proba(X_test)[:, 1] for m in bag.estimators_], axis=0
        )
        assert np.allclose(bag.predict_proba(X_test)[:, 1], member_mean)

    def test_ensemble_size(self, linear_data):
        X_train, y_train, _, _ = linear_data
        bag = BaggingClassifier(n_estimators=7, random_state=0).fit(X_train, y_train)
        assert len(bag.estimators_) == 7

    def test_custom_base_estimator(self, linear_data):
        X_train, y_train, X_test, y_test = linear_data
        bag = BaggingClassifier(
            base_estimator=LogisticRegression(),
            n_estimators=5,
            random_state=0,
        ).fit(X_train, y_train)
        assert bag.score(X_test, y_test) > 0.85

    def test_max_samples_fraction(self, linear_data):
        X_train, y_train, X_test, y_test = linear_data
        bag = BaggingClassifier(
            n_estimators=10, max_samples=0.3, random_state=0
        ).fit(X_train, y_train)
        assert bag.score(X_test, y_test) > 0.7

    def test_invalid_parameters_rejected(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValidationError):
            BaggingClassifier(n_estimators=0).fit(X_train, y_train)
        with pytest.raises(ValidationError):
            BaggingClassifier(max_samples=0.0).fit(X_train, y_train)

    def test_every_bootstrap_sees_both_classes(self):
        # Highly imbalanced data: naive bootstraps often miss class 1.
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 2))
        y = np.zeros(60, dtype=int)
        y[:4] = 1
        X[:4] += 5.0
        bag = BaggingClassifier(n_estimators=20, random_state=0).fit(X, y)
        for member in bag.estimators_:
            assert len(member.classes_) == 2


class TestRandomForest:
    def test_beats_single_tree_on_nonlinear_noise(self, circles_data):
        X_train, y_train, X_test, y_test = circles_data
        forest = RandomForestClassifier(
            n_estimators=30, random_state=0
        ).fit(X_train, y_train)
        assert forest.score(X_test, y_test) > 0.9

    def test_no_bootstrap_mode(self, linear_data):
        X_train, y_train, X_test, y_test = linear_data
        forest = RandomForestClassifier(
            n_estimators=10, bootstrap=False, random_state=0
        ).fit(X_train, y_train)
        assert forest.score(X_test, y_test) > 0.85

    def test_feature_importances_sum_to_one(self, noisy_linear_data):
        X_train, y_train, _, _ = noisy_linear_data
        forest = RandomForestClassifier(n_estimators=10, random_state=0)
        forest.fit(X_train, y_train)
        importances = forest.feature_importances()
        assert importances.sum() == pytest.approx(1.0)
        assert np.all(importances >= 0.0)

    def test_informative_feature_most_important(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(300, 5))
        y = (X[:, 2] > 0).astype(int)
        forest = RandomForestClassifier(n_estimators=20, random_state=0).fit(X, y)
        assert np.argmax(forest.feature_importances()) == 2

    def test_depth_cap_propagates_to_trees(self, circles_data):
        X_train, y_train, _, _ = circles_data
        forest = RandomForestClassifier(
            n_estimators=5, max_depth=3, random_state=0
        ).fit(X_train, y_train)
        assert all(tree.depth() <= 3 for tree in forest.estimators_)

    def test_invalid_n_estimators(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValidationError):
            RandomForestClassifier(n_estimators=0).fit(X_train, y_train)


class TestGradientBoosting:
    def test_learns_nonlinear_concept(self, circles_data):
        X_train, y_train, X_test, y_test = circles_data
        model = GradientBoostingClassifier(
            n_estimators=40, random_state=0
        ).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.9

    def test_more_rounds_reduce_training_loss(self, circles_data):
        X_train, y_train, _, _ = circles_data
        few = GradientBoostingClassifier(n_estimators=2, random_state=0)
        many = GradientBoostingClassifier(n_estimators=40, random_state=0)
        few.fit(X_train, y_train)
        many.fit(X_train, y_train)
        assert many.score(X_train, y_train) >= few.score(X_train, y_train)

    def test_learning_rate_scales_contributions(self, circles_data):
        X_train, y_train, X_test, _ = circles_data
        slow = GradientBoostingClassifier(
            n_estimators=5, learning_rate=0.01, random_state=0
        ).fit(X_train, y_train)
        fast = GradientBoostingClassifier(
            n_estimators=5, learning_rate=1.0, random_state=0
        ).fit(X_train, y_train)
        slow_spread = np.ptp(slow.decision_function(X_test))
        fast_spread = np.ptp(fast.decision_function(X_test))
        assert fast_spread > slow_spread

    def test_subsample_stochastic_boosting(self, circles_data):
        X_train, y_train, X_test, y_test = circles_data
        model = GradientBoostingClassifier(
            n_estimators=30, subsample=0.5, random_state=0
        ).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.85

    def test_initial_score_is_log_odds_of_prior(self):
        X = np.random.default_rng(0).normal(size=(100, 2))
        y = np.array([1] * 75 + [0] * 25)
        model = GradientBoostingClassifier(n_estimators=1, random_state=0).fit(X, y)
        assert model.initial_score_ == pytest.approx(np.log(3.0), rel=1e-6)

    def test_invalid_parameters_rejected(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValidationError):
            GradientBoostingClassifier(n_estimators=0).fit(X_train, y_train)
        with pytest.raises(ValidationError):
            GradientBoostingClassifier(learning_rate=0.0).fit(X_train, y_train)
        with pytest.raises(ValidationError):
            GradientBoostingClassifier(subsample=0.0).fit(X_train, y_train)


class TestAdaBoost:
    def test_stumps_combine_into_nonlinear_model(self, circles_data):
        X_train, y_train, X_test, y_test = circles_data
        model = AdaBoostClassifier(n_estimators=40, random_state=0).fit(X_train, y_train)
        stump = DecisionTreeClassifier(max_depth=1).fit(X_train, y_train)
        assert model.score(X_test, y_test) > stump.score(X_test, y_test)

    def test_weights_are_positive(self, noisy_linear_data):
        X_train, y_train, _, _ = noisy_linear_data
        model = AdaBoostClassifier(n_estimators=10, random_state=0).fit(X_train, y_train)
        assert all(alpha > 0 for alpha in model.estimator_weights_)
        assert len(model.estimators_) == len(model.estimator_weights_)

    def test_f_score_reasonable(self, noisy_linear_data):
        X_train, y_train, X_test, y_test = noisy_linear_data
        model = AdaBoostClassifier(n_estimators=20, random_state=0).fit(X_train, y_train)
        assert f_score(y_test, model.predict(X_test)) > 0.6
