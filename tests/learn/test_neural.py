"""Tests for the MLP classifier."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learn.neural import MLPClassifier


def test_learns_linear_concept(linear_data):
    X_train, y_train, X_test, y_test = linear_data
    model = MLPClassifier(
        hidden_layer_sizes=(16,), max_iter=100, random_state=0
    ).fit(X_train, y_train)
    assert model.score(X_test, y_test) > 0.85


def test_learns_circles(circles_data):
    X_train, y_train, X_test, y_test = circles_data
    model = MLPClassifier(
        hidden_layer_sizes=(32,), max_iter=300, random_state=0
    ).fit(X_train, y_train)
    assert model.score(X_test, y_test) > 0.85


def test_xor_requires_hidden_layer():
    rng = np.random.default_rng(0)
    X = rng.uniform(-1, 1, size=(300, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    model = MLPClassifier(
        hidden_layer_sizes=(16,), max_iter=300, random_state=0
    ).fit(X, y)
    assert model.score(X, y) > 0.9


@pytest.mark.parametrize("activation", ["relu", "tanh", "logistic"])
def test_all_activations_train(activation, linear_data):
    X_train, y_train, X_test, y_test = linear_data
    model = MLPClassifier(
        activation=activation, hidden_layer_sizes=(8,), max_iter=80, random_state=0
    ).fit(X_train, y_train)
    assert model.score(X_test, y_test) > 0.8


@pytest.mark.parametrize("solver", ["adam", "sgd"])
def test_both_solvers_train(solver, linear_data):
    X_train, y_train, X_test, y_test = linear_data
    model = MLPClassifier(
        solver=solver,
        hidden_layer_sizes=(8,),
        max_iter=120,
        learning_rate_init=0.01 if solver == "sgd" else 1e-3,
        random_state=0,
    ).fit(X_train, y_train)
    assert model.score(X_test, y_test) > 0.75


def test_multiple_hidden_layers(linear_data):
    X_train, y_train, X_test, y_test = linear_data
    model = MLPClassifier(
        hidden_layer_sizes=(16, 8), max_iter=100, random_state=0
    ).fit(X_train, y_train)
    assert model.score(X_test, y_test) > 0.8
    assert len(model.weights_) == 3  # two hidden + output


def test_l2_alpha_shrinks_weights(noisy_linear_data):
    X_train, y_train, _, _ = noisy_linear_data
    weak = MLPClassifier(alpha=0.0, max_iter=60, random_state=0).fit(X_train, y_train)
    strong = MLPClassifier(alpha=1.0, max_iter=60, random_state=0).fit(X_train, y_train)
    weak_norm = sum(float(np.abs(w).sum()) for w in weak.weights_)
    strong_norm = sum(float(np.abs(w).sum()) for w in strong.weights_)
    assert strong_norm < weak_norm


def test_early_stopping_records_iterations(linear_data):
    X_train, y_train, _, _ = linear_data
    model = MLPClassifier(
        max_iter=500, tol=1e-2, n_iter_no_change=2, random_state=0
    ).fit(X_train, y_train)
    assert model.n_iter_ < 500


def test_invalid_configuration_rejected(linear_data):
    X_train, y_train, _, _ = linear_data
    with pytest.raises(ValidationError):
        MLPClassifier(activation="swish").fit(X_train, y_train)
    with pytest.raises(ValidationError):
        MLPClassifier(solver="rmsprop").fit(X_train, y_train)
    with pytest.raises(ValidationError):
        MLPClassifier(alpha=-1.0).fit(X_train, y_train)


def test_loss_recorded(linear_data):
    X_train, y_train, _, _ = linear_data
    model = MLPClassifier(max_iter=30, random_state=0).fit(X_train, y_train)
    assert np.isfinite(model.loss_)
    assert model.loss_ >= 0.0
