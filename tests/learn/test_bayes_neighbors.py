"""Tests for Naive Bayes variants and k-Nearest Neighbors."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learn.bayes import BernoulliNB, GaussianNB
from repro.learn.neighbors import KNeighborsClassifier


class TestGaussianNB:
    def test_learns_gaussian_classes(self):
        rng = np.random.default_rng(0)
        X = np.vstack([
            rng.normal(loc=-2.0, size=(100, 2)),
            rng.normal(loc=2.0, size=(100, 2)),
        ])
        y = np.repeat([0, 1], 100)
        model = GaussianNB().fit(X, y)
        assert model.score(X, y) > 0.95

    def test_estimates_class_means(self):
        X = np.array([[0.0], [0.2], [10.0], [10.2]])
        y = np.array([0, 0, 1, 1])
        model = GaussianNB().fit(X, y)
        assert model.theta_[0, 0] == pytest.approx(0.1)
        assert model.theta_[1, 0] == pytest.approx(10.1)

    def test_empirical_prior(self):
        X = np.array([[0.0], [0.1], [0.2], [10.0]])
        y = np.array([0, 0, 0, 1])
        model = GaussianNB().fit(X, y)
        assert model.class_prior_.tolist() == [0.75, 0.25]

    def test_explicit_priors_validated(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValidationError, match="priors"):
            GaussianNB(priors=(0.9, 0.9)).fit(X_train, y_train)

    def test_uniform_prior_changes_boundary_on_imbalanced_data(self):
        rng = np.random.default_rng(1)
        X = np.vstack([
            rng.normal(loc=-1.0, size=(180, 1)),
            rng.normal(loc=1.0, size=(20, 1)),
        ])
        y = np.repeat([0, 1], [180, 20])
        empirical = GaussianNB().fit(X, y)
        uniform = GaussianNB(priors=(0.5, 0.5)).fit(X, y)
        probe = np.array([[0.0]])
        assert (
            uniform.predict_proba(probe)[0, 1]
            > empirical.predict_proba(probe)[0, 1]
        )

    def test_var_smoothing_guards_constant_features(self):
        X = np.array([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0], [4.0, 5.0]])
        y = np.array([0, 0, 1, 1])
        model = GaussianNB().fit(X, y)
        assert np.all(np.isfinite(model.predict_proba(X)))

    def test_negative_smoothing_rejected(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValidationError):
            GaussianNB(var_smoothing=-1.0).fit(X_train, y_train)


class TestBernoulliNB:
    def test_learns_binary_patterns(self):
        rng = np.random.default_rng(2)
        n = 200
        X = rng.random((n, 4))
        y = (X[:, 0] > 0.5).astype(int)
        X_bin = (X > 0.5).astype(float)
        model = BernoulliNB().fit(X_bin, y)
        assert model.score(X_bin, y) > 0.95

    def test_smoothing_prevents_zero_probabilities(self):
        X = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0], [0.0, 1.0]])
        y = np.array([0, 0, 1, 1])
        model = BernoulliNB(alpha=1.0).fit(X, y)
        assert np.all(np.isfinite(model.feature_log_prob_))

    def test_negative_alpha_rejected(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValidationError):
            BernoulliNB(alpha=-0.5).fit(X_train, y_train)


class TestKNN:
    def test_one_neighbor_memorizes_training_set(self, linear_data):
        X_train, y_train, _, _ = linear_data
        model = KNeighborsClassifier(n_neighbors=1).fit(X_train, y_train)
        assert model.score(X_train, y_train) == 1.0

    def test_k_larger_than_dataset_is_clamped(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0, 0, 1, 1])
        model = KNeighborsClassifier(n_neighbors=50).fit(X, y)
        predictions = model.predict(np.array([[1.5]]))
        assert predictions.shape == (1,)

    def test_distance_weighting_prefers_closer_neighbors(self):
        # Two class-0 points far away, one class-1 point very close.
        X = np.array([[0.0], [10.0], [10.2]])
        y = np.array([1, 0, 0])
        model = KNeighborsClassifier(n_neighbors=3, weights="distance").fit(X, y)
        assert model.predict(np.array([[0.1]]))[0] == 1
        uniform = KNeighborsClassifier(n_neighbors=3, weights="uniform").fit(X, y)
        assert uniform.predict(np.array([[0.1]]))[0] == 0

    def test_exact_match_dominates_distance_vote(self):
        X = np.array([[0.0], [0.1], [0.2]])
        y = np.array([1, 0, 0])
        model = KNeighborsClassifier(n_neighbors=3, weights="distance").fit(X, y)
        assert model.predict(np.array([[0.0]]))[0] == 1

    def test_manhattan_vs_euclidean_changes_neighbors(self):
        X = np.array([[0.0, 0.0], [3.0, 0.0], [2.2, 2.2]])
        y = np.array([0, 1, 1])
        query = np.array([[1.9, 1.9]])
        euclid = KNeighborsClassifier(n_neighbors=1, p=2.0).fit(X, y)
        manhattan = KNeighborsClassifier(n_neighbors=1, p=1.0).fit(X, y)
        # d_euclid(query, [3,0]) ≈ 2.2 > d_euclid(query, [2.2,2.2]) ≈ 0.42
        assert euclid.predict(query)[0] == 1
        assert manhattan.predict(query)[0] == 1

    def test_chunked_prediction_matches_small_batches(self, linear_data):
        X_train, y_train, X_test, _ = linear_data
        model = KNeighborsClassifier(n_neighbors=3).fit(X_train, y_train)
        whole = model.predict(X_test)
        pieces = np.concatenate([model.predict(X_test[i : i + 7]) for i in range(0, len(X_test), 7)])
        assert np.array_equal(whole, pieces)

    def test_invalid_parameters_rejected(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValidationError):
            KNeighborsClassifier(n_neighbors=0).fit(X_train, y_train)
        with pytest.raises(ValidationError):
            KNeighborsClassifier(weights="magic").fit(X_train, y_train)
        with pytest.raises(ValidationError):
            KNeighborsClassifier(p=-1.0).fit(X_train, y_train)

    def test_knn_solves_circles(self, circles_data):
        X_train, y_train, X_test, y_test = circles_data
        model = KNeighborsClassifier(n_neighbors=5).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.9
