"""Additional property-based tests: encoders, grids, ensembles, metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.controls import Configuration
from repro.core.results import ExperimentResult, ResultStore
from repro.learn.metrics import MetricSummary, roc_auc_score
from repro.learn.model_selection import ParameterGrid, StratifiedKFold
from repro.learn.preprocessing import OrdinalEncoder, QuantileBinningTransform

# -- ordinal encoder ---------------------------------------------------------

category_columns = st.lists(
    st.sampled_from(["red", "green", "blue", "cyan", "mauve"]),
    min_size=3, max_size=40,
)


@given(category_columns)
def test_encoder_codes_are_dense_one_based(values):
    X = np.array(values, dtype=object).reshape(-1, 1)
    Z = OrdinalEncoder().fit_transform(X)
    codes = set(np.unique(Z))
    n = len(set(values))
    assert codes == set(range(1, n + 1))


@given(category_columns)
def test_encoder_is_consistent_per_category(values):
    X = np.array(values, dtype=object).reshape(-1, 1)
    Z = OrdinalEncoder().fit_transform(X).ravel()
    mapping = {}
    for value, code in zip(values, Z):
        assert mapping.setdefault(value, code) == code


# -- quantile binning ---------------------------------------------------------


@given(
    st.lists(st.floats(-1e6, 1e6, allow_nan=False, width=64),
             min_size=4, max_size=60),
    st.integers(2, 12),
)
@settings(max_examples=50)
def test_binning_one_hot_per_feature(values, n_bins):
    X = np.array(values).reshape(-1, 1)
    Z = QuantileBinningTransform(n_bins=n_bins).fit_transform(X)
    assert np.allclose(Z.sum(axis=1), 1.0)
    assert Z.shape[0] == X.shape[0]


# -- parameter grid -----------------------------------------------------------

grids = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]),
    st.lists(st.integers(0, 5), min_size=1, max_size=4, unique=True),
    min_size=0, max_size=4,
)


@given(grids)
def test_parameter_grid_length_matches_iteration(grid):
    pg = ParameterGrid(grid)
    combos = list(pg)
    assert len(combos) == len(pg)
    # All combos unique.
    seen = {tuple(sorted(c.items())) for c in combos}
    assert len(seen) == len(combos)


@given(grids)
def test_parameter_grid_every_combo_within_domain(grid):
    for combo in ParameterGrid(grid):
        assert set(combo) == set(grid)
        for name, value in combo.items():
            assert value in grid[name]


# -- stratified k-fold ---------------------------------------------------------


@given(
    st.integers(12, 60),
    st.floats(0.2, 0.8),
    st.integers(2, 4),
    st.integers(0, 10_000),
)
@settings(max_examples=40)
def test_stratified_kfold_partition_and_balance(n, positive_rate, k, seed):
    rng = np.random.default_rng(seed)
    y = (rng.random(n) < positive_rate).astype(int)
    y[:2] = [0, 1]  # guarantee both classes
    X = np.zeros((n, 1))
    seen = []
    for train, test in StratifiedKFold(n_splits=k, random_state=seed).split(X, y):
        assert len(np.intersect1d(train, test)) == 0
        seen.extend(test.tolist())
    assert sorted(seen) == list(range(n))


# -- ROC AUC -------------------------------------------------------------------


@given(
    st.lists(st.tuples(st.integers(0, 1),
                       st.floats(0, 1, allow_nan=False, width=64)),
             min_size=4, max_size=60)
    .filter(lambda pairs: len({label for label, _ in pairs}) == 2)
)
def test_roc_auc_complement_symmetry(pairs):
    y = np.array([label for label, _ in pairs])
    scores = np.array([score for _, score in pairs])
    auc = roc_auc_score(y, scores)
    flipped = roc_auc_score(y, -scores)
    assert 0.0 <= auc <= 1.0
    assert auc + flipped == np.float64(1.0) or abs(auc + flipped - 1.0) < 1e-9


# -- result store --------------------------------------------------------------


@given(st.lists(
    st.tuples(
        st.sampled_from(["p1", "p2"]),
        st.sampled_from(["d1", "d2", "d3"]),
        st.floats(0, 1, allow_nan=False, width=64),
        st.booleans(),
    ),
    min_size=0, max_size=30,
))
def test_result_store_mean_is_average_of_per_dataset_maxima(rows):
    store = ResultStore()
    for i, (platform, dataset, f, ok) in enumerate(rows):
        store.add(ExperimentResult(
            platform=platform,
            dataset=dataset,
            configuration=Configuration.make(classifier="LR", params={"i": i}),
            metrics=MetricSummary(f, f, f, f),
            status="ok" if ok else "failed",
        ))
    for platform in store.platforms():
        sub = store.for_platform(platform)
        expected = {}
        for p, d, f, ok in rows:
            if p == platform and ok:
                expected[d] = max(expected.get(d, -1.0), f)
        if expected:
            assert sub.mean_score() == np.mean(list(expected.values()))
        else:
            assert np.isnan(sub.mean_score())
