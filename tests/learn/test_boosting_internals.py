"""Internal behaviours of gradient boosting's regression-tree machinery."""

import numpy as np
import pytest

from repro.learn.ensemble import GradientBoostingClassifier
from repro.learn.ensemble.boosting import _RegressionTree


@pytest.fixture()
def residual_problem(rng):
    X = rng.uniform(-1, 1, size=(200, 3))
    residual = np.where(X[:, 0] > 0, 0.5, -0.5) + 0.01 * rng.normal(size=200)
    hessian = np.full(200, 0.25)
    return X, residual, hessian


def test_regression_tree_finds_residual_structure(residual_problem, rng):
    X, residual, hessian = residual_problem
    tree = _RegressionTree(max_depth=2, min_samples_leaf=1,
                           max_features=None, rng=rng)
    tree.fit(X, residual, hessian)
    predictions = tree.predict(X)
    # Newton leaf values approximate residual/hessian means per region.
    positive = X[:, 0] > 0
    assert predictions[positive].mean() > 0.0
    assert predictions[~positive].mean() < 0.0


def test_leaf_value_is_newton_step(rng):
    X = np.zeros((4, 1))
    residual = np.array([1.0, 1.0, 2.0, 2.0])
    hessian = np.array([0.5, 0.5, 0.5, 0.5])
    tree = _RegressionTree(max_depth=1, min_samples_leaf=1,
                           max_features=None, rng=rng)
    tree.fit(X, residual, hessian)  # constant feature: single leaf
    assert tree.predict(np.zeros((1, 1)))[0] == pytest.approx(
        residual.sum() / hessian.sum()
    )


def test_zero_hessian_leaf_returns_zero(rng):
    X = np.zeros((3, 1))
    tree = _RegressionTree(max_depth=1, min_samples_leaf=1,
                           max_features=None, rng=rng)
    tree.fit(X, np.array([1.0, 2.0, 3.0]), np.zeros(3))
    assert tree.predict(np.zeros((1, 1)))[0] == 0.0


def test_boosting_decision_function_accumulates(circles_data):
    X_train, y_train, X_test, _ = circles_data
    few = GradientBoostingClassifier(n_estimators=3, random_state=0)
    few.fit(X_train, y_train)
    partial = np.full(X_test.shape[0], few.initial_score_)
    for tree in few.trees_:
        partial += few.learning_rate * tree.predict(X_test)
    assert np.allclose(partial, few.decision_function(X_test))


def test_boosting_with_min_leaf_regularizes(circles_data):
    X_train, y_train, _, _ = circles_data
    loose = GradientBoostingClassifier(
        n_estimators=20, min_samples_leaf=1, random_state=0
    ).fit(X_train, y_train)
    tight = GradientBoostingClassifier(
        n_estimators=20, min_samples_leaf=30, random_state=0
    ).fit(X_train, y_train)
    # A large leaf minimum restricts fitting capacity on the train set.
    assert tight.score(X_train, y_train) <= loose.score(X_train, y_train) + 1e-9


def test_boosting_feature_subsampling_changes_trees(circles_data):
    X_train, y_train, X_test, _ = circles_data
    full = GradientBoostingClassifier(
        n_estimators=10, max_features=None, random_state=0
    ).fit(X_train, y_train)
    sub = GradientBoostingClassifier(
        n_estimators=10, max_features=1, random_state=0
    ).fit(X_train, y_train)
    assert not np.allclose(
        full.decision_function(X_test), sub.decision_function(X_test)
    )
