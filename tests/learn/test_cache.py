"""Unit tests for the content-keyed fit cache and seed derivation."""

import copy

import numpy as np

from repro.learn import FitCache, Pipeline, array_digest, derive_candidate_seed
from repro.learn.cache import params_token
from repro.learn.feature_selection import SelectKBest
from repro.learn.linear import LogisticRegression
from repro.learn.preprocessing import StandardScaler
from repro.learn.tree import DecisionTreeClassifier


def make_data(seed=0, n=80, f=6):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, f))
    y = (X[:, 0] - X[:, 1] > 0).astype(int)
    return X, y


class TestArrayDigest:
    def test_content_determines_digest(self):
        a = np.arange(12.0).reshape(3, 4)
        assert array_digest(a) == array_digest(a.copy())

    def test_digest_sees_values_dtype_and_shape(self):
        a = np.arange(12.0).reshape(3, 4)
        assert array_digest(a) != array_digest(a.reshape(4, 3))
        assert array_digest(a) != array_digest(a.astype(np.float32))
        b = a.copy()
        b[0, 0] += 1.0
        assert array_digest(a) != array_digest(b)

    def test_non_contiguous_input(self):
        a = np.arange(24.0).reshape(4, 6)
        assert array_digest(a[:, ::2]) == array_digest(a[:, ::2].copy())


class TestParamsToken:
    def test_nested_estimator_expansion(self):
        token = params_token(DecisionTreeClassifier(max_depth=3))
        assert "DecisionTreeClassifier" in token
        assert "max_depth=3" in token

    def test_generators_with_distinct_state_differ(self):
        a = np.random.default_rng(1)
        b = np.random.default_rng(2)
        assert params_token(a) != params_token(b)
        c = np.random.default_rng(1)
        assert params_token(a) == params_token(c)

    def test_dict_order_independent(self):
        assert params_token({"a": 1, "b": 2}) == params_token({"b": 2, "a": 1})


class TestDeriveCandidateSeed:
    def test_deterministic_and_label_sensitive(self):
        assert derive_candidate_seed(0, "grid:0") == derive_candidate_seed(
            0, "grid:0"
        )
        assert derive_candidate_seed(0, "grid:0") != derive_candidate_seed(
            0, "grid:1"
        )
        assert derive_candidate_seed(0, "grid:0") != derive_candidate_seed(
            1, "grid:0"
        )

    def test_valid_generator_seed(self):
        seed = derive_candidate_seed(7, "grid:3")
        assert seed >= 0
        np.random.default_rng(seed)  # must be a legal seed


class TestFitCache:
    def test_hit_on_identical_content(self):
        X, y = make_data()
        cache = FitCache()
        first = cache.fit_transform(SelectKBest(k=3), X, y)
        second = cache.fit_transform(SelectKBest(k=3), X.copy(), y.copy())
        assert cache.misses == 1
        assert cache.hits == 1
        assert first[0] is second[0]
        assert np.array_equal(first[1], second[1])

    def test_miss_on_different_params_or_data(self):
        X, y = make_data()
        cache = FitCache()
        cache.fit_transform(SelectKBest(k=3), X, y)
        cache.fit_transform(SelectKBest(k=4), X, y)
        cache.fit_transform(SelectKBest(k=3), X + 1.0, y)
        assert cache.misses == 3
        assert cache.hits == 0
        assert len(cache) == 3

    def test_cached_output_matches_uncached(self):
        X, y = make_data(3)
        cache = FitCache()
        _, transformed = cache.fit_transform(StandardScaler(), X, y)
        expected = StandardScaler().fit(X, y).transform(X)
        assert np.array_equal(transformed, expected)

    def test_deepcopy_shares_the_store(self):
        cache = FitCache()
        assert copy.deepcopy(cache) is cache

    def test_clone_of_pipeline_keeps_cache(self):
        from repro.learn.base import clone

        cache = FitCache()
        pipeline = Pipeline(
            [("scale", StandardScaler()), ("clf", LogisticRegression())],
            memory=cache,
        )
        assert clone(pipeline).memory is cache

    def test_cached_pipeline_matches_uncached(self):
        X, y = make_data(5)
        steps = [("scale", StandardScaler()),
                 ("clf", LogisticRegression(max_iter=50))]
        cached = Pipeline(list(steps), memory=FitCache()).fit(X, y)
        plain = Pipeline(list(steps)).fit(X, y)
        assert np.array_equal(cached.predict(X), plain.predict(X))
        assert np.array_equal(cached.predict_proba(X), plain.predict_proba(X))


def _shard_stats(n):
    """Module-level worker: exercise a fresh cache in a child process."""
    X, y = make_data(seed=n)
    cache = FitCache()
    cache.fit_transform(SelectKBest(k=3), X, y)
    cache.fit_transform(SelectKBest(k=3), X.copy(), y.copy())
    return cache.stats()


class TestDigestMemo:
    def test_memo_returns_uncached_digest(self):
        from repro.learn.cache import (
            _DIGEST_MEMO,
            _DIGEST_MEMO_LOCK,
            _uncached_digest,
        )

        X, _ = make_data(11)
        with _DIGEST_MEMO_LOCK:
            _DIGEST_MEMO.pop(id(X), None)
        cold = array_digest(X)           # computes and memoizes
        warm = array_digest(X)           # served from the memo
        assert cold == warm == _uncached_digest(X)
        with _DIGEST_MEMO_LOCK:
            assert id(X) in _DIGEST_MEMO

    def test_memo_distinguishes_live_arrays(self):
        X, _ = make_data(12)
        other = X + 1.0
        assert array_digest(X) != array_digest(other)
        # Repeated calls stay stable per object.
        assert array_digest(X) == array_digest(X)
        assert array_digest(other) == array_digest(other)

    def test_fit_cache_keys_unchanged_by_memoization(self):
        from repro.learn.cache import _DIGEST_MEMO, _DIGEST_MEMO_LOCK

        X, y = make_data(13)
        cache = FitCache()
        estimator = SelectKBest(k=3)
        warm_key = cache.key(estimator, X, y)
        with _DIGEST_MEMO_LOCK:
            _DIGEST_MEMO.clear()
        assert cache.key(estimator, X, y) == warm_key

    def test_dead_entries_are_purged_not_resurrected(self):
        import gc

        from repro.learn.cache import _DIGEST_MEMO, _DIGEST_MEMO_LOCK

        X, _ = make_data(14)
        key = id(X)
        array_digest(X)
        del X
        gc.collect()
        with _DIGEST_MEMO_LOCK:
            entry = _DIGEST_MEMO.get(key)
        # The weakref is dead: a recycled id can never alias this entry.
        assert entry is None or entry[0]() is None


class TestFitCacheAcrossProcesses:
    def test_pickle_roundtrip_preserves_counts(self):
        import pickle

        X, y = make_data(20)
        cache = FitCache()
        cache.fit_transform(SelectKBest(k=3), X, y)
        cache.fit_transform(SelectKBest(k=3), X.copy(), y.copy())
        clone_cache = pickle.loads(pickle.dumps(cache))
        assert clone_cache.stats() == cache.stats()
        assert clone_cache.hits == 1 and clone_cache.misses == 1
        # The lock is recreated, so the revived cache still works.
        before = clone_cache.stats()["entries"]
        clone_cache.fit_transform(SelectKBest(k=3), X, y)
        assert clone_cache.hits == 2
        assert clone_cache.stats()["entries"] == before

    def test_cross_process_stats_merge(self):
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=2) as pool:
            shard_stats = list(pool.map(_shard_stats, range(3)))
        parent = FitCache()
        for stats in shard_stats:
            parent.merge_counts(stats)
        assert parent.hits == 3
        assert parent.misses == 3
        assert len(parent) == 0   # entries never cross the boundary

    def test_merge_counts_accepts_cache_or_mapping(self):
        X, y = make_data(21)
        donor = FitCache()
        donor.fit_transform(SelectKBest(k=3), X, y)
        donor.fit_transform(SelectKBest(k=3), X.copy(), y.copy())
        target = FitCache()
        target.merge_counts(donor)
        target.merge_counts({"entries": 9, "hits": 4, "misses": 2})
        assert target.stats() == {"entries": 0, "hits": 5, "misses": 3}

    def test_clear_keeps_counters(self):
        X, y = make_data(22)
        cache = FitCache()
        cache.fit_transform(SelectKBest(k=3), X, y)
        cache.fit_transform(SelectKBest(k=3), X.copy(), y.copy())
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {"entries": 0, "hits": 1, "misses": 1}
