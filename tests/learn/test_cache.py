"""Unit tests for the content-keyed fit cache and seed derivation."""

import copy

import numpy as np

from repro.learn import FitCache, Pipeline, array_digest, derive_candidate_seed
from repro.learn.cache import params_token
from repro.learn.feature_selection import SelectKBest
from repro.learn.linear import LogisticRegression
from repro.learn.preprocessing import StandardScaler
from repro.learn.tree import DecisionTreeClassifier


def make_data(seed=0, n=80, f=6):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, f))
    y = (X[:, 0] - X[:, 1] > 0).astype(int)
    return X, y


class TestArrayDigest:
    def test_content_determines_digest(self):
        a = np.arange(12.0).reshape(3, 4)
        assert array_digest(a) == array_digest(a.copy())

    def test_digest_sees_values_dtype_and_shape(self):
        a = np.arange(12.0).reshape(3, 4)
        assert array_digest(a) != array_digest(a.reshape(4, 3))
        assert array_digest(a) != array_digest(a.astype(np.float32))
        b = a.copy()
        b[0, 0] += 1.0
        assert array_digest(a) != array_digest(b)

    def test_non_contiguous_input(self):
        a = np.arange(24.0).reshape(4, 6)
        assert array_digest(a[:, ::2]) == array_digest(a[:, ::2].copy())


class TestParamsToken:
    def test_nested_estimator_expansion(self):
        token = params_token(DecisionTreeClassifier(max_depth=3))
        assert "DecisionTreeClassifier" in token
        assert "max_depth=3" in token

    def test_generators_with_distinct_state_differ(self):
        a = np.random.default_rng(1)
        b = np.random.default_rng(2)
        assert params_token(a) != params_token(b)
        c = np.random.default_rng(1)
        assert params_token(a) == params_token(c)

    def test_dict_order_independent(self):
        assert params_token({"a": 1, "b": 2}) == params_token({"b": 2, "a": 1})


class TestDeriveCandidateSeed:
    def test_deterministic_and_label_sensitive(self):
        assert derive_candidate_seed(0, "grid:0") == derive_candidate_seed(
            0, "grid:0"
        )
        assert derive_candidate_seed(0, "grid:0") != derive_candidate_seed(
            0, "grid:1"
        )
        assert derive_candidate_seed(0, "grid:0") != derive_candidate_seed(
            1, "grid:0"
        )

    def test_valid_generator_seed(self):
        seed = derive_candidate_seed(7, "grid:3")
        assert seed >= 0
        np.random.default_rng(seed)  # must be a legal seed


class TestFitCache:
    def test_hit_on_identical_content(self):
        X, y = make_data()
        cache = FitCache()
        first = cache.fit_transform(SelectKBest(k=3), X, y)
        second = cache.fit_transform(SelectKBest(k=3), X.copy(), y.copy())
        assert cache.misses == 1
        assert cache.hits == 1
        assert first[0] is second[0]
        assert np.array_equal(first[1], second[1])

    def test_miss_on_different_params_or_data(self):
        X, y = make_data()
        cache = FitCache()
        cache.fit_transform(SelectKBest(k=3), X, y)
        cache.fit_transform(SelectKBest(k=4), X, y)
        cache.fit_transform(SelectKBest(k=3), X + 1.0, y)
        assert cache.misses == 3
        assert cache.hits == 0
        assert len(cache) == 3

    def test_cached_output_matches_uncached(self):
        X, y = make_data(3)
        cache = FitCache()
        _, transformed = cache.fit_transform(StandardScaler(), X, y)
        expected = StandardScaler().fit(X, y).transform(X)
        assert np.array_equal(transformed, expected)

    def test_deepcopy_shares_the_store(self):
        cache = FitCache()
        assert copy.deepcopy(cache) is cache

    def test_clone_of_pipeline_keeps_cache(self):
        from repro.learn.base import clone

        cache = FitCache()
        pipeline = Pipeline(
            [("scale", StandardScaler()), ("clf", LogisticRegression())],
            memory=cache,
        )
        assert clone(pipeline).memory is cache

    def test_cached_pipeline_matches_uncached(self):
        X, y = make_data(5)
        steps = [("scale", StandardScaler()),
                 ("clf", LogisticRegression(max_iter=50))]
        cached = Pipeline(list(steps), memory=FitCache()).fit(X, y)
        plain = Pipeline(list(steps)).fit(X, y)
        assert np.array_equal(cached.predict(X), plain.predict(X))
        assert np.array_equal(cached.predict_proba(X), plain.predict_proba(X))
