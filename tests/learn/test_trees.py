"""Tests for CART decision trees and Decision Jungles."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learn.tree import (
    DecisionJungleClassifier,
    DecisionTreeClassifier,
    entropy_impurity,
    gini_impurity,
)
from repro.learn.tree.cart import find_best_split
from repro.learn.tree.criteria import criterion_function


class TestCriteria:
    def test_gini_extremes(self):
        assert gini_impurity(np.array(0.0)) == 0.0
        assert gini_impurity(np.array(1.0)) == 0.0
        assert gini_impurity(np.array(0.5)) == pytest.approx(0.5)

    def test_entropy_extremes(self):
        assert entropy_impurity(np.array(0.0)) == pytest.approx(0.0, abs=1e-9)
        assert entropy_impurity(np.array(0.5)) == pytest.approx(np.log(2))

    def test_both_maximized_at_half(self):
        p = np.linspace(0.01, 0.99, 99)
        for impurity in (gini_impurity, entropy_impurity):
            values = impurity(p)
            assert np.argmax(values) == len(p) // 2

    def test_unknown_criterion_rejected(self):
        with pytest.raises(ValueError):
            criterion_function("misclassification")


class TestFindBestSplit:
    def test_finds_obvious_threshold(self):
        X = np.array([[1.0], [2.0], [3.0], [10.0], [11.0], [12.0]])
        y01 = np.array([0.0, 0.0, 0.0, 1.0, 1.0, 1.0])
        split = find_best_split(X, y01, np.array([0]), gini_impurity, 1)
        feature, threshold, gain = split
        assert feature == 0
        assert 3.0 <= threshold < 10.0
        assert gain == pytest.approx(0.5)

    def test_pure_node_returns_none(self):
        X = np.array([[1.0], [2.0]])
        assert find_best_split(X, np.array([1.0, 1.0]), np.array([0]), gini_impurity, 1) is None

    def test_constant_feature_returns_none(self):
        X = np.ones((6, 1))
        y01 = np.array([0.0, 1.0, 0.0, 1.0, 0.0, 1.0])
        assert find_best_split(X, y01, np.array([0]), gini_impurity, 1) is None

    def test_min_samples_leaf_restricts_positions(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y01 = np.array([0.0] * 1 + [1.0] * 9)  # best unrestricted split at 0|1
        split = find_best_split(X, y01, np.array([0]), gini_impurity, 3)
        _, threshold, _ = split
        # Both children must keep >= 3 samples.
        left = np.sum(X.ravel() <= threshold)
        assert 3 <= left <= 7


class TestDecisionTree:
    def test_fits_xor_perfectly(self):
        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0, 1, 1, 0])
        model = DecisionTreeClassifier().fit(X, y)
        assert np.array_equal(model.predict(X), y)

    def test_max_depth_limits_tree(self, circles_data):
        X_train, y_train, _, _ = circles_data
        shallow = DecisionTreeClassifier(max_depth=2).fit(X_train, y_train)
        assert shallow.depth() <= 2
        deep = DecisionTreeClassifier(max_depth=8).fit(X_train, y_train)
        assert deep.depth() > shallow.depth()

    def test_min_samples_leaf_respected(self, circles_data):
        X_train, y_train, _, _ = circles_data
        model = DecisionTreeClassifier(min_samples_leaf=20).fit(X_train, y_train)
        stack = [model.tree_]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert node.n_samples >= 20 or node.depth == 0
            else:
                stack.extend([node.left, node.right])

    def test_entropy_criterion_works(self, circles_data):
        X_train, y_train, X_test, y_test = circles_data
        model = DecisionTreeClassifier(criterion="entropy").fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.85

    def test_max_features_sqrt_randomizes(self, noisy_linear_data):
        X_train, y_train, X_test, _ = noisy_linear_data
        a = DecisionTreeClassifier(max_features="sqrt", random_state=1).fit(X_train, y_train)
        b = DecisionTreeClassifier(max_features="sqrt", random_state=2).fit(X_train, y_train)
        # Different seeds explore different feature subsets -> different trees.
        assert not np.array_equal(a.predict(X_test), b.predict(X_test)) or a.n_leaves() != b.n_leaves()

    def test_invalid_parameters_rejected(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(max_depth=0).fit(X_train, y_train)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(min_samples_split=1).fit(X_train, y_train)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(min_samples_leaf=0).fit(X_train, y_train)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(max_features=0).fit(X_train, y_train)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(max_features=1.5).fit(X_train, y_train)

    def test_duplicate_points_with_conflicting_labels(self):
        X = np.array([[1.0], [1.0], [1.0], [2.0]])
        y = np.array([0, 1, 0, 1])
        model = DecisionTreeClassifier().fit(X, y)
        # Must not crash; majority at x=1 is class 0.
        assert model.predict(np.array([[1.0]]))[0] == 0

    def test_probability_equals_leaf_fraction(self):
        X = np.array([[0.0], [0.0], [0.0], [5.0]])
        y = np.array([0, 0, 1, 1])
        model = DecisionTreeClassifier(max_depth=1).fit(X, y)
        proba = model.predict_proba(np.array([[0.0]]))
        assert proba[0, 1] == pytest.approx(1 / 3)

    def test_leaf_count_positive(self, linear_data):
        X_train, y_train, _, _ = linear_data
        model = DecisionTreeClassifier(max_depth=3).fit(X_train, y_train)
        assert 1 <= model.n_leaves() <= 2**3


class TestDecisionJungle:
    def test_learns_nonlinear_concept(self, circles_data):
        X_train, y_train, X_test, y_test = circles_data
        model = DecisionJungleClassifier(
            n_dags=4, max_depth=6, max_width=8, merge_rounds=32, random_state=0
        ).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.8

    def test_width_cap_respected(self, circles_data):
        X_train, y_train, _, _ = circles_data
        model = DecisionJungleClassifier(
            n_dags=1, max_depth=6, max_width=4, merge_rounds=16, random_state=0
        ).fit(X_train, y_train)
        for level in model.dags_[0].levels:
            assert len(level) <= 4

    def test_number_of_dags(self, linear_data):
        X_train, y_train, _, _ = linear_data
        model = DecisionJungleClassifier(n_dags=3, random_state=0).fit(X_train, y_train)
        assert len(model.dags_) == 3

    def test_narrow_jungle_caps_every_level(self, circles_data):
        # The defining property of a jungle: a level never exceeds the
        # width cap, however many splits the previous level proposed.
        X_train, y_train, _, _ = circles_data
        narrow = DecisionJungleClassifier(
            n_dags=2, max_depth=8, max_width=2, merge_rounds=64, random_state=0
        ).fit(X_train, y_train)
        for dag in narrow.dags_:
            assert all(len(level) <= 2 for level in dag.levels[1:])
        # And a narrow jungle has at most as many nodes per level as a
        # wide one at the same depth.
        wide = DecisionJungleClassifier(
            n_dags=2, max_depth=8, max_width=32, merge_rounds=64, random_state=0
        ).fit(X_train, y_train)
        widest_narrow = max(len(l) for dag in narrow.dags_ for l in dag.levels)
        widest_wide = max(len(l) for dag in wide.dags_ for l in dag.levels)
        assert widest_narrow <= widest_wide

    def test_invalid_parameters_rejected(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValidationError):
            DecisionJungleClassifier(n_dags=0).fit(X_train, y_train)
        with pytest.raises(ValidationError):
            DecisionJungleClassifier(max_width=0).fit(X_train, y_train)

    def test_replicate_resampling_supported(self, linear_data):
        X_train, y_train, X_test, y_test = linear_data
        model = DecisionJungleClassifier(
            n_dags=2, bootstrap=False, random_state=0
        ).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.7
