"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.learn.metrics import (
    accuracy_score,
    classification_summary,
    f_score,
    precision_score,
    recall_score,
)
from repro.learn.model_selection import train_test_split
from repro.learn.preprocessing import (
    L2Normalizer,
    MaxAbsScaler,
    MedianImputer,
    MinMaxScaler,
    StandardScaler,
)
from repro.learn.tree import DecisionTreeClassifier
from repro.analysis.subsets import expected_max_of_subset

# -- label strategies ------------------------------------------------------

labels = st.lists(st.integers(0, 1), min_size=2, max_size=60).filter(
    lambda values: len(set(values)) == 2
)


@st.composite
def label_pairs(draw):
    y_true = draw(labels)
    y_pred = draw(
        st.lists(st.integers(0, 1), min_size=len(y_true), max_size=len(y_true))
    )
    return np.array(y_true), np.array(y_pred)


@given(label_pairs())
def test_metrics_bounded_in_unit_interval(pair):
    y_true, y_pred = pair
    for metric in (accuracy_score, precision_score, recall_score, f_score):
        value = metric(y_true, y_pred)
        assert 0.0 <= value <= 1.0


@given(label_pairs())
def test_f_score_between_min_and_max_of_precision_recall(pair):
    y_true, y_pred = pair
    precision = precision_score(y_true, y_pred)
    recall = recall_score(y_true, y_pred)
    f1 = f_score(y_true, y_pred)
    assert min(precision, recall) - 1e-12 <= f1 <= max(precision, recall) + 1e-12


@given(labels)
def test_perfect_prediction_always_scores_one(values):
    y = np.array(values)
    summary = classification_summary(y, y)
    assert summary.f_score == 1.0
    assert summary.accuracy == 1.0


@given(label_pairs())
def test_accuracy_is_symmetric_under_label_swap(pair):
    y_true, y_pred = pair
    swapped_true, swapped_pred = 1 - y_true, 1 - y_pred
    assert accuracy_score(y_true, y_pred) == accuracy_score(swapped_true, swapped_pred)


# -- transformer properties -------------------------------------------------

matrices = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 25), st.integers(1, 6)),
    elements=st.floats(-1e6, 1e6, allow_nan=False, width=64),
)


@given(matrices)
@settings(max_examples=50)
def test_standard_scaler_output_centered(X):
    Z = StandardScaler().fit_transform(X)
    assert np.all(np.isfinite(Z))
    assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-6)


@given(matrices)
@settings(max_examples=50)
def test_minmax_scaler_output_in_unit_interval(X):
    Z = MinMaxScaler().fit_transform(X)
    assert Z.min() >= -1e-9
    assert Z.max() <= 1.0 + 1e-9


@given(matrices)
@settings(max_examples=50)
def test_maxabs_scaler_bounded_by_one(X):
    Z = MaxAbsScaler().fit_transform(X)
    assert np.abs(Z).max() <= 1.0 + 1e-9


@given(matrices)
@settings(max_examples=50)
def test_l2_normalizer_rows_at_most_unit(X):
    Z = L2Normalizer().fit_transform(X)
    norms = np.linalg.norm(Z, axis=1)
    assert np.all(norms <= 1.0 + 1e-9)


@given(matrices, st.floats(0.0, 0.5))
@settings(max_examples=40)
def test_imputer_removes_all_nans(X, rate):
    rng = np.random.default_rng(0)
    X = X.copy()
    X[rng.random(X.shape) < rate] = np.nan
    Z = MedianImputer().fit_transform(X)
    assert not np.isnan(Z).any()
    # Observed cells are untouched.
    observed = ~np.isnan(X)
    assert np.array_equal(Z[observed], X[observed])


# -- split properties --------------------------------------------------------


@given(st.integers(10, 80), st.integers(0, 10_000))
@settings(max_examples=40)
def test_split_partitions_indices(n, seed):
    rng = np.random.default_rng(seed)
    X = np.arange(n, dtype=float).reshape(-1, 1)
    y = rng.integers(0, 2, size=n)
    if len(np.unique(y)) < 2:
        y[0] = 1 - y[0]
    X_train, X_test, y_train, y_test = train_test_split(X, y, random_state=seed)
    assert len(X_train) + len(X_test) == n
    assert sorted(np.concatenate([X_train, X_test]).ravel().tolist()) == list(range(n))


# -- tree properties ---------------------------------------------------------


@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(6, 40), st.integers(1, 4)),
        elements=st.floats(-100, 100, allow_nan=False, width=64),
    ),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_tree_training_accuracy_at_least_majority(X, seed):
    rng = np.random.default_rng(seed)
    y = rng.integers(0, 2, size=X.shape[0])
    if len(np.unique(y)) < 2:
        y[0] = 1 - y[0]
    model = DecisionTreeClassifier(random_state=0).fit(X, y)
    majority = max(np.mean(y), 1 - np.mean(y))
    assert model.score(X, y) >= majority - 1e-12


# -- subset expectation properties -------------------------------------------


@given(st.lists(st.floats(0.0, 1.0, width=64), min_size=1, max_size=12))
def test_expected_max_monotone_in_k(scores):
    values = [
        expected_max_of_subset(scores, k) for k in range(1, len(scores) + 1)
    ]
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
    assert values[0] == np.mean(scores) or len(scores) == 1 or abs(
        values[0] - np.mean(scores)
    ) < 1e-9
    assert abs(values[-1] - max(scores)) < 1e-9
