"""Contract tests every classifier in the registry must satisfy.

These are the invariants the platform simulators and the measurement
harness rely on: deterministic fitting under a fixed seed, label-type
preservation, shape correctness, proper NotFitted behaviour, and
predict_proba validity where offered.
"""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.learn import CLASSIFIER_REGISTRY
from repro.learn.base import clone

FAST_PARAMS = {
    "RF": {"n_estimators": 10},
    "BST": {"n_estimators": 10},
    "BAG": {"n_estimators": 5},
    "DJ": {"n_dags": 3, "max_depth": 4, "max_width": 8, "merge_rounds": 16},
    "MLP": {"max_iter": 30, "hidden_layer_sizes": (8,)},
    "BPM": {"n_members": 3, "n_iter": 10},
}


def build(abbr, **extra):
    cls = CLASSIFIER_REGISTRY[abbr]
    kwargs = dict(FAST_PARAMS.get(abbr, {}))
    kwargs.update(extra)
    if "random_state" in cls._param_names():
        kwargs.setdefault("random_state", 0)
    return cls(**kwargs)


ALL = sorted(CLASSIFIER_REGISTRY)


@pytest.mark.parametrize("abbr", ALL)
def test_fit_returns_self_and_predict_shape(abbr, linear_data):
    X_train, y_train, X_test, _ = linear_data
    model = build(abbr)
    assert model.fit(X_train, y_train) is model
    predictions = model.predict(X_test)
    assert np.asarray(predictions).shape == (X_test.shape[0],)


@pytest.mark.parametrize("abbr", ALL)
def test_classes_attribute_sorted(abbr, linear_data):
    X_train, y_train, _, _ = linear_data
    model = build(abbr).fit(X_train, y_train)
    assert model.classes_.tolist() == [0, 1]


@pytest.mark.parametrize("abbr", ALL)
def test_predictions_are_training_labels(abbr, linear_data):
    X_train, y_train, X_test, _ = linear_data
    shifted = y_train * 2 + 5  # labels {5, 7}
    model = build(abbr).fit(X_train, shifted)
    predictions = np.asarray(model.predict(X_test))
    assert set(np.unique(predictions)) <= {5, 7}


@pytest.mark.parametrize("abbr", ALL)
def test_better_than_chance_on_separable_data(abbr, linear_data):
    X_train, y_train, X_test, y_test = linear_data
    model = build(abbr).fit(X_train, y_train)
    assert model.score(X_test, y_test) > 0.7


@pytest.mark.parametrize("abbr", ALL)
def test_unfitted_predict_raises(abbr, linear_data):
    _, _, X_test, _ = linear_data
    model = build(abbr)
    with pytest.raises((NotFittedError, ValidationError)):
        model.predict(X_test)


@pytest.mark.parametrize("abbr", ALL)
def test_deterministic_given_seed(abbr, noisy_linear_data):
    X_train, y_train, X_test, _ = noisy_linear_data
    first = build(abbr).fit(X_train, y_train).predict(X_test)
    second = build(abbr).fit(X_train, y_train).predict(X_test)
    assert np.array_equal(first, second)


@pytest.mark.parametrize("abbr", ALL)
def test_rejects_single_class_training(abbr):
    X = np.random.default_rng(0).normal(size=(20, 3))
    y = np.zeros(20, dtype=int)
    with pytest.raises(ValidationError):
        build(abbr).fit(X, y)


@pytest.mark.parametrize("abbr", ALL)
def test_feature_count_mismatch_rejected(abbr, linear_data):
    X_train, y_train, X_test, _ = linear_data
    model = build(abbr).fit(X_train, y_train)
    with pytest.raises((ValidationError, ValueError)):
        model.predict(X_test[:, :2])


@pytest.mark.parametrize("abbr", ALL)
def test_clone_preserves_params(abbr):
    model = build(abbr)
    cloned = clone(model)
    assert cloned.get_params() == model.get_params()


PROBA = [a for a in ALL if hasattr(CLASSIFIER_REGISTRY[a], "predict_proba")]


@pytest.mark.parametrize("abbr", PROBA)
def test_predict_proba_rows_sum_to_one(abbr, linear_data):
    X_train, y_train, X_test, _ = linear_data
    model = build(abbr).fit(X_train, y_train)
    probabilities = model.predict_proba(X_test)
    assert probabilities.shape == (X_test.shape[0], 2)
    assert np.allclose(probabilities.sum(axis=1), 1.0)
    assert np.all(probabilities >= 0.0)
    assert np.all(probabilities <= 1.0)


@pytest.mark.parametrize("abbr", ALL)
def test_handles_list_inputs(abbr, linear_data):
    X_train, y_train, X_test, _ = linear_data
    model = build(abbr).fit(X_train.tolist(), y_train.tolist())
    predictions = model.predict(X_test.tolist())
    assert len(predictions) == X_test.shape[0]
