"""Tests for the regression extension (the paper's other universal task)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learn.regression import (
    DecisionTreeRegressor,
    KNeighborsRegressor,
    LinearRegression,
    mean_absolute_error,
    mean_squared_error,
    r2_score,
)


@pytest.fixture(scope="module")
def linear_target():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(300, 4))
    w = np.array([2.0, -1.0, 0.5, 0.0])
    y = X @ w + 3.0 + 0.1 * rng.normal(size=300)
    return X[:220], y[:220], X[220:], y[220:]


@pytest.fixture(scope="module")
def step_target():
    rng = np.random.default_rng(1)
    X = rng.uniform(-2, 2, size=(300, 2))
    y = np.where(X[:, 0] > 0, 5.0, -5.0) + np.where(X[:, 1] > 1, 2.0, 0.0)
    y = y + 0.1 * rng.normal(size=300)
    return X[:220], y[:220], X[220:], y[220:]


class TestMetrics:
    def test_mse_mae_basics(self):
        y = np.array([1.0, 2.0, 3.0])
        p = np.array([1.0, 2.0, 5.0])
        assert mean_squared_error(y, p) == pytest.approx(4.0 / 3)
        assert mean_absolute_error(y, p) == pytest.approx(2.0 / 3)

    def test_r2_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0, 4.0])
        assert r2_score(y, y) == 1.0
        assert r2_score(y, np.full(4, y.mean())) == 0.0

    def test_r2_constant_target(self):
        y = np.full(5, 2.0)
        assert r2_score(y, y) == 1.0
        assert r2_score(y, y + 1.0) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            mean_squared_error([1.0], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            r2_score([], [])


class TestLinearRegression:
    def test_recovers_coefficients(self, linear_target):
        X_train, y_train, X_test, y_test = linear_target
        model = LinearRegression().fit(X_train, y_train)
        assert model.coef_ == pytest.approx([2.0, -1.0, 0.5, 0.0], abs=0.05)
        assert model.intercept_ == pytest.approx(3.0, abs=0.05)
        assert model.score(X_test, y_test) > 0.99

    def test_ridge_shrinks(self, linear_target):
        X_train, y_train, _, _ = linear_target
        ols = LinearRegression(alpha=0.0).fit(X_train, y_train)
        ridge = LinearRegression(alpha=1000.0).fit(X_train, y_train)
        assert np.linalg.norm(ridge.coef_) < np.linalg.norm(ols.coef_)

    def test_no_intercept(self, linear_target):
        X_train, y_train, _, _ = linear_target
        model = LinearRegression(fit_intercept=False).fit(X_train, y_train)
        assert model.intercept_ == 0.0

    def test_negative_alpha_rejected(self, linear_target):
        X_train, y_train, _, _ = linear_target
        with pytest.raises(ValidationError):
            LinearRegression(alpha=-1.0).fit(X_train, y_train)

    def test_underdetermined_system_solved(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(5, 20))
        y = rng.normal(size=5)
        model = LinearRegression().fit(X, y)
        assert np.all(np.isfinite(model.coef_))


class TestTreeRegressor:
    def test_fits_step_function(self, step_target):
        X_train, y_train, X_test, y_test = step_target
        model = DecisionTreeRegressor(max_depth=4).fit(X_train, y_train)
        assert model.score(X_test, y_test) > 0.95

    def test_beats_linear_on_steps(self, step_target):
        X_train, y_train, X_test, y_test = step_target
        tree = DecisionTreeRegressor(max_depth=4).fit(X_train, y_train)
        linear = LinearRegression().fit(X_train, y_train)
        assert tree.score(X_test, y_test) > linear.score(X_test, y_test)

    def test_depth_zero_equivalent_returns_mean(self, step_target):
        X_train, y_train, _, _ = step_target
        model = DecisionTreeRegressor(max_depth=1, min_samples_leaf=200)
        model.fit(X_train, y_train)
        predictions = model.predict(X_train)
        assert np.allclose(predictions, y_train.mean())

    def test_min_samples_leaf_validated(self, step_target):
        X_train, y_train, _, _ = step_target
        with pytest.raises(ValidationError):
            DecisionTreeRegressor(min_samples_leaf=0).fit(X_train, y_train)

    def test_feature_subsampling_deterministic_with_seed(self, step_target):
        X_train, y_train, X_test, _ = step_target
        a = DecisionTreeRegressor(max_features="sqrt", random_state=0)
        b = DecisionTreeRegressor(max_features="sqrt", random_state=0)
        pa = a.fit(X_train, y_train).predict(X_test)
        pb = b.fit(X_train, y_train).predict(X_test)
        assert np.array_equal(pa, pb)


class TestKNNRegressor:
    def test_interpolates_smooth_function(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 2 * np.pi, size=(400, 1))
        y = np.sin(X[:, 0])
        model = KNeighborsRegressor(n_neighbors=5).fit(X[:300], y[:300])
        assert model.score(X[300:], y[300:]) > 0.95

    def test_one_neighbor_memorizes(self, step_target):
        X_train, y_train, _, _ = step_target
        model = KNeighborsRegressor(n_neighbors=1).fit(X_train, y_train)
        assert model.score(X_train, y_train) == pytest.approx(1.0)

    def test_distance_weighting(self):
        X = np.array([[0.0], [10.0]])
        y = np.array([1.0, 100.0])
        model = KNeighborsRegressor(n_neighbors=2, weights="distance").fit(X, y)
        near_zero = model.predict(np.array([[0.1]]))[0]
        assert near_zero < 10.0  # dominated by the close neighbor

    def test_invalid_weights_rejected(self, step_target):
        X_train, y_train, _, _ = step_target
        with pytest.raises(ValidationError):
            KNeighborsRegressor(weights="gaussian").fit(X_train, y_train)
