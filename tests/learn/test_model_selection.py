"""Tests for splitting, cross-validation, and grid search."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learn.linear import LogisticRegression
from repro.learn.model_selection import (
    GridSearchCV,
    KFold,
    ParameterGrid,
    StratifiedKFold,
    cross_val_score,
    paper_numeric_scan,
    train_test_split,
)
from repro.learn.tree import DecisionTreeClassifier


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(200, 4))
    y = (X[:, 0] + 0.2 * rng.normal(size=200) > 0).astype(int)
    return X, y


class TestTrainTestSplit:
    def test_70_30_sizes(self, data):
        X, y = data
        X_train, X_test, y_train, y_test = train_test_split(X, y, random_state=0)
        assert len(X_test) == pytest.approx(60, abs=2)
        assert len(X_train) + len(X_test) == 200
        assert len(y_train) == len(X_train)

    def test_stratification_preserves_class_ratio(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 2))
        y = np.array([1] * 40 + [0] * 160)
        _, _, y_train, y_test = train_test_split(X, y, random_state=0)
        assert y_test.mean() == pytest.approx(0.2, abs=0.05)
        assert y_train.mean() == pytest.approx(0.2, abs=0.05)

    def test_both_classes_in_each_partition(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.array([1] * 3 + [0] * 17)
        _, _, y_train, y_test = train_test_split(X, y, test_size=0.3, random_state=0)
        assert len(np.unique(y_train)) == 2
        assert len(np.unique(y_test)) == 2

    def test_no_overlap_and_full_coverage(self, data):
        X, y = data
        X_train, X_test, _, _ = train_test_split(X, y, random_state=0)
        combined = np.vstack([X_train, X_test])
        assert combined.shape == X.shape
        # Every original row appears exactly once (rows are unique w.h.p.).
        original = {tuple(row) for row in X}
        recombined = [tuple(row) for row in combined]
        assert set(recombined) == original
        assert len(recombined) == len(original)

    def test_deterministic_given_seed(self, data):
        X, y = data
        a = train_test_split(X, y, random_state=5)[0]
        b = train_test_split(X, y, random_state=5)[0]
        assert np.array_equal(a, b)

    def test_invalid_test_size(self, data):
        X, y = data
        with pytest.raises(ValidationError):
            train_test_split(X, y, test_size=0.0)
        with pytest.raises(ValidationError):
            train_test_split(X, y, test_size=1.0)


class TestKFold:
    def test_folds_partition_data(self, data):
        X, y = data
        seen = []
        for train, test in KFold(n_splits=5, random_state=0).split(X):
            assert len(np.intersect1d(train, test)) == 0
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(len(X)))

    def test_too_few_samples_rejected(self):
        with pytest.raises(ValidationError):
            list(KFold(n_splits=5).split(np.zeros((3, 1))))

    def test_invalid_n_splits(self):
        with pytest.raises(ValidationError):
            KFold(n_splits=1)


class TestStratifiedKFold:
    def test_class_ratio_per_fold(self):
        y = np.array([1] * 30 + [0] * 90)
        X = np.zeros((120, 1))
        for _, test in StratifiedKFold(n_splits=3, random_state=0).split(X, y):
            fraction = y[test].mean()
            assert fraction == pytest.approx(0.25, abs=0.05)

    def test_partition_property(self, data):
        X, y = data
        seen = []
        for _, test in StratifiedKFold(n_splits=4, random_state=0).split(X, y):
            seen.extend(test.tolist())
        assert sorted(seen) == list(range(len(X)))


def test_cross_val_score_returns_fold_scores(data):
    X, y = data
    scores = cross_val_score(LogisticRegression(), X, y, cv=4, random_state=0)
    assert scores.shape == (4,)
    assert np.all((scores >= 0.0) & (scores <= 1.0))
    assert scores.mean() > 0.8


class TestParameterGrid:
    def test_cartesian_product(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
        combos = list(grid)
        assert len(combos) == len(grid) == 6
        assert {"a": 1, "b": "z"} in combos

    def test_list_of_grids_concatenates(self):
        grid = ParameterGrid([{"a": [1]}, {"b": [2, 3]}])
        assert len(grid) == 3

    def test_empty_grid_yields_empty_dict(self):
        assert list(ParameterGrid({})) == [{}]

    def test_non_sequence_value_rejected(self):
        with pytest.raises(ValidationError):
            ParameterGrid({"a": 5})


def test_paper_numeric_scan():
    assert paper_numeric_scan(0.01) == [0.0001, 0.01, 1.0]


class TestGridSearchCV:
    def test_selects_best_depth(self, circles_data):
        X_train, y_train, X_test, y_test = circles_data
        search = GridSearchCV(
            DecisionTreeClassifier(random_state=0),
            {"max_depth": [1, 8]},
            cv=3,
            random_state=0,
        ).fit(X_train, y_train)
        # Depth 1 cannot represent a circle; depth 8 can.
        assert search.best_params_["max_depth"] == 8
        assert search.best_estimator_.score(X_test, y_test) > 0.8

    def test_cv_results_recorded(self, linear_data):
        X_train, y_train, _, _ = linear_data
        search = GridSearchCV(
            LogisticRegression(), {"C": [0.1, 1.0]}, cv=3, random_state=0
        ).fit(X_train, y_train)
        assert len(search.cv_results_) == 2
        assert search.best_score_ >= max(
            r["mean_score"] for r in search.cv_results_
        ) - 1e-12

    def test_failing_candidates_skipped(self, linear_data):
        X_train, y_train, _, _ = linear_data
        search = GridSearchCV(
            LogisticRegression(),
            {"C": [-1.0, 1.0]},  # C=-1 raises; C=1 works
            cv=3,
            random_state=0,
        ).fit(X_train, y_train)
        assert search.best_params_ == {"C": 1.0}

    def test_all_failures_raise(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValidationError, match="failed"):
            GridSearchCV(
                LogisticRegression(), {"C": [-1.0, -2.0]}, cv=3
            ).fit(X_train, y_train)

    def test_predict_uses_best_estimator(self, linear_data):
        X_train, y_train, X_test, _ = linear_data
        search = GridSearchCV(
            LogisticRegression(), {"C": [1.0]}, cv=3, random_state=0
        ).fit(X_train, y_train)
        assert len(search.predict(X_test)) == len(X_test)
