"""Equivalence of the perf-driven vectorizations with the seed code.

``repro perf`` flagged Python-level axis loops in the filter scorers and
the fold assembly of ``StratifiedKFold``; their vectorized replacements
are pure wall-clock optimizations, so every test here asserts
**bit-for-bit** equality against the seed implementations kept verbatim
in ``benchmarks/perf_reference.py`` — not tolerance-based closeness.
The platform tests pin down the FitCache routing the P304 findings
introduced: exact hit/miss counts and unchanged predictions.
"""

import numpy as np
import pytest

from benchmarks.perf_reference import (
    ReferenceStratifiedKFold,
    reference_mutual_info_score,
)
from repro.learn.feature_selection.filters import mutual_info_score
from repro.learn.model_selection import StratifiedKFold
from repro.platforms import LocalLibrary, Microsoft


def make_problem(seed, n_samples=200, n_features=6, cardinality=None):
    rng = np.random.default_rng(seed)
    if cardinality is None:
        X = rng.normal(size=(n_samples, n_features))
    else:
        X = rng.integers(0, cardinality,
                         size=(n_samples, n_features)).astype(float)
    y = (X[:, 0] + 0.5 * X[:, 1] > X[:, 0].mean()).astype(int)
    if len(np.unique(y)) < 2:  # pragma: no cover - defensive
        y[0] = 1 - y[0]
    return X, y


class TestMutualInfoEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_bit_identical_on_continuous_data(self, seed):
        X, y = make_problem(seed)
        assert np.array_equal(mutual_info_score(X, y),
                              reference_mutual_info_score(X, y))

    @pytest.mark.parametrize("cardinality", [2, 5])
    def test_bit_identical_on_discrete_data(self, cardinality):
        X, y = make_problem(7, cardinality=cardinality)
        assert np.array_equal(mutual_info_score(X, y),
                              reference_mutual_info_score(X, y))

    def test_constant_columns_and_skewed_classes(self):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(120, 4))
        X[:, 1] = 2.5  # constant column scores exactly 0.0
        y = np.zeros(120, dtype=int)
        y[:10] = 1  # 11:1 class skew
        fast = mutual_info_score(X, y)
        assert np.array_equal(fast, reference_mutual_info_score(X, y))
        assert fast[1] == 0.0

    def test_custom_bin_count(self):
        X, y = make_problem(5)
        assert np.array_equal(
            mutual_info_score(X, y, n_bins=4),
            reference_mutual_info_score(X, y, n_bins=4),
        )


class TestStratifiedKFoldEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("n_splits", [2, 3, 5])
    @pytest.mark.parametrize("shuffle", [True, False])
    def test_bit_identical_folds(self, seed, n_splits, shuffle):
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, size=97)  # uneven folds and classes
        X = rng.normal(size=(97, 3))
        fast = list(StratifiedKFold(
            n_splits=n_splits, shuffle=shuffle, random_state=seed,
        ).split(X, y))
        ref = list(ReferenceStratifiedKFold(
            n_splits=n_splits, shuffle=shuffle, random_state=seed,
        ).split(X, y))
        assert len(fast) == len(ref)
        for (fast_train, fast_test), (ref_train, ref_test) in zip(fast, ref):
            assert fast_train.dtype == ref_train.dtype
            assert np.array_equal(fast_train, ref_train)
            assert np.array_equal(fast_test, ref_test)

    def test_tiny_minority_class(self):
        y = np.zeros(40, dtype=int)
        y[:3] = 1  # fewer minority members than folds
        X = np.arange(80, dtype=float).reshape(40, 2)
        fast = list(StratifiedKFold(n_splits=5, random_state=0).split(X, y))
        ref = list(ReferenceStratifiedKFold(
            n_splits=5, random_state=0).split(X, y))
        for (fast_train, fast_test), (ref_train, ref_test) in zip(fast, ref):
            assert np.array_equal(fast_train, ref_train)
            assert np.array_equal(fast_test, ref_test)


class TestPlatformFitCacheRouting:
    """The P304 fix: FEAT steps are memoized across a platform's models."""

    def _platform_data(self, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(80, 5))
        y = (X[:, 0] > 0).astype(int)
        return X, y

    def test_microsoft_feature_step_hits_cache_on_second_model(self):
        X, y = self._platform_data()
        platform = Microsoft(random_state=0)
        dataset_id = platform.upload_dataset(X, y)
        platform.create_model(
            dataset_id, classifier="SVM", params={"n_iterations": 5},
            feature_selection="filter_count",
        )
        assert (platform._fit_cache.hits,
                platform._fit_cache.misses) == (0, 1)
        platform.create_model(
            dataset_id, classifier="SVM", params={"n_iterations": 25},
            feature_selection="filter_count",
        )
        # Same step, same data: the second FEAT fit is a pure repeat.
        assert (platform._fit_cache.hits,
                platform._fit_cache.misses) == (1, 1)
        platform.create_model(
            dataset_id, classifier="SVM", params={"n_iterations": 5},
            feature_selection="filter_pearson",
        )
        # A different selector is new content: a miss, not a hit.
        assert (platform._fit_cache.hits,
                platform._fit_cache.misses) == (1, 2)

    def test_cached_predictions_match_a_cold_platform(self):
        X, y = self._platform_data(3)
        X_new = np.random.default_rng(4).normal(size=(20, 5))

        warm = Microsoft(random_state=0)
        dataset_id = warm.upload_dataset(X, y)
        warm.create_model(
            dataset_id, classifier="SVM", params={"n_iterations": 5},
            feature_selection="filter_count",
        )
        second = warm.create_model(
            dataset_id, classifier="SVM", params={"n_iterations": 25},
            feature_selection="filter_count",
        )
        assert warm._fit_cache.hits == 1  # the run under test was cached

        cold = Microsoft(random_state=0)
        cold_dataset = cold.upload_dataset(X, y)
        cold_model = cold.create_model(
            cold_dataset, classifier="SVM", params={"n_iterations": 25},
            feature_selection="filter_count",
        )
        assert np.array_equal(warm.batch_predict(second, X_new),
                              cold.batch_predict(cold_model, X_new))

    def test_local_platform_shares_the_cache_too(self):
        X, y = self._platform_data(5)
        platform = LocalLibrary(random_state=0)
        dataset_id = platform.upload_dataset(X, y)
        for C in (0.5, 2.0):
            platform.create_model(
                dataset_id, classifier="LR", params={"C": C},
                feature_selection="standard_scaler",
            )
        assert (platform._fit_cache.hits,
                platform._fit_cache.misses) == (1, 1)

    def test_deleting_the_last_dataset_resets_the_cache(self):
        X, y = self._platform_data(6)
        platform = Microsoft(random_state=0)
        dataset_id = platform.upload_dataset(X, y)
        platform.create_model(dataset_id, classifier="SVM",
                              feature_selection="filter_count")
        assert len(platform._fit_cache) == 1
        platform.delete_dataset(dataset_id)
        assert len(platform._fit_cache) == 0    # entries are dropped...
        assert platform._fit_cache.misses == 1  # ...counters span the run

    def test_shared_cache_is_not_cleared_by_platform(self):
        from repro.learn import FitCache

        X, y = self._platform_data(7)
        shared = FitCache()
        platform = Microsoft(random_state=0, fit_cache=shared)
        dataset_id = platform.upload_dataset(X, y)
        platform.create_model(dataset_id, classifier="SVM",
                              feature_selection="filter_count")
        assert len(shared) == 1
        platform.delete_dataset(dataset_id)
        # An externally-owned cache (one campaign shard sharing it across
        # platforms) must survive any one platform's dataset lifecycle.
        assert len(shared) == 1
