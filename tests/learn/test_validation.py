"""Tests for input validation helpers."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learn.validation import (
    DEFAULT_SEED,
    UNSEEDED,
    check_array,
    check_binary_labels,
    check_random_state,
    check_X_y,
    column_or_1d,
)


def test_check_array_converts_lists():
    result = check_array([[1, 2], [3, 4]])
    assert result.dtype == np.float64
    assert result.shape == (2, 2)


def test_check_array_promotes_1d_to_column():
    assert check_array([1.0, 2.0, 3.0]).shape == (3, 1)


def test_check_array_rejects_3d():
    with pytest.raises(ValidationError, match="2-D"):
        check_array(np.zeros((2, 2, 2)))


def test_check_array_rejects_nan_by_default():
    with pytest.raises(ValidationError, match="NaN"):
        check_array([[1.0, np.nan]])


def test_check_array_allows_nan_when_requested():
    result = check_array([[1.0, np.nan]], allow_nan=True)
    assert np.isnan(result[0, 1])


def test_check_array_rejects_infinity():
    with pytest.raises(ValidationError):
        check_array([[np.inf, 1.0]])


def test_check_array_rejects_zero_features():
    with pytest.raises(ValidationError, match="0 features"):
        check_array(np.empty((3, 0)))


def test_check_array_min_samples():
    with pytest.raises(ValidationError, match="at least 5"):
        check_array([[1.0], [2.0]], min_samples=5)


def test_check_array_rejects_strings():
    with pytest.raises(ValidationError, match="could not convert"):
        check_array([["a", "b"]])


def test_column_or_1d_flattens_column_vector():
    assert column_or_1d(np.array([[1], [2]])).shape == (2,)


def test_column_or_1d_rejects_matrix():
    with pytest.raises(ValidationError, match="1-D"):
        column_or_1d(np.zeros((2, 2)))


def test_check_X_y_rejects_length_mismatch():
    with pytest.raises(ValidationError, match="samples"):
        check_X_y([[1.0], [2.0]], [0, 1, 0])


def test_check_binary_labels_returns_sorted_classes():
    classes = check_binary_labels(np.array([1, 0, 1, 0]))
    assert classes.tolist() == [0, 1]


def test_check_binary_labels_rejects_single_class():
    with pytest.raises(ValidationError, match="2 classes"):
        check_binary_labels(np.array([1, 1, 1]))


def test_check_binary_labels_rejects_three_classes():
    with pytest.raises(ValidationError, match="2 classes"):
        check_binary_labels(np.array([0, 1, 2]))


def test_check_random_state_accepts_int_deterministically():
    a = check_random_state(42).random(5)
    b = check_random_state(42).random(5)
    assert np.array_equal(a, b)


def test_check_random_state_passes_generator_through():
    generator = np.random.default_rng(0)
    assert check_random_state(generator) is generator


def test_check_random_state_none_gives_generator():
    assert isinstance(check_random_state(None), np.random.Generator)


def test_check_random_state_none_is_deterministic():
    # An omitted seed must never make a run irreproducible: None means
    # "the documented default seed", not "fresh OS entropy".
    a = check_random_state(None).random(5)
    b = check_random_state(None).random(5)
    c = check_random_state(DEFAULT_SEED).random(5)
    assert np.array_equal(a, b)
    assert np.array_equal(a, c)


def test_check_random_state_unseeded_sentinel_opts_into_entropy():
    rng = check_random_state(UNSEEDED)
    assert isinstance(rng, np.random.Generator)
    # Two UNSEEDED generators are (overwhelmingly likely) distinct.
    other = check_random_state(UNSEEDED)
    assert rng is not other


def test_check_random_state_rejects_strings():
    with pytest.raises(ValidationError, match="random_state"):
        check_random_state("seed")
    with pytest.raises(ValidationError, match="UNSEEDED"):
        check_random_state(3.5)
