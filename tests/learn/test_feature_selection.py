"""Tests for filter scorers, SelectKBest, and the Fisher-LDA transform."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learn.feature_selection import (
    FILTER_SCORERS,
    FisherLDATransform,
    SelectKBest,
    chi2_score,
    count_score,
    f_classif_score,
    fisher_score,
    kendall_score,
    mutual_info_score,
    pearson_score,
    spearman_score,
)


@pytest.fixture(scope="module")
def informative_data():
    """Feature 0 drives the label; features 1-3 are noise; 4 is constant."""
    rng = np.random.default_rng(5)
    n = 300
    informative = rng.normal(size=n)
    y = (informative > 0).astype(int)
    X = np.column_stack([
        informative + 0.1 * rng.normal(size=n),
        rng.normal(size=n),
        rng.normal(size=n),
        rng.normal(size=n),
        np.full(n, 3.0),
    ])
    return X, y


ALL_SCORERS = [
    pearson_score, spearman_score, kendall_score, chi2_score,
    mutual_info_score, fisher_score, f_classif_score,
]


@pytest.mark.parametrize("scorer", ALL_SCORERS)
def test_informative_feature_ranks_first(scorer, informative_data):
    X, y = informative_data
    scores = scorer(X, y)
    assert scores.shape == (5,)
    assert np.argmax(scores) == 0


@pytest.mark.parametrize("scorer", ALL_SCORERS + [count_score])
def test_scores_are_finite_and_nonnegative(scorer, informative_data):
    X, y = informative_data
    scores = scorer(X, y)
    assert np.all(np.isfinite(scores))
    assert np.all(scores >= 0.0)


@pytest.mark.parametrize(
    "scorer",
    [pearson_score, spearman_score, kendall_score, fisher_score, f_classif_score],
)
def test_constant_feature_scores_zero(scorer, informative_data):
    X, y = informative_data
    assert scorer(X, y)[4] == 0.0


def test_count_score_counts_distinct_values():
    X = np.array([[1.0, 1.0], [2.0, 1.0], [3.0, 1.0]])
    y = np.array([0, 1, 0])
    assert count_score(X, y).tolist() == [3.0, 1.0]


def test_pearson_score_is_absolute():
    X = np.array([[1.0], [2.0], [3.0], [4.0]])
    y_pos = np.array([0, 0, 1, 1])
    y_neg = np.array([1, 1, 0, 0])
    assert pearson_score(X, y_pos) == pytest.approx(pearson_score(X, y_neg))


def test_mutual_info_zero_for_independent_feature():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(500, 1))
    y = rng.integers(0, 2, size=500)
    assert mutual_info_score(X, y)[0] < 0.05


class TestSelectKBest:
    def test_keeps_top_k(self, informative_data):
        X, y = informative_data
        selector = SelectKBest(scorer="f_classif", k=1).fit(X, y)
        assert selector.selected_indices().tolist() == [0]
        assert selector.transform(X).shape == (X.shape[0], 1)

    def test_k_all_keeps_everything(self, informative_data):
        X, y = informative_data
        Z = SelectKBest(scorer="pearson", k="all").fit_transform(X, y)
        assert Z.shape == X.shape

    def test_fractional_k(self, informative_data):
        X, y = informative_data
        selector = SelectKBest(scorer="fisher", k=0.4).fit(X, y)
        assert selector.transform(X).shape[1] == 2  # 40% of 5

    def test_k_larger_than_features_is_clamped(self, informative_data):
        X, y = informative_data
        Z = SelectKBest(scorer="fisher", k=100).fit_transform(X, y)
        assert Z.shape == X.shape

    def test_unknown_scorer_rejected(self, informative_data):
        X, y = informative_data
        with pytest.raises(ValidationError, match="unknown scorer"):
            SelectKBest(scorer="bogus").fit(X, y)

    def test_invalid_k_rejected(self, informative_data):
        X, y = informative_data
        with pytest.raises(ValidationError):
            SelectKBest(k=0).fit(X, y)
        with pytest.raises(ValidationError):
            SelectKBest(k=1.5).fit(X, y)

    def test_transform_checks_feature_count(self, informative_data):
        X, y = informative_data
        selector = SelectKBest(k=2).fit(X, y)
        with pytest.raises(ValidationError, match="features"):
            selector.transform(X[:, :3])

    def test_registry_covers_eight_scorers(self):
        assert len(FILTER_SCORERS) == 8


class TestFisherLDA:
    def test_projection_is_one_dimensional(self, informative_data):
        X, y = informative_data
        Z = FisherLDATransform().fit_transform(X, y)
        assert Z.shape == (X.shape[0], 1)

    def test_projection_separates_classes(self, informative_data):
        X, y = informative_data
        Z = FisherLDATransform().fit_transform(X, y).ravel()
        gap = abs(Z[y == 1].mean() - Z[y == 0].mean())
        pooled_std = Z.std()
        assert gap > pooled_std  # projected classes are well separated

    def test_keep_original_appends_features(self, informative_data):
        X, y = informative_data
        Z = FisherLDATransform(keep_original=2).fit_transform(X, y)
        assert Z.shape == (X.shape[0], 3)
