"""Tests for scalers, normalizers, imputation, encoding, and binning."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.learn.preprocessing import (
    IdentityTransform,
    L1Normalizer,
    L2Normalizer,
    MaxAbsScaler,
    MedianImputer,
    MinMaxScaler,
    OrdinalEncoder,
    QuantileBinningTransform,
    StandardScaler,
)


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        X = rng.normal(loc=5.0, scale=3.0, size=(200, 4))
        Z = StandardScaler().fit_transform(X)
        assert np.allclose(Z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(Z.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_not_divided_by_zero(self):
        X = np.array([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        Z = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(Z))
        assert np.allclose(Z[:, 1], 0.0)

    def test_transform_uses_training_statistics(self):
        scaler = StandardScaler().fit(np.array([[0.0], [2.0]]))
        assert scaler.transform(np.array([[4.0]]))[0, 0] == pytest.approx(3.0)

    def test_without_mean_or_std(self):
        X = np.array([[1.0], [3.0]])
        no_center = StandardScaler(with_mean=False).fit_transform(X)
        assert no_center.mean() != pytest.approx(0.0)
        no_scale = StandardScaler(with_std=False).fit_transform(X)
        assert no_scale.std() == pytest.approx(1.0)  # 1 and -1 after centering

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform([[1.0]])


class TestMinMaxScaler:
    def test_maps_to_unit_interval(self, rng):
        X = rng.normal(size=(100, 3)) * 10
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() == pytest.approx(0.0)
        assert Z.max() == pytest.approx(1.0)

    def test_custom_range(self):
        Z = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(
            np.array([[0.0], [10.0]])
        )
        assert Z.ravel().tolist() == [-1.0, 1.0]

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            MinMaxScaler(feature_range=(1.0, 0.0)).fit(np.array([[1.0]]))

    def test_constant_feature_safe(self):
        Z = MinMaxScaler().fit_transform(np.array([[3.0], [3.0]]))
        assert np.all(np.isfinite(Z))


class TestMaxAbsScaler:
    def test_bounds(self):
        X = np.array([[-4.0, 2.0], [2.0, -1.0]])
        Z = MaxAbsScaler().fit_transform(X)
        assert np.abs(Z).max() == pytest.approx(1.0)
        assert Z[0, 0] == pytest.approx(-1.0)

    def test_zero_column_safe(self):
        Z = MaxAbsScaler().fit_transform(np.zeros((3, 2)))
        assert np.all(Z == 0.0)


class TestNormalizers:
    def test_l2_rows_have_unit_norm(self, rng):
        X = rng.normal(size=(50, 4))
        Z = L2Normalizer().fit_transform(X)
        assert np.allclose(np.linalg.norm(Z, axis=1), 1.0)

    def test_l1_rows_have_unit_norm(self, rng):
        X = rng.normal(size=(50, 4))
        Z = L1Normalizer().fit_transform(X)
        assert np.allclose(np.abs(Z).sum(axis=1), 1.0)

    def test_zero_row_stays_zero(self):
        Z = L2Normalizer().fit_transform(np.zeros((2, 3)))
        assert np.all(Z == 0.0)


def test_identity_transform_roundtrip(rng):
    X = rng.normal(size=(10, 3))
    assert np.array_equal(IdentityTransform().fit_transform(X), X)


class TestMedianImputer:
    def test_median_fill(self):
        X = np.array([[1.0, np.nan], [3.0, 4.0], [np.nan, 8.0]])
        Z = MedianImputer().fit_transform(X)
        assert Z[2, 0] == pytest.approx(2.0)   # median of 1, 3
        assert Z[0, 1] == pytest.approx(6.0)   # median of 4, 8

    def test_mean_strategy(self):
        X = np.array([[1.0], [np.nan], [5.0]])
        Z = MedianImputer(strategy="mean").fit_transform(X)
        assert Z[1, 0] == pytest.approx(3.0)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValidationError):
            MedianImputer(strategy="mode").fit(np.array([[1.0]]))

    def test_all_missing_feature_becomes_zero(self):
        X = np.array([[np.nan, 1.0], [np.nan, 2.0]])
        Z = MedianImputer().fit_transform(X)
        assert np.all(Z[:, 0] == 0.0)

    def test_transform_feature_count_checked(self):
        imputer = MedianImputer().fit(np.array([[1.0, 2.0]]))
        with pytest.raises(ValidationError, match="features"):
            imputer.transform(np.array([[1.0]]))

    def test_output_is_nan_free(self, rng):
        X = rng.normal(size=(40, 5))
        X[rng.random(X.shape) < 0.3] = np.nan
        Z = MedianImputer().fit_transform(X)
        assert not np.isnan(Z).any()


class TestOrdinalEncoder:
    def test_maps_categories_to_one_based_integers(self):
        X = np.array([["red"], ["blue"], ["red"], ["green"]], dtype=object)
        Z = OrdinalEncoder().fit_transform(X)
        # Sorted categories: blue=1, green=2, red=3.
        assert Z.ravel().tolist() == [3.0, 1.0, 3.0, 2.0]

    def test_numeric_columns_pass_through(self):
        X = np.array([[1.5, "a"], [2.5, "b"]], dtype=object)
        Z = OrdinalEncoder().fit_transform(X)
        assert Z[:, 0].tolist() == [1.5, 2.5]

    def test_missing_becomes_nan(self):
        X = np.array([["a"], [None], ["b"]], dtype=object)
        Z = OrdinalEncoder().fit_transform(X)
        assert np.isnan(Z[1, 0])

    def test_unseen_category_gets_new_code(self):
        encoder = OrdinalEncoder().fit(np.array([["a"], ["b"]], dtype=object))
        Z = encoder.transform(np.array([["zzz"]], dtype=object))
        assert Z[0, 0] == 3.0  # N + 1 with N = 2


class TestQuantileBinning:
    def test_output_is_one_hot(self, rng):
        X = rng.normal(size=(100, 2))
        Z = QuantileBinningTransform(n_bins=5).fit_transform(X)
        assert set(np.unique(Z)) <= {0.0, 1.0}
        # Each sample activates exactly one indicator per original feature.
        assert np.allclose(Z.sum(axis=1), 2.0)

    def test_enables_linear_model_on_circles(self, circles_data):
        from repro.learn.linear import LogisticRegression
        from repro.learn.metrics import f_score
        from repro.learn.pipeline import Pipeline

        X_train, y_train, X_test, y_test = circles_data
        plain = LogisticRegression().fit(X_train, y_train)
        plain_f = f_score(y_test, plain.predict(X_test))
        binned = Pipeline([
            ("bins", QuantileBinningTransform(n_bins=8)),
            ("clf", LogisticRegression()),
        ]).fit(X_train, y_train)
        binned_f = f_score(y_test, binned.predict(X_test))
        assert binned_f > plain_f + 0.2  # binning unlocks the circle

    def test_rejects_single_bin(self):
        with pytest.raises(ValidationError):
            QuantileBinningTransform(n_bins=1).fit(np.array([[1.0]]))
