"""Tests for the one-vs-rest multi-class extension."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learn.linear import LogisticRegression
from repro.learn.multiclass import OneVsRestClassifier
from repro.learn.tree import DecisionTreeClassifier


@pytest.fixture(scope="module")
def three_blobs():
    rng = np.random.default_rng(0)
    centers = np.array([[0.0, 0.0], [6.0, 0.0], [0.0, 6.0]])
    X = np.vstack([
        center + rng.normal(size=(100, 2)) for center in centers
    ])
    y = np.repeat(["alpha", "beta", "gamma"], 100)
    order = rng.permutation(300)
    return X[order], y[order]


def test_learns_three_classes(three_blobs):
    X, y = three_blobs
    model = OneVsRestClassifier(LogisticRegression()).fit(X[:240], y[:240])
    assert model.score(X[240:], y[240:]) > 0.95


def test_classes_preserved(three_blobs):
    X, y = three_blobs
    model = OneVsRestClassifier(DecisionTreeClassifier(max_depth=4))
    model.fit(X, y)
    assert sorted(model.classes_) == ["alpha", "beta", "gamma"]
    assert set(model.predict(X[:20])) <= {"alpha", "beta", "gamma"}


def test_one_member_per_class(three_blobs):
    X, y = three_blobs
    model = OneVsRestClassifier(LogisticRegression()).fit(X, y)
    assert len(model.estimators_) == 3


def test_predict_proba_rows_sum_to_one(three_blobs):
    X, y = three_blobs
    model = OneVsRestClassifier(LogisticRegression()).fit(X, y)
    probabilities = model.predict_proba(X[:50])
    assert probabilities.shape == (50, 3)
    assert np.allclose(probabilities.sum(axis=1), 1.0)
    assert np.all(probabilities >= 0.0)


def test_binary_degenerates_gracefully():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(100, 2))
    y = (X[:, 0] > 0).astype(int)
    model = OneVsRestClassifier(LogisticRegression()).fit(X, y)
    assert model.score(X, y) > 0.9


def test_single_class_rejected():
    X = np.random.default_rng(2).normal(size=(20, 2))
    with pytest.raises(ValidationError):
        OneVsRestClassifier(LogisticRegression()).fit(X, np.zeros(20))


def test_prototype_not_mutated(three_blobs):
    X, y = three_blobs
    prototype = LogisticRegression()
    OneVsRestClassifier(prototype).fit(X, y)
    assert not hasattr(prototype, "coef_")
