"""Equivalence of the fast tree substrate with the seed algorithms.

The presorted split engine, compiled flat trees, and the memoizing
parallel grid search are pure wall-clock optimizations: every test here
asserts **bit-for-bit** equality against reference implementations of
the seed algorithms (``benchmarks/substrate_reference.py``), not
tolerance-based closeness.
"""

import numpy as np
import pytest

from benchmarks.substrate_reference import (
    ReferenceDecisionTree,
    ReferenceRandomForest,
    node_route,
    reference_grid_search,
)
from repro.exceptions import ValidationError
from repro.learn import (
    DecisionTreeClassifier,
    GridSearchCV,
    Pipeline,
    RandomForestClassifier,
    cross_val_score,
)
from repro.learn.feature_selection import SelectKBest
from repro.learn.metrics import accuracy_score
from repro.learn.model_selection import StratifiedKFold
from repro.learn.validation import UNSEEDED


def make_problem(seed, n_samples=240, n_features=8, cardinality=None):
    rng = np.random.default_rng(seed)
    if cardinality is None:
        X = rng.normal(size=(n_samples, n_features))
    else:
        X = rng.integers(0, cardinality, size=(n_samples, n_features))
        X = X.astype(float)
    y = (X[:, 0] + 0.6 * X[:, 1] - X[:, 2]
         + 0.2 * rng.normal(size=n_samples) > X[:, 0].mean()).astype(int)
    if len(np.unique(y)) < 2:  # pragma: no cover - defensive
        y[0] = 1 - y[0]
    return X, y


class TestPresortedTreeEquivalence:
    @pytest.mark.parametrize("data_seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("max_depth", [2, 5, None])
    def test_bit_identical_default_params(self, data_seed, max_depth):
        X, y = make_problem(data_seed)
        fast = DecisionTreeClassifier(max_depth=max_depth,
                                      random_state=0).fit(X, y)
        seed = ReferenceDecisionTree(max_depth=max_depth,
                                     random_state=0).fit(X, y)
        assert np.array_equal(fast.predict_proba(X), seed.predict_proba(X))
        assert np.array_equal(fast.predict(X), seed.predict(X))

    @pytest.mark.parametrize("max_features", ["sqrt", "log2", 0.5, 3])
    def test_bit_identical_feature_subsampling(self, max_features):
        # rng.choice must be consumed at identical recursion positions.
        X, y = make_problem(7)
        fast = DecisionTreeClassifier(max_depth=6, max_features=max_features,
                                      random_state=11).fit(X, y)
        seed = ReferenceDecisionTree(max_depth=6, max_features=max_features,
                                     random_state=11).fit(X, y)
        assert np.array_equal(fast.predict_proba(X), seed.predict_proba(X))

    @pytest.mark.parametrize("criterion", ["gini", "entropy"])
    @pytest.mark.parametrize("min_samples_leaf", [1, 4])
    def test_bit_identical_criteria_and_leaf_floor(self, criterion,
                                                   min_samples_leaf):
        X, y = make_problem(5)
        kwargs = dict(criterion=criterion, min_samples_leaf=min_samples_leaf,
                      max_depth=8, random_state=0)
        fast = DecisionTreeClassifier(**kwargs).fit(X, y)
        seed = ReferenceDecisionTree(**kwargs).fit(X, y)
        assert np.array_equal(fast.predict_proba(X), seed.predict_proba(X))

    def test_identical_tree_structure(self):
        X, y = make_problem(4)
        fast = DecisionTreeClassifier(max_depth=7, random_state=0).fit(X, y)
        seed = ReferenceDecisionTree(max_depth=7, random_state=0).fit(X, y)
        assert fast.n_leaves() == seed.n_leaves()
        assert fast.depth() == seed.depth()
        assert fast.tree_.feature == seed.tree_.feature
        assert fast.tree_.threshold == seed.tree_.threshold

    def test_flat_routing_matches_node_routing(self):
        X, y = make_problem(8)
        X_query = make_problem(9, n_samples=500)[0]
        tree = DecisionTreeClassifier(max_depth=9, random_state=2).fit(X, y)
        flat = tree.flat_tree_.predict_value(X_query)
        walked = node_route(tree.tree_, X_query)
        assert np.array_equal(flat, walked)


class TestFlatForestEquivalence:
    def test_forest_bit_identical_to_seed(self):
        X, y = make_problem(3, n_samples=300)
        fast = RandomForestClassifier(n_estimators=12, max_depth=6,
                                      random_state=1).fit(X, y)
        seed = ReferenceRandomForest(n_estimators=12, max_depth=6,
                                     random_state=1).fit(X, y)
        X_query = make_problem(10, n_samples=400)[0]
        assert np.array_equal(fast.predict_proba(X_query),
                              seed.predict_proba(X_query))

    def test_stacked_rows_match_per_tree_routing(self):
        X, y = make_problem(6)
        forest = RandomForestClassifier(n_estimators=8, max_depth=5,
                                        random_state=0).fit(X, y)
        stacked = forest.flat_forest_.predict_values(X)
        for row, tree in zip(stacked, forest.estimators_):
            assert np.array_equal(row, tree.flat_tree_.predict_value(X))


class TestHistogramSplitter:
    def test_hist_equals_exact_on_small_cardinality(self):
        # With <= max_bins distinct values per feature, histogram edges
        # are the exact CART midpoints, so the trees must coincide.
        X, y = make_problem(2, cardinality=12)
        exact = DecisionTreeClassifier(max_depth=8, random_state=0).fit(X, y)
        hist = DecisionTreeClassifier(max_depth=8, splitter="hist",
                                      max_bins=64, random_state=0).fit(X, y)
        assert np.array_equal(exact.predict_proba(X), hist.predict_proba(X))

    def test_hist_deterministic_and_sensible(self):
        X, y = make_problem(12, n_samples=400)
        first = DecisionTreeClassifier(splitter="hist", max_bins=16,
                                       max_depth=8, random_state=3).fit(X, y)
        second = DecisionTreeClassifier(splitter="hist", max_bins=16,
                                        max_depth=8, random_state=3).fit(X, y)
        assert np.array_equal(first.predict_proba(X), second.predict_proba(X))
        assert first.score(X, y) > 0.8

    def test_invalid_splitter_and_bins_rejected(self):
        X, y = make_problem(0, n_samples=40)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(splitter="sorted").fit(X, y)
        with pytest.raises(ValidationError):
            DecisionTreeClassifier(splitter="hist", max_bins=1).fit(X, y)


class TestGridSearchEquivalence:
    def _pipeline(self):
        return Pipeline([
            ("select", SelectKBest(k=4)),
            ("tree", DecisionTreeClassifier(random_state=0)),
        ])

    _GRID = {"select__k": [3, 6], "tree__max_depth": [3, 6]}

    def test_hoisted_folds_match_seed_grid_loop(self):
        X, y = make_problem(1, n_samples=200)
        search = GridSearchCV(self._pipeline(), self._GRID, cv=3,
                              scoring=accuracy_score, random_state=0)
        search.fit(X, y)
        results, best_params, best_score = reference_grid_search(
            self._pipeline(), self._GRID, X, y, cv=3, random_state=0,
            scoring=accuracy_score,
        )
        assert search.best_params_ == best_params
        assert search.best_score_ == best_score
        assert search.cv_results_ == results

    def test_memoized_search_matches_uncached(self):
        X, y = make_problem(2, n_samples=200)
        cached = GridSearchCV(self._pipeline(), self._GRID, cv=3,
                              random_state=4).fit(X, y)
        uncached = GridSearchCV(self._pipeline(), self._GRID, cv=3,
                                random_state=4, memoize=False).fit(X, y)
        assert cached.cv_results_ == uncached.cv_results_
        assert cached.best_params_ == uncached.best_params_
        assert cached.best_score_ == uncached.best_score_
        assert np.array_equal(cached.predict(X), uncached.predict(X))

    def test_parallel_matches_serial(self):
        X, y = make_problem(3, n_samples=200)
        serial = GridSearchCV(self._pipeline(), self._GRID, cv=3,
                              random_state=6).fit(X, y)
        parallel = GridSearchCV(self._pipeline(), self._GRID, cv=3,
                                random_state=6, n_jobs=2).fit(X, y)
        assert parallel.cv_results_ == serial.cv_results_
        assert parallel.best_params_ == serial.best_params_
        assert parallel.best_score_ == serial.best_score_
        assert np.array_equal(parallel.predict(X), serial.predict(X))

    def test_parallel_matches_serial_with_unseeded_candidates(self):
        # UNSEEDED candidates are reseeded with crc32-derived integers
        # before dispatch, identically in both execution paths, so even
        # "nondeterministic" estimators give worker-count-independent
        # search results.
        X, y = make_problem(4, n_samples=200)
        forest = RandomForestClassifier(n_estimators=5, random_state=UNSEEDED)
        grid = {"max_depth": [3, 5]}
        serial = GridSearchCV(forest, grid, cv=3, random_state=1).fit(X, y)
        parallel = GridSearchCV(forest, grid, cv=3, random_state=1,
                                n_jobs=2).fit(X, y)
        assert parallel.cv_results_ == serial.cv_results_
        assert np.array_equal(parallel.predict(X), serial.predict(X))

    def test_invalid_n_jobs_rejected(self):
        X, y = make_problem(0, n_samples=60)
        with pytest.raises(ValidationError):
            GridSearchCV(DecisionTreeClassifier(), {"max_depth": [2]},
                         n_jobs=0).fit(X, y)


class TestCrossValScoreFolds:
    def test_explicit_folds_match_internal_splitter(self):
        X, y = make_problem(5, n_samples=150)
        splitter = StratifiedKFold(n_splits=3, shuffle=True, random_state=2)
        folds = list(splitter.split(X, y))
        tree = DecisionTreeClassifier(max_depth=4, random_state=0)
        hoisted = cross_val_score(tree, X, y, cv=3, random_state=2,
                                  folds=folds)
        internal = cross_val_score(tree, X, y, cv=3, random_state=2)
        assert np.array_equal(hoisted, internal)
