"""Tests for Pipeline composition."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.learn.feature_selection import SelectKBest
from repro.learn.linear import LogisticRegression
from repro.learn.pipeline import Pipeline
from repro.learn.preprocessing import StandardScaler


def test_pipeline_chains_transform_then_classify(linear_data):
    X_train, y_train, X_test, y_test = linear_data
    pipeline = Pipeline([
        ("scale", StandardScaler()),
        ("select", SelectKBest(scorer="f_classif", k=3)),
        ("classify", LogisticRegression()),
    ]).fit(X_train, y_train)
    assert pipeline.score(X_test, y_test) > 0.85


def test_pipeline_clones_steps(linear_data):
    X_train, y_train, _, _ = linear_data
    scaler = StandardScaler()
    pipeline = Pipeline([("scale", scaler), ("clf", LogisticRegression())])
    pipeline.fit(X_train, y_train)
    # The prototype step must remain unfitted.
    assert not hasattr(scaler, "mean_")


def test_pipeline_exposes_classes(linear_data):
    X_train, y_train, _, _ = linear_data
    pipeline = Pipeline([("clf", LogisticRegression())]).fit(X_train, y_train)
    assert pipeline.classes_.tolist() == [0, 1]


def test_pipeline_predict_proba_delegates(linear_data):
    X_train, y_train, X_test, _ = linear_data
    pipeline = Pipeline([
        ("scale", StandardScaler()),
        ("clf", LogisticRegression()),
    ]).fit(X_train, y_train)
    probabilities = pipeline.predict_proba(X_test)
    assert np.allclose(probabilities.sum(axis=1), 1.0)


def test_empty_pipeline_rejected():
    with pytest.raises(ValidationError):
        Pipeline([]).fit(np.zeros((4, 2)), np.array([0, 1, 0, 1]))


def test_duplicate_step_names_rejected(linear_data):
    X_train, y_train, _, _ = linear_data
    with pytest.raises(ValidationError, match="duplicate"):
        Pipeline([
            ("s", StandardScaler()),
            ("s", LogisticRegression()),
        ]).fit(X_train, y_train)


def test_non_transformer_intermediate_rejected(linear_data):
    X_train, y_train, _, _ = linear_data
    with pytest.raises(ValidationError, match="transformer"):
        Pipeline([
            ("clf1", LogisticRegression()),
            ("clf2", LogisticRegression()),
        ]).fit(X_train, y_train)


def test_non_classifier_final_step_rejected(linear_data):
    X_train, y_train, _, _ = linear_data
    with pytest.raises(ValidationError, match="classifier"):
        Pipeline([("scale", StandardScaler())]).fit(X_train, y_train)


def test_unfitted_pipeline_predict_raises(linear_data):
    _, _, X_test, _ = linear_data
    pipeline = Pipeline([("clf", LogisticRegression())])
    with pytest.raises(ValidationError, match="not fitted"):
        pipeline.predict(X_test)


def test_pipeline_selection_reduces_dimensions(linear_data):
    X_train, y_train, X_test, _ = linear_data
    pipeline = Pipeline([
        ("select", SelectKBest(scorer="pearson", k=2)),
        ("clf", LogisticRegression()),
    ]).fit(X_train, y_train)
    transformed = pipeline._transform(X_test)
    assert transformed.shape == (X_test.shape[0], 2)
