"""Dogfood gate: the repro source tree must satisfy its own C-rules.

This enforces the concurrency invariants documented in DESIGN.md §7.2:
a consistent lock order (C201), no off-lock writes from worker threads
(C202), atomic check-then-act on shared mappings (C203), picklable
process-pool boundaries (C204), no blocking while holding a lock
(C205), and no RNG object shared between concurrent workers (C206).
A failure here means a change put the campaign scheduler's or parallel
grid search's bit-identical-to-serial determinism contract at risk —
run ``repro race`` for the full report; genuinely safe sites need a
``# repro: disable=C2xx -- invariant`` comment stating why.
"""

from pathlib import Path

import repro
from repro.tools.race import race_paths

SOURCE_ROOT = Path(repro.__file__).resolve().parent


def test_source_tree_has_no_unsuppressed_race_violations():
    result = race_paths([SOURCE_ROOT])
    report = "\n".join(
        f"{v.location}: {v.code} {v.message}" for v in result.unsuppressed
    )
    assert result.unsuppressed == [], f"repro race found:\n{report}"
    assert result.n_files > 50  # the whole tree was actually scanned


def test_every_race_suppression_carries_a_reason():
    result = race_paths([SOURCE_ROOT])
    for violation in result.suppressed:
        assert violation.reason, (
            f"{violation.location}: suppressed {violation.code} without a "
            "reason (use '# repro: disable=CODE -- why')"
        )


def test_the_analyzer_still_sees_the_concurrent_code():
    # Guard against the gate passing vacuously: the model must contain
    # the scheduler's worker closure, its locks, and the known (documented)
    # suppressions in the service layer.
    from repro.tools.flow.runner import build_flow_index
    from repro.tools.race.concurrency import build_concurrency

    index = build_flow_index([SOURCE_ROOT])
    con = build_concurrency(index)
    worker = con.facts[
        ("repro.service.scheduler", "CampaignScheduler._execute.<locals>.worker")
    ]
    assert worker.is_thread_target
    assert any(str(lock).endswith("Telemetry._lock")
               for lock in con.lock_kinds)

    result = race_paths([SOURCE_ROOT])
    suppressed_codes = {v.code for v in result.suppressed}
    assert "C203" in suppressed_codes  # telemetry private helpers
    assert "C205" in suppressed_codes  # checkpoint write lock
