"""Tests for the API rate-limit quota (§8: why some vendors were excluded)."""

import numpy as np
import pytest

from repro.exceptions import QuotaExceededError
from repro.platforms import Google, Microsoft


class FakeClock:
    """Deterministic injectable clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def data(linear_data):
    X_train, y_train, _, _ = linear_data
    return X_train, y_train


def test_quota_enforced_within_window(data):
    X, y = data
    clock = FakeClock()
    platform = Google(rate_limit_per_minute=3, clock=clock)
    platform.upload_dataset(X, y)          # request 1
    platform.upload_dataset(X, y)          # request 2
    platform.upload_dataset(X, y)          # request 3
    with pytest.raises(QuotaExceededError, match="rate limit"):
        platform.upload_dataset(X, y)      # request 4 -> rejected


def test_quota_resets_after_window(data):
    X, y = data
    clock = FakeClock()
    platform = Google(rate_limit_per_minute=2, clock=clock)
    platform.upload_dataset(X, y)
    platform.upload_dataset(X, y)
    clock.advance(61.0)
    # The rolling window has moved on; requests flow again.
    dataset_id = platform.upload_dataset(X, y)
    assert dataset_id in platform.list_datasets()


def test_quota_counts_all_mutating_calls(data):
    X, y = data
    clock = FakeClock()
    platform = Microsoft(rate_limit_per_minute=3, clock=clock)
    dataset_id = platform.upload_dataset(X, y)               # 1
    model_id = platform.create_model(dataset_id, classifier="LR")  # 2
    platform.batch_predict(model_id, X[:5])                  # 3
    with pytest.raises(QuotaExceededError):
        platform.batch_predict(model_id, X[:5])              # 4


def test_sliding_window_partial_expiry(data):
    X, y = data
    clock = FakeClock()
    platform = Google(rate_limit_per_minute=2, clock=clock)
    platform.upload_dataset(X, y)    # t = 0
    clock.advance(40.0)
    platform.upload_dataset(X, y)    # t = 40
    clock.advance(25.0)              # t = 65: first request expired
    platform.upload_dataset(X, y)    # allowed (only t=40 in window)
    with pytest.raises(QuotaExceededError):
        platform.upload_dataset(X, y)


def test_polling_calls_consume_quota(data):
    X, y = data
    clock = FakeClock()
    platform = Microsoft(rate_limit_per_minute=3, clock=clock)
    dataset_id = platform.upload_dataset(X, y)               # 1
    model_id = platform.create_model(dataset_id, classifier="LR")  # 2
    platform.get_model(model_id)                             # 3: polls meter too
    with pytest.raises(QuotaExceededError):
        platform.get_model(model_id)                         # 4


def test_batch_predict_consumes_exactly_one_request(data):
    X, y = data
    clock = FakeClock()
    platform = Microsoft(rate_limit_per_minute=3, clock=clock)
    dataset_id = platform.upload_dataset(X, y)               # 1
    model_id = platform.create_model(dataset_id, classifier="LR")  # 2
    # The internal model lookup must not double-bill the predict call.
    platform.batch_predict(model_id, X[:5])                  # 3
    with pytest.raises(QuotaExceededError):
        platform.get_model(model_id)                         # 4


def test_delete_dataset_consumes_quota(data):
    X, y = data
    clock = FakeClock()
    platform = Google(rate_limit_per_minute=2, clock=clock)
    dataset_id = platform.upload_dataset(X, y)               # 1
    platform.delete_dataset(dataset_id)                      # 2
    with pytest.raises(QuotaExceededError):
        platform.upload_dataset(X, y)                        # 3


def test_await_model_meters_each_poll(data):
    X, y = data
    clock = FakeClock()
    platform = Microsoft(
        rate_limit_per_minute=4, clock=clock, synchronous=False
    )
    dataset_id = platform.upload_dataset(X, y)               # 1
    model_id = platform.create_model(dataset_id, classifier="LR")  # 2
    platform.await_model(model_id)                           # >= 1 poll
    with pytest.raises(QuotaExceededError):
        platform.upload_dataset(X, y)


def test_no_limit_by_default(data):
    X, y = data
    platform = Google()
    for _ in range(30):
        platform.upload_dataset(X, y)
    assert len(platform.list_datasets()) == 30
