"""Tests for the platform service API (resources, jobs, quotas)."""

import numpy as np
import pytest

from repro.exceptions import (
    JobFailedError,
    QuotaExceededError,
    ResourceNotFoundError,
    UnsupportedControlError,
)
from repro.platforms import Amazon, Google, LocalLibrary, Microsoft, make_platform
from repro.platforms.base import JobState, ParameterSpec


@pytest.fixture()
def data(linear_data):
    X_train, y_train, X_test, _ = linear_data
    return X_train, y_train, X_test


def test_upload_returns_unique_ids(data):
    X, y, _ = data
    platform = Google()
    first = platform.upload_dataset(X, y)
    second = platform.upload_dataset(X, y)
    assert first != second
    assert set(platform.list_datasets()) == {first, second}


def test_delete_dataset(data):
    X, y, _ = data
    platform = Google()
    dataset_id = platform.upload_dataset(X, y)
    platform.delete_dataset(dataset_id)
    assert platform.list_datasets() == []
    with pytest.raises(ResourceNotFoundError):
        platform.delete_dataset(dataset_id)


def test_upload_quota(data):
    X, y, _ = data
    platform = Google()
    platform.max_upload_samples = 10
    with pytest.raises(QuotaExceededError):
        platform.upload_dataset(X, y)


def test_create_model_unknown_dataset():
    platform = Google()
    with pytest.raises(ResourceNotFoundError):
        platform.create_model("google-ds-999")


def test_model_lifecycle_completed(data):
    X, y, X_test = data
    platform = Microsoft()
    dataset_id = platform.upload_dataset(X, y)
    model_id = platform.create_model(dataset_id, classifier="BST")
    handle = platform.get_model(model_id)
    assert handle.state is JobState.COMPLETED
    predictions = platform.batch_predict(model_id, X_test)
    assert predictions.shape == (X_test.shape[0],)


def test_get_model_unknown_id():
    with pytest.raises(ResourceNotFoundError):
        Google().get_model("nope")


def test_blackbox_rejects_classifier_choice(data):
    X, y, _ = data
    platform = Google()
    dataset_id = platform.upload_dataset(X, y)
    with pytest.raises(UnsupportedControlError, match="black-box"):
        platform.create_model(dataset_id, classifier="LR")


def test_amazon_rejects_feature_selection(data):
    X, y, _ = data
    platform = Amazon()
    dataset_id = platform.upload_dataset(X, y)
    with pytest.raises(UnsupportedControlError, match="feature selection"):
        platform.create_model(dataset_id, feature_selection="filter_pearson")


def test_unknown_classifier_rejected(data):
    X, y, _ = data
    platform = Microsoft()
    dataset_id = platform.upload_dataset(X, y)
    with pytest.raises(UnsupportedControlError, match="not offered"):
        platform.create_model(dataset_id, classifier="KNN")  # not on Azure


def test_unknown_parameter_rejected(data):
    X, y, _ = data
    platform = Amazon()
    dataset_id = platform.upload_dataset(X, y)
    with pytest.raises(UnsupportedControlError, match="no parameter"):
        platform.create_model(dataset_id, classifier="LR", params={"bogus": 1})


def test_unknown_feature_selector_rejected(data):
    X, y, _ = data
    platform = Microsoft()
    dataset_id = platform.upload_dataset(X, y)
    with pytest.raises(UnsupportedControlError, match="feature selector"):
        platform.create_model(dataset_id, feature_selection="pca")


def test_defaults_merged_with_user_params(data):
    X, y, _ = data
    platform = Amazon()
    dataset_id = platform.upload_dataset(X, y)
    model_id = platform.create_model(
        dataset_id, classifier="LR", params={"maxIter": 3}
    )
    handle = platform.get_model(model_id)
    assert handle.params["maxIter"] == 3
    assert handle.params["regParam"] == 1e-2   # default preserved
    assert handle.params["shuffleType"] == "auto"


def test_failed_job_is_reported_not_raised(data):
    X, y, X_test = data
    platform = LocalLibrary()
    dataset_id = platform.upload_dataset(X, y)
    # n_neighbors > n_samples is invalid at training time -> job FAILED.
    model_id = platform.create_model(
        dataset_id, classifier="KNN", params={"n_neighbors": -1}
    )
    handle = platform.get_model(model_id)
    assert handle.state is JobState.FAILED
    assert handle.failure_reason
    with pytest.raises(JobFailedError):
        platform.batch_predict(model_id, X_test)


def test_parameter_spec_default_must_be_in_grid():
    with pytest.raises(Exception):
        ParameterSpec("x", 5, (1, 2, 3))


def test_make_platform_by_name():
    assert make_platform("google").name == "google"
    assert make_platform("local").name == "local"
    with pytest.raises(KeyError):
        make_platform("watson")


def test_job_seed_is_process_independent(data):
    X, y, _ = data
    # crc32-derived seeds: the same call sequence gives the same model id
    # and hence the same seed on any machine.
    a, b = Microsoft(random_state=1), Microsoft(random_state=1)
    ds_a, ds_b = a.upload_dataset(X, y), b.upload_dataset(X, y)
    model_a = a.create_model(ds_a, classifier="RF")
    model_b = b.create_model(ds_b, classifier="RF")
    probe = X[:10]
    assert np.array_equal(
        a.batch_predict(model_a, probe), b.batch_predict(model_b, probe)
    )


def test_job_seed_independent_of_call_order(data):
    # Training the same data with the same configuration must yield the
    # identical model no matter how many unrelated jobs ran before —
    # otherwise baseline and optimized protocols would disagree on
    # black-box platforms.
    X, y, X_test = data
    fresh = Microsoft(random_state=2)
    ds = fresh.upload_dataset(X, y)
    first = fresh.create_model(ds, classifier="RF")

    busy = Microsoft(random_state=2)
    ds_busy = busy.upload_dataset(X, y)
    for _ in range(3):  # unrelated jobs advance the model counter
        busy.create_model(ds_busy, classifier="LR")
    later = busy.create_model(ds_busy, classifier="RF")

    assert np.array_equal(
        fresh.batch_predict(first, X_test),
        busy.batch_predict(later, X_test),
    )


def test_repr_mentions_controls():
    assert "FEAT" in repr(Microsoft())
    assert "none" in repr(Google())
