"""Verification of Table 1 / Table 2: each platform's control surface."""

import pytest

from repro.core.config_space import count_measurements
from repro.platforms import (
    ABM,
    ALL_PLATFORMS,
    Amazon,
    BigML,
    Google,
    LocalLibrary,
    Microsoft,
    PredictionIO,
)


def test_complexity_ordering_matches_figure_2():
    order = [cls.name for cls in ALL_PLATFORMS]
    assert order == [
        "abm", "google", "amazon", "predictionio", "bigml", "microsoft", "local",
    ]
    complexities = [cls.complexity for cls in ALL_PLATFORMS]
    assert complexities == sorted(complexities)


class TestBlackBoxes:
    @pytest.mark.parametrize("cls", [ABM, Google])
    def test_no_controls_exposed(self, cls):
        platform = cls()
        assert platform.exposed_dimensions == frozenset()
        assert platform.classifier_abbrs() == []


class TestAmazon:
    def test_single_classifier_logistic_regression(self):
        assert Amazon().classifier_abbrs() == ["LR"]

    def test_three_parameters_per_table_1(self):
        option = Amazon().controls.classifier("LR")
        assert [p.name for p in option.parameters] == [
            "maxIter", "regParam", "shuffleType",
        ]

    def test_exposes_only_para(self):
        assert Amazon().exposed_dimensions == frozenset({"CLF", "PARA"}) - {"CLF"} \
            or Amazon().exposed_dimensions == frozenset({"CLF", "PARA"})
        # Amazon technically lists LR as its (only) classifier; PARA is the
        # meaningful control.
        assert "PARA" in Amazon().exposed_dimensions
        assert "FEAT" not in Amazon().exposed_dimensions


class TestPredictionIO:
    def test_three_classifiers(self):
        assert PredictionIO().classifier_abbrs() == ["LR", "NB", "DT"]

    def test_parameter_counts_match_table_1(self):
        counts = {
            option.abbr: len(option.parameters)
            for option in PredictionIO().controls.classifiers
        }
        assert counts == {"LR": 3, "NB": 1, "DT": 2}

    def test_no_feature_selection(self):
        assert "FEAT" not in PredictionIO().exposed_dimensions


class TestBigML:
    def test_four_classifiers(self):
        assert BigML().classifier_abbrs() == ["LR", "DT", "BAG", "RF"]

    def test_twelve_parameters_total(self):
        total = sum(
            len(option.parameters) for option in BigML().controls.classifiers
        )
        assert total == 12


class TestMicrosoft:
    def test_eight_feature_selectors(self):
        selectors = Microsoft().controls.feature_selectors
        assert len(selectors) == 8
        assert "fisher_lda" in selectors
        assert any("pearson" in s for s in selectors)

    def test_seven_classifiers(self):
        assert Microsoft().classifier_abbrs() == [
            "LR", "SVM", "AP", "BPM", "BST", "RF", "DJ",
        ]

    def test_twenty_three_parameters_total(self):
        total = sum(
            len(option.parameters) for option in Microsoft().controls.classifiers
        )
        assert total == 23

    def test_all_three_dimensions_exposed(self):
        assert Microsoft().exposed_dimensions == frozenset({"FEAT", "CLF", "PARA"})


class TestLocal:
    def test_ten_classifiers(self):
        assert LocalLibrary().classifier_abbrs() == [
            "LR", "NB", "SVM", "LDA", "KNN", "DT", "BST", "BAG", "RF", "MLP",
        ]

    def test_eight_feature_selectors(self):
        assert len(LocalLibrary().controls.feature_selectors) == 8

    def test_largest_configuration_space(self):
        # Fig 2 / Table 2: local explores the most configurations of any
        # CLF-comparable platform per classifier count.
        local = count_measurements(LocalLibrary())["configs_per_dataset"]
        bigml = count_measurements(BigML())["configs_per_dataset"]
        predictionio = count_measurements(PredictionIO())["configs_per_dataset"]
        assert local > bigml > predictionio


class TestTable2Scale:
    def test_blackbox_platforms_one_measurement_per_dataset(self):
        for cls in (ABM, Google):
            row = count_measurements(cls(), n_datasets=119)
            assert row["configs_per_dataset"] == 1
            assert row["total_measurements"] == 119

    def test_microsoft_dominates_measurement_count(self):
        rows = {
            cls.name: count_measurements(cls(), n_datasets=119)
            for cls in ALL_PLATFORMS
        }
        microsoft = rows["microsoft"]["total_measurements"]
        for name, row in rows.items():
            if name not in ("microsoft", "local"):
                assert row["total_measurements"] < microsoft

    def test_measurement_ordering_matches_paper(self):
        # Paper Table 2 ordering by scale:
        # ABM = Google < Amazon < PredictionIO < BigML < Microsoft-ish
        totals = [
            count_measurements(cls(), n_datasets=119)["total_measurements"]
            for cls in (ABM, Google, Amazon, PredictionIO, BigML, Microsoft)
        ]
        assert totals[0] == totals[1]
        assert totals[1] < totals[2] < totals[3] < totals[4] < totals[5]
