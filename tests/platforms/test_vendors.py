"""Per-vendor behavioural tests: hidden optimizations and translations."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.learn.metrics import f_score
from repro.platforms import (
    ABM,
    ALL_PLATFORMS,
    Amazon,
    BigML,
    Google,
    LocalLibrary,
    Microsoft,
    PredictionIO,
)


@pytest.fixture(scope="module")
def circle_split():
    return load_dataset("synthetic/circle", size_cap=400).split(random_state=0)


@pytest.fixture(scope="module")
def linear_split():
    return load_dataset("synthetic/linear", size_cap=400).split(random_state=0)


def train_and_score(platform, split, **model_kwargs):
    dataset_id = platform.upload_dataset(split.X_train, split.y_train)
    model_id = platform.create_model(dataset_id, **model_kwargs)
    predictions = platform.batch_predict(model_id, split.X_test)
    return f_score(split.y_test, predictions), platform.get_model(model_id)


@pytest.mark.parametrize("cls", ALL_PLATFORMS)
def test_default_model_works_everywhere(cls, linear_split):
    score, _ = train_and_score(cls(random_state=0), linear_split)
    assert score > 0.5


class TestBlackBoxSwitching:
    """§6.1: Google and ABM switch classifier family per dataset."""

    @pytest.mark.parametrize("cls", [Google, ABM])
    def test_nonlinear_on_circle(self, cls, circle_split):
        score, handle = train_and_score(cls(random_state=0), circle_split)
        assert handle.metadata["selection"].chosen_family == "nonlinear"
        assert score > 0.9

    @pytest.mark.parametrize("cls", [Google, ABM])
    def test_linear_on_linear(self, cls, linear_split):
        _, handle = train_and_score(cls(random_state=0), linear_split)
        assert handle.metadata["selection"].chosen_family == "linear"

    def test_blackboxes_beat_plain_lr_baseline_on_circle(self, circle_split):
        # The §4.1 observation: black-box internal optimization beats
        # other platforms' zero-control baselines on non-linear data.
        google_score, _ = train_and_score(Google(random_state=0), circle_split)
        local_score, _ = train_and_score(
            LocalLibrary(random_state=0), circle_split, classifier="LR"
        )
        assert google_score > local_score + 0.2


class TestAmazonHiddenRecipe:
    """§6.2 + Fig 13: Amazon claims LR but acts non-linear at times."""

    def test_nonlinear_on_circle(self, circle_split):
        score, handle = train_and_score(Amazon(random_state=0), circle_split)
        assert handle.metadata["selection"].chosen_family == "nonlinear"
        assert score > 0.85

    def test_classifier_is_reported_as_lr(self, circle_split):
        _, handle = train_and_score(Amazon(random_state=0), circle_split)
        assert handle.classifier_abbr == "LR"  # what the docs claim

    def test_parameters_affect_model(self, linear_split):
        lax, _ = train_and_score(
            Amazon(random_state=0), linear_split,
            classifier="LR", params={"maxIter": 1000, "regParam": 1e-4},
        )
        harsh, _ = train_and_score(
            Amazon(random_state=0), linear_split,
            classifier="LR", params={"maxIter": 1, "regParam": 1.0},
        )
        assert lax >= harsh


class TestBigMLTranslations:
    def test_node_threshold_caps_depth(self, circle_split):
        platform = BigML(random_state=0)
        dataset_id = platform.upload_dataset(
            circle_split.X_train, circle_split.y_train
        )
        model_id = platform.create_model(
            dataset_id, classifier="DT", params={"node_threshold": 32}
        )
        tree = platform.get_model(model_id).estimator
        assert tree.depth() <= 5  # ceil(log2(32)) = 5

    def test_forest_uses_requested_size(self, circle_split):
        platform = BigML(random_state=0)
        dataset_id = platform.upload_dataset(
            circle_split.X_train, circle_split.y_train
        )
        model_id = platform.create_model(
            dataset_id, classifier="RF", params={"number_of_models": 5}
        )
        forest = platform.get_model(model_id).estimator
        assert len(forest.estimators_) == 5


class TestMicrosoftAssembly:
    def test_feature_selection_step_wraps_pipeline(self, linear_split):
        platform = Microsoft(random_state=0)
        dataset_id = platform.upload_dataset(
            linear_split.X_train, linear_split.y_train
        )
        model_id = platform.create_model(
            dataset_id, classifier="BST", feature_selection="filter_pearson"
        )
        from repro.learn.pipeline import Pipeline

        estimator = platform.get_model(model_id).estimator
        assert isinstance(estimator, Pipeline)

    def test_boosted_trees_solve_circle(self, circle_split):
        score, _ = train_and_score(
            Microsoft(random_state=0), circle_split, classifier="BST"
        )
        assert score > 0.9

    def test_default_lr_baseline_is_weak_on_circle(self, circle_split):
        # Azure's default LR (heavy regularization) — the paper's worst
        # baseline — cannot fit the circle.
        score, _ = train_and_score(
            Microsoft(random_state=0), circle_split, classifier="LR"
        )
        assert score < 0.8

    def test_decision_jungle_trains(self, circle_split):
        score, _ = train_and_score(
            Microsoft(random_state=0), circle_split,
            classifier="DJ", params={"n_dags": 4, "max_depth": 8},
        )
        assert score > 0.8


class TestPredictionIO:
    def test_decision_tree_solves_circle(self, circle_split):
        score, _ = train_and_score(
            PredictionIO(random_state=0), circle_split,
            classifier="DT", params={"maxDepth": 16},
        )
        assert score > 0.9

    def test_naive_bayes_lambda_translated(self, linear_split):
        platform = PredictionIO(random_state=0)
        dataset_id = platform.upload_dataset(
            linear_split.X_train, linear_split.y_train
        )
        model_id = platform.create_model(
            dataset_id, classifier="NB", params={"lambda": 1e-4}
        )
        estimator = platform.get_model(model_id).estimator
        assert estimator.var_smoothing == 1e-4


class TestLocalLibrary:
    def test_mlp_available_only_locally(self, circle_split):
        score, _ = train_and_score(
            LocalLibrary(random_state=0), circle_split, classifier="MLP"
        )
        assert score > 0.85

    def test_scaler_feature_step(self, linear_split):
        score, _ = train_and_score(
            LocalLibrary(random_state=0), linear_split,
            classifier="LR", feature_selection="standard_scaler",
        )
        assert score > 0.7
