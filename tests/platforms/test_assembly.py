"""Direct unit tests for the shared pipeline-assembly helpers."""

import numpy as np
import pytest

from repro.exceptions import UnsupportedControlError
from repro.learn.feature_selection import FisherLDATransform, SelectKBest
from repro.learn.linear import LogisticRegression
from repro.learn.pipeline import Pipeline
from repro.learn.preprocessing import StandardScaler
from repro.platforms._assembly import (
    LOCAL_FEATURE_SELECTORS,
    MICROSOFT_FEATURE_SELECTORS,
    build_feature_step,
    wrap_with_feature_step,
)


def test_registries_encode_table1_feat_counts():
    # Table 1: both Microsoft and the local library expose 8 FEAT choices.
    assert len(MICROSOFT_FEATURE_SELECTORS) == 8
    assert len(LOCAL_FEATURE_SELECTORS) == 8


def test_build_feature_step_instantiates_by_name():
    step = build_feature_step("fisher_lda", MICROSOFT_FEATURE_SELECTORS)
    assert isinstance(step, FisherLDATransform)
    step = build_feature_step("filter_pearson", MICROSOFT_FEATURE_SELECTORS)
    assert isinstance(step, SelectKBest)
    assert step.scorer == "pearson"
    step = build_feature_step("gaussian_norm", LOCAL_FEATURE_SELECTORS)
    assert isinstance(step, StandardScaler)


def test_build_feature_step_returns_fresh_instances():
    first = build_feature_step("filter_chi", MICROSOFT_FEATURE_SELECTORS)
    second = build_feature_step("filter_chi", MICROSOFT_FEATURE_SELECTORS)
    assert first is not second


def test_build_feature_step_unknown_name_lists_choices():
    with pytest.raises(UnsupportedControlError) as excinfo:
        build_feature_step("no_such_selector", LOCAL_FEATURE_SELECTORS)
    message = str(excinfo.value)
    assert "no_such_selector" in message
    assert "l1_normalization" in message  # available choices are listed


def test_wrap_without_selection_returns_estimator_unchanged():
    estimator = LogisticRegression()
    wrapped = wrap_with_feature_step(estimator, None, LOCAL_FEATURE_SELECTORS)
    assert wrapped is estimator


def test_wrap_with_selection_builds_two_step_pipeline():
    estimator = LogisticRegression()
    wrapped = wrap_with_feature_step(
        estimator, "standard_scaler", LOCAL_FEATURE_SELECTORS
    )
    assert isinstance(wrapped, Pipeline)
    names = [name for name, _ in wrapped.steps]
    assert names == ["features", "classifier"]
    assert wrapped.steps[1][1] is estimator


def test_every_registry_factory_builds_a_working_step(linear_data):
    X_train, y_train, _, _ = linear_data
    for registry in (MICROSOFT_FEATURE_SELECTORS, LOCAL_FEATURE_SELECTORS):
        for name in registry:
            pipeline = wrap_with_feature_step(
                LogisticRegression(random_state=0), name, registry
            )
            pipeline.fit(X_train, y_train)
            predictions = pipeline.predict(X_train)
            assert predictions.shape == y_train.shape
            assert set(np.unique(predictions)) <= set(np.unique(y_train))
