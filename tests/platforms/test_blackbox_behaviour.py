"""Black-box behaviour across the corpus: consistency and plausibility."""

import numpy as np
import pytest

from repro.core import Configuration, ExperimentRunner
from repro.datasets import load_corpus, load_dataset
from repro.platforms import ABM, Google


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(split_seed=11)


def selections(platform_cls, datasets, runner):
    out = {}
    for dataset in datasets:
        platform = platform_cls(random_state=0)
        split = runner.split(dataset)
        ds = platform.upload_dataset(split.X_train, split.y_train)
        model = platform.create_model(ds)
        out[dataset.name] = platform.get_model(model).metadata["selection"]
    return out


@pytest.fixture(scope="module")
def corpus():
    return load_corpus(max_datasets=8, size_cap=200, feature_cap=8,
                       random_state=5)


@pytest.mark.parametrize("platform_cls", [Google, ABM])
def test_blackbox_uses_both_families_across_corpus(platform_cls, corpus, runner):
    datasets = corpus + [
        load_dataset("synthetic/circle", size_cap=200),
        load_dataset("synthetic/linear", size_cap=200),
    ]
    chosen = {
        s.chosen_family for s in selections(platform_cls, datasets, runner).values()
    }
    assert chosen == {"linear", "nonlinear"}


@pytest.mark.parametrize("platform_cls", [Google, ABM])
def test_selection_scores_recorded(platform_cls, corpus, runner):
    for outcome in selections(platform_cls, corpus[:3], runner).values():
        assert 0.0 <= outcome.linear_score <= 1.0
        assert 0.0 <= outcome.nonlinear_score <= 1.0
        assert outcome.n_probe_samples > 0


def test_blackbox_selection_reproducible(runner, corpus):
    dataset = corpus[0]
    a = selections(Google, [dataset], runner)[dataset.name]
    b = selections(Google, [dataset], runner)[dataset.name]
    assert a.chosen_family == b.chosen_family
    assert a.linear_score == pytest.approx(b.linear_score)


def test_google_and_abm_can_disagree(runner):
    # §6.2: the two black boxes disagreed on ~23% of datasets.  Their
    # probes differ (candidate families, probe sizes, margins), so across
    # a noisy-dataset batch at least one disagreement should surface.
    datasets = [
        load_dataset(name, size_cap=200) for name in (
            "synthetic/circles_noisy", "synthetic/moons_hard",
            "synthetic/linear_overlap", "synthetic/xor",
            "synthetic/linear_imbalanced", "synthetic/gauss_quantiles",
        )
    ]
    google = {
        name: s.chosen_family
        for name, s in selections(Google, datasets, runner).items()
    }
    abm = {
        name: s.chosen_family
        for name, s in selections(ABM, datasets, runner).items()
    }
    agreements = [google[name] == abm[name] for name in google]
    assert any(agreements)           # mostly similar policies...
    assert not all(agreements)       # ...but not identical (paper §6.2)
