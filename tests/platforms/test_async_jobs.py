"""Tests for the asynchronous job mode of the platform service API."""

import numpy as np
import pytest

from repro.exceptions import JobFailedError
from repro.platforms import Google, Microsoft
from repro.platforms.base import JobState


@pytest.fixture()
def data(linear_data):
    X_train, y_train, X_test, _ = linear_data
    return X_train, y_train, X_test


def test_async_create_leaves_job_queued(data):
    X, y, _ = data
    platform = Google(synchronous=False)
    dataset_id = platform.upload_dataset(X, y)
    model_id = platform.create_model(dataset_id)
    assert platform.get_model(model_id).state is JobState.QUEUED
    assert platform.pending_jobs() == [model_id]


def test_queued_model_cannot_predict(data):
    X, y, X_test = data
    platform = Google(synchronous=False)
    dataset_id = platform.upload_dataset(X, y)
    model_id = platform.create_model(dataset_id)
    with pytest.raises(JobFailedError, match="not ready"):
        platform.batch_predict(model_id, X_test)


def test_process_one_job_fifo(data):
    X, y, _ = data
    platform = Microsoft(synchronous=False)
    dataset_id = platform.upload_dataset(X, y)
    first = platform.create_model(dataset_id, classifier="LR")
    second = platform.create_model(dataset_id, classifier="SVM")
    assert platform.process_one_job() == first
    assert platform.get_model(first).state is JobState.COMPLETED
    assert platform.get_model(second).state is JobState.QUEUED
    assert platform.process_one_job() == second


def test_process_empty_queue_returns_none():
    assert Google(synchronous=False).process_one_job() is None


def test_await_model_drains_queue_up_to_job(data):
    X, y, X_test = data
    platform = Microsoft(synchronous=False)
    dataset_id = platform.upload_dataset(X, y)
    first = platform.create_model(dataset_id, classifier="LR")
    second = platform.create_model(dataset_id, classifier="AP")
    handle = platform.await_model(second)
    assert handle.state is JobState.COMPLETED
    assert platform.get_model(first).state is JobState.COMPLETED
    predictions = platform.batch_predict(second, X_test)
    assert len(predictions) == len(X_test)


def test_deleting_dataset_fails_queued_job(data):
    X, y, _ = data
    platform = Google(synchronous=False)
    dataset_id = platform.upload_dataset(X, y)
    model_id = platform.create_model(dataset_id)
    platform.delete_dataset(dataset_id)
    platform.process_one_job()
    handle = platform.get_model(model_id)
    assert handle.state is JobState.FAILED
    assert "deleted" in handle.failure_reason


def test_async_and_sync_produce_identical_models(data):
    X, y, X_test = data
    sync = Microsoft(random_state=3, synchronous=True)
    ds_sync = sync.upload_dataset(X, y)
    model_sync = sync.create_model(ds_sync, classifier="RF")

    adeferred = Microsoft(random_state=3, synchronous=False)
    ds_async = adeferred.upload_dataset(X, y)
    model_async = adeferred.create_model(ds_async, classifier="RF")
    adeferred.await_model(model_async)

    assert np.array_equal(
        sync.batch_predict(model_sync, X_test),
        adeferred.batch_predict(model_async, X_test),
    )
