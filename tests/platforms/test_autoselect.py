"""Tests for the black-box server-side classifier auto-selection."""

import numpy as np
import pytest

from repro.datasets.synthetic import make_circles, make_classification
from repro.learn.linear import LogisticRegression
from repro.learn.neighbors import KNeighborsClassifier
from repro.learn.tree import DecisionTreeClassifier
from repro.platforms.autoselect import AutoClassifierSelector


def make_selector(**overrides):
    defaults = dict(
        linear_candidate=LogisticRegression(),
        nonlinear_candidate=DecisionTreeClassifier(max_depth=6, random_state=0),
        probe_size=300,
        n_folds=3,
        margin=0.01,
        random_state=0,
    )
    defaults.update(overrides)
    return AutoClassifierSelector(**defaults)


def test_picks_nonlinear_on_circles():
    X, y = make_circles(n_samples=400, noise=0.08, random_state=0)
    winner, outcome = make_selector().select(X, y)
    assert outcome.chosen_family == "nonlinear"
    assert isinstance(winner, DecisionTreeClassifier)
    assert outcome.nonlinear_score > outcome.linear_score


def test_picks_linear_on_noisy_linear_data():
    X, y = make_classification(
        n_samples=400, n_features=2, class_sep=1.5, flip_y=0.1, random_state=0
    )
    _, outcome = make_selector().select(X, y)
    assert outcome.chosen_family == "linear"


def test_margin_biases_toward_linear():
    # With an enormous margin the non-linear candidate can never win.
    X, y = make_circles(n_samples=300, noise=0.05, random_state=1)
    _, outcome = make_selector(margin=10.0).select(X, y)
    assert outcome.chosen_family == "linear"


def test_probe_subsampling_bounded():
    X, y = make_classification(n_samples=5000, class_sep=2.0, random_state=2)
    _, outcome = make_selector(probe_size=200).select(X, y)
    # Stratified probe stays near the requested size.
    assert outcome.n_probe_samples <= 220


def test_small_dataset_uses_everything():
    X, y = make_classification(n_samples=60, class_sep=2.0, random_state=3)
    _, outcome = make_selector(probe_size=500).select(X, y)
    assert outcome.n_probe_samples == 60


def test_winner_is_unfitted_clone():
    X, y = make_circles(n_samples=200, noise=0.05, random_state=4)
    winner, _ = make_selector().select(X, y)
    assert not hasattr(winner, "tree_")
    assert not hasattr(winner, "coef_")


def test_deterministic_given_seed():
    X, y = make_circles(n_samples=300, noise=0.2, random_state=5)
    _, outcome_a = make_selector(random_state=9).select(X, y)
    _, outcome_b = make_selector(random_state=9).select(X, y)
    assert outcome_a.chosen_family == outcome_b.chosen_family
    assert outcome_a.linear_score == pytest.approx(outcome_b.linear_score)


def test_works_with_knn_nonlinear_candidate():
    X, y = make_circles(n_samples=300, noise=0.05, random_state=6)
    selector = make_selector(
        nonlinear_candidate=KNeighborsClassifier(n_neighbors=7)
    )
    _, outcome = selector.select(X, y)
    assert outcome.chosen_family == "nonlinear"


def test_selection_is_fallible_on_tiny_noisy_probes():
    # §6: "their mechanisms occasionally err". A coarse probe on noisy,
    # weakly non-linear data sometimes picks the wrong family; across many
    # seeds at least one decision differs from the large-probe consensus.
    X, y = make_circles(n_samples=600, noise=0.35, random_state=7)
    decisions = set()
    for seed in range(12):
        _, outcome = make_selector(
            probe_size=40, n_folds=2, random_state=seed
        ).select(X, y)
        decisions.add(outcome.chosen_family)
    assert len(decisions) == 2  # both families chosen across seeds


# ---------------------------------------------------------------------------
# Direct unit tests for the internal probe/scoring helpers
# ---------------------------------------------------------------------------


def test_probe_indices_stratified_and_bounded():
    rng = np.random.default_rng(0)
    y = np.array([0] * 900 + [1] * 100)
    selector = make_selector(probe_size=100)
    probe = selector._probe_indices(y, rng)
    assert probe.size <= 120  # near the requested size
    # Both classes survive the subsample, minority included.
    assert set(np.unique(y[probe])) == {0, 1}
    assert np.count_nonzero(y[probe] == 1) >= 2
    # Indices are sorted, unique and in range.
    assert np.all(np.diff(probe) > 0)
    assert probe.min() >= 0 and probe.max() < y.size


def test_probe_indices_identity_when_small():
    rng = np.random.default_rng(0)
    y = np.array([0, 1] * 20)
    probe = make_selector(probe_size=500)._probe_indices(y, rng)
    assert np.array_equal(probe, np.arange(40))


def test_cv_score_degenerate_probe_falls_back_to_train_fit():
    # With a 2-sample minority class no 2-fold stratified split exists;
    # the probe falls back to a training-fit comparison instead of failing.
    X, y = make_classification(n_samples=40, class_sep=3.0, random_state=8)
    y = y.copy()
    y[:] = 0
    y[:2] = 1
    rng = np.random.default_rng(0)
    selector = make_selector(n_folds=3)
    score = selector._cv_score(LogisticRegression(random_state=0), X, y, rng)
    assert 0.0 <= score <= 1.0


def test_cv_score_unfittable_candidate_scores_zero():
    from repro.exceptions import ValidationError
    from repro.learn.base import BaseEstimator, ClassifierMixin

    class Unfittable(BaseEstimator, ClassifierMixin):
        def __init__(self, random_state=None):
            self.random_state = random_state

        def fit(self, X, y):
            raise ValidationError("cannot fit anything")

        def predict(self, X):  # pragma: no cover - fit always raises
            return np.zeros(len(X))

    X, y = make_classification(n_samples=120, class_sep=2.0, random_state=9)
    rng = np.random.default_rng(0)
    score = make_selector()._cv_score(Unfittable(), X, y, rng)
    assert score == 0.0
