"""Every enumerable configuration must actually train on every platform.

This sweeps each platform's single-axis configuration space (and each
feature selector once) on a small dataset and asserts no training job
fails — catching bad parameter translations between Table 1's vendor
parameter names and the local estimators.
"""

import pytest

from repro.core import ExperimentRunner, enumerate_configurations
from repro.core.config_space import per_control_configurations
from repro.core.controls import FEAT
from repro.datasets import load_dataset
from repro.platforms import ALL_PLATFORMS


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("synthetic/linear_10d", size_cap=120, feature_cap=6)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(split_seed=3)


@pytest.mark.parametrize("platform_cls", ALL_PLATFORMS)
def test_all_single_axis_configurations_train(platform_cls, dataset, runner):
    platform = platform_cls(random_state=0)
    configurations = list(enumerate_configurations(
        platform, para_grid="single_axis", include_feat=False
    ))
    store = runner.sweep(platform, [dataset], configurations)
    failures = [r for r in store if not r.ok]
    assert not failures, [
        (f.configuration.label(), f.failure_reason) for f in failures[:5]
    ]
    # Every result carries valid metrics.
    for result in store:
        assert 0.0 <= result.f_score <= 1.0


@pytest.mark.parametrize(
    "platform_cls",
    [cls for cls in ALL_PLATFORMS if cls.controls.feature_selectors],
)
def test_every_feature_selector_trains(platform_cls, dataset, runner):
    platform = platform_cls(random_state=0)
    configurations = per_control_configurations(platform, FEAT)
    assert configurations
    store = runner.sweep(platform, [dataset], configurations)
    failures = [r for r in store if not r.ok]
    assert not failures, [
        (f.configuration.label(), f.failure_reason) for f in failures[:5]
    ]
