"""Tests pinning the vendor-parameter -> estimator translations."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.platforms import Amazon, BigML, LocalLibrary, Microsoft, PredictionIO


@pytest.fixture(scope="module")
def split():
    return load_dataset("synthetic/linear_10d", size_cap=150, feature_cap=6).split(
        random_state=0
    )


def trained_estimator(platform, split, **kwargs):
    dataset_id = platform.upload_dataset(split.X_train, split.y_train)
    model_id = platform.create_model(dataset_id, **kwargs)
    handle = platform.get_model(model_id)
    assert handle.state.value == "COMPLETED", handle.failure_reason
    return handle.estimator


class TestAmazonTranslation:
    def test_reg_param_inverts_to_C(self, split):
        estimator = trained_estimator(
            Amazon(random_state=0), split,
            classifier="LR", params={"regParam": 0.25},
        )
        # Amazon may wrap LR in its binning pipeline; find the LR.
        lr = getattr(estimator, "final_estimator_", estimator)
        assert lr.C == pytest.approx(4.0)
        assert lr.solver == "sgd"

    def test_shuffle_type_none(self, split):
        estimator = trained_estimator(
            Amazon(random_state=0), split,
            classifier="LR", params={"shuffleType": "none"},
        )
        lr = getattr(estimator, "final_estimator_", estimator)
        assert lr.shuffle is False


class TestPredictionIOTranslation:
    def test_fit_intercept_respected(self, split):
        estimator = trained_estimator(
            PredictionIO(random_state=0), split,
            classifier="LR", params={"fitIntercept": False},
        )
        assert estimator.fit_intercept is False
        assert estimator.intercept_ == 0.0

    def test_max_depth_respected(self, split):
        estimator = trained_estimator(
            PredictionIO(random_state=0), split,
            classifier="DT", params={"maxDepth": 2},
        )
        assert estimator.depth() <= 2


class TestBigMLTranslation:
    def test_l1_regularization_switches_solver(self, split):
        estimator = trained_estimator(
            BigML(random_state=0), split,
            classifier="LR", params={"regularization": "l1"},
        )
        assert estimator.penalty == "l1"
        assert estimator.solver == "sgd"

    def test_deterministic_ordering_pins_seed(self, split):
        platform = BigML(random_state=0)
        a = trained_estimator(
            platform, split, classifier="RF",
            params={"ordering": "deterministic", "number_of_models": 3},
        )
        b = trained_estimator(
            platform, split, classifier="RF",
            params={"ordering": "deterministic", "number_of_models": 3},
        )
        probe = split.X_test[:20]
        assert np.array_equal(
            a.predict_proba(probe), b.predict_proba(probe)
        )

    def test_bagging_builds_requested_members(self, split):
        estimator = trained_estimator(
            BigML(random_state=0), split,
            classifier="BAG", params={"number_of_models": 4},
        )
        assert len(estimator.estimators_) == 4


class TestMicrosoftTranslation:
    def test_lr_no_regularization_when_weights_zero(self, split):
        estimator = trained_estimator(
            Microsoft(random_state=0), split,
            classifier="LR", params={"l1_weight": 0.01, "l2_weight": 100.0},
        )
        assert estimator.penalty == "l2"
        assert estimator.C == pytest.approx(0.01)

    def test_lr_l1_dominant_uses_sgd(self, split):
        estimator = trained_estimator(
            Microsoft(random_state=0), split,
            classifier="LR", params={"l1_weight": 100.0, "l2_weight": 0.01},
        )
        assert estimator.penalty == "l1"
        assert estimator.solver == "sgd"

    def test_bst_max_leaves_becomes_depth(self, split):
        estimator = trained_estimator(
            Microsoft(random_state=0), split,
            classifier="BST", params={"max_leaves": 4, "n_trees": 5},
        )
        assert estimator.max_depth == 2  # ceil(log2(4))

    def test_rf_replicate_disables_bootstrap(self, split):
        estimator = trained_estimator(
            Microsoft(random_state=0), split,
            classifier="RF", params={"resampling": "replicate", "n_trees": 3},
        )
        assert estimator.bootstrap is False

    def test_rf_random_splits_mapping(self, split):
        one = trained_estimator(
            Microsoft(random_state=0), split,
            classifier="RF", params={"random_splits": 1, "n_trees": 2},
        )
        assert one.max_features == 1
        all_features = trained_estimator(
            Microsoft(random_state=0), split,
            classifier="RF", params={"random_splits": 1024, "n_trees": 2},
        )
        assert all_features.max_features is None

    def test_dj_width_capped_for_simulation(self, split):
        estimator = trained_estimator(
            Microsoft(random_state=0), split,
            classifier="DJ", params={"max_width": 256, "n_dags": 2},
        )
        assert estimator.max_width == 64  # documented simulation cap


class TestLocalTranslation:
    def test_lr_l1_with_lbfgs_falls_back_to_sgd(self, split):
        estimator = trained_estimator(
            LocalLibrary(random_state=0), split,
            classifier="LR", params={"penalty": "l1", "solver": "lbfgs"},
        )
        assert estimator.solver == "sgd"

    def test_nb_uniform_prior(self, split):
        estimator = trained_estimator(
            LocalLibrary(random_state=0), split,
            classifier="NB", params={"prior": "uniform"},
        )
        assert estimator.class_prior_.tolist() == [0.5, 0.5]

    def test_lda_shrinkage_none_string(self, split):
        estimator = trained_estimator(
            LocalLibrary(random_state=0), split,
            classifier="LDA", params={"shrinkage": "none"},
        )
        assert estimator.shrinkage is None

    def test_dt_max_features_all(self, split):
        estimator = trained_estimator(
            LocalLibrary(random_state=0), split,
            classifier="DT", params={"max_features": "all"},
        )
        assert estimator.max_features is None
