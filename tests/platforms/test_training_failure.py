"""Tests for the structured TrainingFailure record on failed jobs."""

import numpy as np
import pytest

from repro.exceptions import JobFailedError, ValidationError
from repro.learn.linear import LogisticRegression
from repro.platforms import Google
from repro.platforms.base import JobState, TrainingFailure


@pytest.fixture()
def data(linear_data):
    X_train, y_train, _, _ = linear_data
    return X_train, y_train


class _ExplodingEstimator(LogisticRegression):
    """Estimator whose fit raises a configurable exception."""

    def __init__(self, exc=None, **kwargs):
        super().__init__(**kwargs)
        self.exc = exc

    def fit(self, X, y):
        raise self.exc


def test_deleted_dataset_failure_is_structured(data):
    X, y = data
    platform = Google(synchronous=False)
    dataset_id = platform.upload_dataset(X, y)
    model_id = platform.create_model(dataset_id)
    platform.delete_dataset(dataset_id)
    platform.process_one_job()
    handle = platform.get_model(model_id)
    assert handle.state is JobState.FAILED
    failure = handle.failure_reason
    assert isinstance(failure, TrainingFailure)
    assert failure.stage == "queue"
    assert failure.kind == "ResourceNotFoundError"
    # str-compatibility: renders and substring-matches like the old string.
    assert "deleted" in failure
    assert "deleted" in str(failure)


def test_fit_failure_records_stage_kind_and_detail(data, monkeypatch):
    X, y = data
    platform = Google()
    exploding = _ExplodingEstimator(exc=ValidationError("bad fold geometry"))
    monkeypatch.setattr(
        platform, "_assemble", lambda handle, X, y: exploding
    )
    dataset_id = platform.upload_dataset(X, y)
    model_id = platform.create_model(dataset_id)
    handle = platform.get_model(model_id)
    assert handle.state is JobState.FAILED
    failure = handle.failure_reason
    assert failure.stage == "fit"
    assert failure.kind == "ValidationError"
    assert failure.detail == "bad fold geometry"
    assert failure.to_dict() == {
        "stage": "fit",
        "kind": "ValidationError",
        "detail": "bad fold geometry",
    }


def test_assemble_failure_records_assemble_stage(data, monkeypatch):
    X, y = data

    def broken_assemble(handle, X, y):
        raise ValueError("unbuildable configuration")

    platform = Google()
    monkeypatch.setattr(platform, "_assemble", broken_assemble)
    dataset_id = platform.upload_dataset(X, y)
    model_id = platform.create_model(dataset_id)
    failure = platform.get_model(model_id).failure_reason
    assert failure.stage == "assemble"
    assert failure.kind == "ValueError"


def test_failure_reason_renders_in_batch_predict_error(data, monkeypatch):
    X, y = data
    platform = Google()
    exploding = _ExplodingEstimator(exc=ValidationError("needs two classes"))
    monkeypatch.setattr(platform, "_assemble", lambda handle, X, y: exploding)
    dataset_id = platform.upload_dataset(X, y)
    model_id = platform.create_model(dataset_id)
    with pytest.raises(JobFailedError) as excinfo:
        platform.batch_predict(model_id, X)
    assert "needs two classes" in str(excinfo.value)


def test_programming_errors_propagate_instead_of_failing_the_job(
    data, monkeypatch
):
    # A TypeError is a bug in the simulator, not a property of the
    # configuration: the narrowed handler must let it surface.
    X, y = data
    platform = Google()
    exploding = _ExplodingEstimator(exc=TypeError("simulator bug"))
    monkeypatch.setattr(platform, "_assemble", lambda handle, X, y: exploding)
    dataset_id = platform.upload_dataset(X, y)
    with pytest.raises(TypeError, match="simulator bug"):
        platform.create_model(dataset_id)


def test_numerical_breakdown_fails_the_job(data, monkeypatch):
    X, y = data
    platform = Google()
    exploding = _ExplodingEstimator(
        exc=np.linalg.LinAlgError("singular matrix")
    )
    monkeypatch.setattr(platform, "_assemble", lambda handle, X, y: exploding)
    dataset_id = platform.upload_dataset(X, y)
    model_id = platform.create_model(dataset_id)
    failure = platform.get_model(model_id).failure_reason
    assert failure.kind == "LinAlgError"
    assert "singular" in failure
