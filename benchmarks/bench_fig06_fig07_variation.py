"""Figures 6 and 7 — the risk side of complexity.

Figure 6: per-platform range of per-configuration average F-scores when
tuning all available controls.  Figure 7: the share of that variation
attributable to each control dimension individually.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro.analysis import per_control_variation, performance_variation, render_table
from repro.core.controls import CLF, FEAT, PARA
from repro.platforms import ALL_PLATFORMS

COMPLEXITY_ORDER = [cls.name for cls in ALL_PLATFORMS]
TUNABLE = ["amazon", "bigml", "predictionio", "microsoft", "local"]


def test_fig6_overall_variation(benchmark, optimized_store):
    def compute():
        return {
            platform: performance_variation(optimized_store, platform)
            for platform in COMPLEXITY_ORDER
        }

    variation = benchmark(compute)
    print_banner("Figure 6 — performance variation when tuning all controls")
    print(render_table(
        ["platform", "min avg-F", "max avg-F", "spread", "# configs"],
        [
            [p, f"{v.minimum:.3f}", f"{v.maximum:.3f}",
             f"{v.spread:.3f}", v.n_configurations]
            for p, v in variation.items()
        ],
    ))
    # Paper shape: variation grows with complexity; the local library and
    # Microsoft have the largest ranges, black boxes effectively none.
    spreads = {p: v.spread for p, v in variation.items()}
    assert max(spreads, key=lambda p: spreads[p]) in ("microsoft", "local")
    assert spreads["microsoft"] > spreads["amazon"]
    assert spreads["abm"] == 0.0  # single hidden configuration
    assert spreads["google"] == 0.0


def test_fig7_variation_share_per_control(
    benchmark, optimized_store, control_stores
):
    def compute():
        return {
            platform: per_control_variation(
                control_stores, optimized_store, platform
            )
            for platform in TUNABLE
        }

    shares = benchmark(compute)
    print_banner("Figure 7 — share of overall variation from each control "
                 "(normalized; 'No Data' = control unsupported)")
    print(render_table(
        ["platform", "FeatureSelection", "ClassifierSelection", "ParameterTuning"],
        [
            [
                platform,
                *(
                    f"{shares[platform][d]:.2f}"
                    if np.isfinite(shares[platform][d]) else "No Data"
                    for d in (FEAT, CLF, PARA)
                ),
            ]
            for platform in TUNABLE
        ],
    ))
    # Paper shape: classifier choice is the largest contributor to
    # variation on the platforms that expose several classifiers.
    for platform in ("microsoft", "predictionio", "local"):
        clf_share = shares[platform][CLF]
        para_share = shares[platform][PARA]
        assert clf_share >= para_share or clf_share > 0.5
