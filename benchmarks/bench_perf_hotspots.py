"""Hot-path speedups driven by ``repro perf`` findings, vs. seed code.

Measures the vectorized replacements for the analyzer's confirmed
P301/P302-class hotspots against the seed implementations kept verbatim
in :mod:`benchmarks.perf_reference`, plus the P304 FitCache routing of
platform FEAT steps, on three scenarios:

* ``mutual_info`` — per-bin/per-class Python loops vs one ``bincount``,
* ``stratified_kfold`` — per-index fold assembly vs strided slices,
* ``feat_cache_sweep`` — a per-candidate FEAT refit vs the memoized
  fit the platforms now share through their ``FitCache``.

Every scenario asserts the optimized path produces **bit-identical**
outputs before timing counts; speed without equality is a bug, not a
result.  Timings and speedups are written to ``BENCH_perf.json``.

(A fourth candidate — vectorizing ``count_score`` with a whole-matrix
sort — measured ~2x *slower* than the seed's per-column ``np.unique``
loop at every scale, so the loop stays, with a documented P301
suppression recording the measurement.)

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_hotspots.py [--quick]
        [--output BENCH_perf.json]

or via pytest (quick mode) as part of the bench suite.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks.perf_reference import (
        ReferenceStratifiedKFold,
        reference_mutual_info_score,
    )
except ImportError:  # running as a script: benchmarks/ itself is sys.path[0]
    from perf_reference import (
        ReferenceStratifiedKFold,
        reference_mutual_info_score,
    )

from repro.learn.cache import FitCache
from repro.learn.feature_selection import SelectKBest
from repro.learn.feature_selection.filters import mutual_info_score
from repro.learn.model_selection import StratifiedKFold

SIZES = {
    "quick": {"n_samples": 2000, "n_features": 30, "n_splits": 5,
              "n_candidates": 6, "repeats": 2},
    "full": {"n_samples": 20000, "n_features": 80, "n_splits": 10,
             "n_candidates": 12, "repeats": 3},
}


def make_dataset(n_samples: int, n_features: int, seed: int = 0):
    """Synthetic binary task with a mix of continuous/discrete columns."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_samples, n_features))
    X[:, ::3] = rng.integers(0, 12, size=X[:, ::3].shape)  # discrete cols
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return X, y


def _best_time(fn, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def scenario_mutual_info(size: dict) -> dict:
    """MI after binning: bins x classes Python loops vs one bincount."""
    X, y = make_dataset(size["n_samples"], size["n_features"], seed=2)
    identical = bool(np.array_equal(mutual_info_score(X, y),
                                    reference_mutual_info_score(X, y)))
    assert identical, "vectorized mutual_info_score diverged from seed"
    t_base = _best_time(lambda: reference_mutual_info_score(X, y),
                        size["repeats"])
    t_opt = _best_time(lambda: mutual_info_score(X, y), size["repeats"])
    return {"baseline_s": t_base, "optimized_s": t_opt,
            "speedup": t_base / t_opt, "bit_identical": identical}


def scenario_stratified_kfold(size: dict) -> dict:
    """Fold assembly: per-index Python lists vs strided slices."""
    X, y = make_dataset(size["n_samples"], 3, seed=3)
    splits = size["n_splits"]

    fast = list(StratifiedKFold(n_splits=splits,
                                random_state=0).split(X, y))
    ref = list(ReferenceStratifiedKFold(n_splits=splits,
                                        random_state=0).split(X, y))
    identical = len(fast) == len(ref) and all(
        np.array_equal(ft, rt) and np.array_equal(fe, re)
        for (ft, fe), (rt, re) in zip(fast, ref)
    )
    assert identical, "vectorized StratifiedKFold diverged from seed"

    t_base = _best_time(
        lambda: list(ReferenceStratifiedKFold(
            n_splits=splits, random_state=0).split(X, y)),
        size["repeats"])
    t_opt = _best_time(
        lambda: list(StratifiedKFold(
            n_splits=splits, random_state=0).split(X, y)),
        size["repeats"])
    return {"baseline_s": t_base, "optimized_s": t_opt,
            "speedup": t_base / t_opt, "bit_identical": bool(identical)}


def scenario_feat_cache_sweep(size: dict) -> dict:
    """A parameter sweep's FEAT step: refit per candidate vs FitCache."""
    X, y = make_dataset(size["n_samples"], size["n_features"], seed=4)
    n_candidates = size["n_candidates"]

    def baseline():
        outputs = []
        for _ in range(n_candidates):
            step = SelectKBest(scorer="mutual_info", k=0.5)
            outputs.append(step.fit(X, y).transform(X))
        return outputs

    def optimized():
        cache = FitCache()
        outputs = []
        for _ in range(n_candidates):
            step = SelectKBest(scorer="mutual_info", k=0.5)
            _, transformed = cache.fit_transform(step, X, y)
            outputs.append(transformed)
        return outputs

    base_out = baseline()
    opt_out = optimized()
    identical = all(np.array_equal(b, o)
                    for b, o in zip(base_out, opt_out))
    assert identical, "cached FEAT transforms diverged from refits"

    t_base = _best_time(baseline, size["repeats"])
    t_opt = _best_time(optimized, size["repeats"])
    return {"baseline_s": t_base, "optimized_s": t_opt,
            "speedup": t_base / t_opt, "bit_identical": bool(identical)}


SCENARIOS = {
    "mutual_info": scenario_mutual_info,
    "stratified_kfold": scenario_stratified_kfold,
    "feat_cache_sweep": scenario_feat_cache_sweep,
}


def run_bench(mode: str = "quick") -> dict:
    """Run every scenario at ``mode`` scale; return the report dict."""
    size = SIZES[mode]
    report = {"mode": mode, "sizes": size, "scenarios": {}}
    for name, scenario in SCENARIOS.items():
        report["scenarios"][name] = scenario(size)
    return report


def print_report(report: dict) -> None:
    """Print the scenario table the JSON report serializes."""
    print()
    print("=" * 72)
    print(f"Perf-analyzer hotspot speedups over seed implementation "
          f"({report['mode']} mode)")
    print("=" * 72)
    print(f"{'scenario':<18} {'seed (s)':>10} {'optimized (s)':>14} "
          f"{'speedup':>9}  identical")
    for name, result in report["scenarios"].items():
        print(f"{name:<18} {result['baseline_s']:>10.4f} "
              f"{result['optimized_s']:>14.4f} {result['speedup']:>8.2f}x  "
              f"{result['bit_identical']}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small problem sizes (CI smoke run)")
    parser.add_argument("--output", default="BENCH_perf.json",
                        help="path for the JSON report")
    options = parser.parse_args(argv)

    mode = "quick" if options.quick else "full"
    report = run_bench(mode)
    print_report(report)

    Path(options.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {options.output}")
    slow = [name for name, result in report["scenarios"].items()
            if result["speedup"] < 1.0]
    if slow:
        print(f"FAIL: scenarios slower than seed: {', '.join(slow)}")
        return 1
    return 0


def test_perf_hotspot_speedup():
    """Quick-mode bench: bit-identical outputs and a real speedup."""
    report = run_bench("quick")
    print_report(report)
    for name, result in report["scenarios"].items():
        assert result["bit_identical"], name
        assert result["speedup"] > 0
    # The headline fixes must actually pay at bench scale.
    assert report["scenarios"]["mutual_info"]["speedup"] > 1.0
    assert report["scenarios"]["feat_cache_sweep"]["speedup"] > 1.0


if __name__ == "__main__":
    raise SystemExit(main())
