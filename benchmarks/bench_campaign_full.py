"""Full-corpus campaign wall-clock: serial vs. threads vs. processes.

The paper's headline grid (Table 3 / Fig. 4) is CPU-bound training:
every dataset × every platform × the per-platform configuration space.
The thread scheduler overlaps request *waiting* but the GIL serializes
the *compute*; the process-sharded engine fans dataset-keyed shards
over a process pool.  This bench times all three backends on the same
grid and gates on the determinism contract before any timing counts:

* the thread and process stores must equal the serial store element for
  element, **and** their saved-JSON checkpoints must be byte-identical;
* a budgeted process run (``max_shards=1``) checkpointed and then
  resumed must reach the same final store as an uninterrupted run, with
  the resumed jobs accounted in telemetry;
* the ``array_digest`` identity memo must return bit-identical digests
  to the uncached computation (and the bench records its speedup).

The >= 3x process-over-thread speedup gate only applies where it is
physically possible: it is enforced when the host exposes at least
``SPEEDUP_MIN_CPUS`` usable cores (CI runners do), and recorded but not
asserted on smaller hosts — a 1-core box cannot exhibit parallel
compute speedup, and fabricating one would defeat the bench's point.

Results are written to ``BENCH_campaign_full.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_campaign_full.py [--quick]
        [--output BENCH_campaign_full.json]

or via pytest (quick mode) as part of the bench suite.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

try:
    from benchmarks.conftest import print_banner
except ImportError:  # direct script execution without the package parent
    def print_banner(title: str) -> None:
        print()
        print("=" * 72)
        print(title)
        print("=" * 72)

import numpy as np

from repro.core import ExperimentRunner
from repro.core.config_space import (
    baseline_configuration,
    enumerate_configurations,
)
from repro.core.results import ResultStore
from repro.datasets import load_corpus
from repro.learn.cache import _uncached_digest, array_digest
from repro.platforms import ALL_PLATFORMS
from repro.service import CampaignScheduler, ShardedCampaign

SPLIT_SEED = 7
THREAD_WORKERS = 4
PROCESS_WORKERS = 4
SPEEDUP_MIN = 3.0
SPEEDUP_MIN_CPUS = 4
#: Ensemble/network classifiers whose training dominates wall-clock —
#: the grid must be compute-bound for process speedup to be measurable.
HEAVY_CLASSIFIERS = ("BST", "RF", "MLP", "BAG")


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def _workload(quick: bool):
    """The grid: every platform's baseline plus heavy tunable extras.

    Two sizing constraints make the speedup gate meaningful: at least
    ``2 * PROCESS_WORKERS`` dataset shards (so the pool is never idle
    waiting on one straggler) and ensemble-classifier configurations
    (so training compute, not dispatch overhead, dominates).  The
    feature-selection configurations also make the shard-shared
    FitCache observable: each shard fits the shared feature step once
    and replays it for every other candidate on the same dataset.
    """
    corpus = load_corpus(
        max_datasets=8 if quick else 12,
        size_cap=600 if quick else 1000,
        feature_cap=12 if quick else 16,
        random_state=0,
    )
    platforms = [cls(random_state=0) for cls in ALL_PLATFORMS]
    configurations = {}
    for platform in platforms:
        configs = [baseline_configuration(platform)]
        if platform.controls.supports_parameter_tuning:
            heavy = [
                c for c in enumerate_configurations(platform)
                if c.classifier in HEAVY_CLASSIFIERS
                and c.feature_selection == "f_classif"
            ]
            configs.extend(heavy[:4 if quick else 6])
        configurations[platform.name] = configs
    return corpus, platforms, configurations


def _fresh_platforms():
    return [cls(random_state=0) for cls in ALL_PLATFORMS]


def _store_bytes(store: ResultStore, directory: str, label: str) -> bytes:
    path = Path(directory) / f"{label}.json"
    store.save(path)
    return path.read_bytes()


def _run_serial(corpus, configurations) -> ResultStore:
    runner = ExperimentRunner(split_seed=SPLIT_SEED)
    store = ResultStore()
    for platform in _fresh_platforms():
        store.extend(runner.sweep(
            platform, corpus, configurations[platform.name]
        ))
    return store


def _run_threads(corpus, configurations) -> ResultStore:
    scheduler = CampaignScheduler(workers=THREAD_WORKERS, seed=0)
    return scheduler.run(
        ExperimentRunner(split_seed=SPLIT_SEED), _fresh_platforms(),
        corpus, configurations,
    )


def _run_processes(corpus, configurations) -> tuple:
    engine = ShardedCampaign(processes=PROCESS_WORKERS)
    store = engine.run(
        ExperimentRunner(split_seed=SPLIT_SEED), _fresh_platforms(),
        corpus, configurations,
    )
    return store, engine


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _resume_check(corpus, configurations, serial_store, directory) -> dict:
    """Budgeted run → checkpoint → resume must equal uninterrupted serial."""
    checkpoint = Path(directory) / "resume-checkpoint.json"
    first = ShardedCampaign(processes=2)
    partial = first.run(
        ExperimentRunner(split_seed=SPLIT_SEED), _fresh_platforms(),
        corpus, configurations,
        checkpoint_path=checkpoint, max_shards=1,
    )
    second = ShardedCampaign(processes=2)
    resumed = second.run(
        ExperimentRunner(split_seed=SPLIT_SEED), _fresh_platforms(),
        corpus, configurations,
        resume_from=ResultStore.load(checkpoint),
        checkpoint_path=checkpoint,
    )
    counters = second.telemetry.snapshot()["counters"]
    return {
        "partial_jobs": len(list(partial)),
        "resumed_jobs": counters["jobs_resumed"],
        "final_equals_serial": list(resumed) == list(serial_store),
    }


def _digest_memo_bench(rounds: int) -> dict:
    """Repeated digests of one live array: memo hit vs. raw computation."""
    rng = np.random.default_rng(0)
    array = rng.standard_normal((400, 32))
    reference = _uncached_digest(array)

    start = time.perf_counter()
    for _ in range(rounds):
        digest = array_digest(array)
    memo_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(rounds):
        uncached = _uncached_digest(array)
    raw_seconds = time.perf_counter() - start

    return {
        "rounds": rounds,
        "digests_match": digest == reference == uncached,
        "memo_seconds": memo_seconds,
        "uncached_seconds": raw_seconds,
        "speedup": raw_seconds / memo_seconds if memo_seconds else None,
    }


def run_bench(quick: bool = True) -> dict:
    corpus, platforms, configurations = _workload(quick)
    jobs = sum(
        len(configurations[p.name]) for p in platforms
    ) * len(corpus)

    serial_store, serial_seconds = _timed(
        lambda: _run_serial(corpus, configurations))
    thread_store, thread_seconds = _timed(
        lambda: _run_threads(corpus, configurations))
    (process_store, engine), process_seconds = _timed(
        lambda: _run_processes(corpus, configurations))

    with tempfile.TemporaryDirectory() as tmp:
        serial_bytes = _store_bytes(serial_store, tmp, "serial")
        results = {
            "mode": "quick" if quick else "full",
            "cpus": _usable_cpus(),
            "datasets": len(corpus),
            "platforms": len(platforms),
            "jobs": jobs,
            "wall_seconds": {
                "serial": serial_seconds,
                "threads": thread_seconds,
                "processes": process_seconds,
            },
            "workers": {
                "threads": THREAD_WORKERS,
                "processes": PROCESS_WORKERS,
            },
            "speedup": {
                "processes_vs_serial": serial_seconds / process_seconds,
                "processes_vs_threads": thread_seconds / process_seconds,
            },
            "identical": {
                "threads_store": list(thread_store) == list(serial_store),
                "processes_store":
                    list(process_store) == list(serial_store),
                "threads_bytes":
                    _store_bytes(thread_store, tmp, "threads")
                    == serial_bytes,
                "processes_bytes":
                    _store_bytes(process_store, tmp, "processes")
                    == serial_bytes,
            },
            "fit_cache": engine.fit_cache_stats,
            "dag": engine.dag.summary(),
            "resume": _resume_check(
                corpus, configurations, serial_store, tmp),
            "digest_memo": _digest_memo_bench(200 if quick else 2000),
        }
    return results


def print_report(results: dict) -> None:
    print_banner(
        "Full-corpus campaign — serial vs. threads vs. processes")
    print(f"mode: {results['mode']}  cpus: {results['cpus']}  "
          f"datasets: {results['datasets']}  "
          f"platforms: {results['platforms']}  jobs: {results['jobs']}")
    wall = results["wall_seconds"]
    workers = results["workers"]
    identical = results["identical"]
    print(f"serial:    {wall['serial']:8.2f} s")
    print(f"threads:   {wall['threads']:8.2f} s  "
          f"(workers={workers['threads']}, "
          f"identical={identical['threads_store']}, "
          f"bytes={identical['threads_bytes']})")
    print(f"processes: {wall['processes']:8.2f} s  "
          f"(workers={workers['processes']}, "
          f"identical={identical['processes_store']}, "
          f"bytes={identical['processes_bytes']})")
    speedup = results["speedup"]
    print(f"speedup vs serial:  {speedup['processes_vs_serial']:6.2f} x")
    print(f"speedup vs threads: {speedup['processes_vs_threads']:6.2f} x")
    cache = results["fit_cache"]
    print(f"fit cache: {cache['entries']} entries, "
          f"{cache['hits']} hits, {cache['misses']} misses")
    resume = results["resume"]
    print(f"resume: {resume['partial_jobs']} checkpointed, "
          f"{resume['resumed_jobs']} resumed, "
          f"final_equals_serial={resume['final_equals_serial']}")
    memo = results["digest_memo"]
    print(f"digest memo: {memo['speedup']:.0f}x over uncached "
          f"({memo['rounds']} rounds, match={memo['digests_match']})")


def check_results(results: dict) -> None:
    """Correctness gates (shared by pytest and __main__).

    Equality gates are unconditional; the >= 3x compute-speedup gate
    needs real cores and is asserted only when the host has them.
    """
    identical = results["identical"]
    assert identical["threads_store"], "thread store diverged from serial"
    assert identical["processes_store"], \
        "process store diverged from serial"
    assert identical["threads_bytes"], \
        "thread checkpoint bytes diverged from serial"
    assert identical["processes_bytes"], \
        "process checkpoint bytes diverged from serial"
    assert results["fit_cache"]["hits"] > 0, \
        "shard FitCache never hit — cache sharing is broken"
    resume = results["resume"]
    assert resume["final_equals_serial"], \
        "kill-then-resume diverged from the uninterrupted serial run"
    assert resume["resumed_jobs"] == resume["partial_jobs"] > 0
    memo = results["digest_memo"]
    assert memo["digests_match"], "memoized digest differs from uncached"
    assert memo["speedup"] > 1.0, "digest memo slower than recomputing"
    if results["cpus"] >= SPEEDUP_MIN_CPUS:
        assert results["speedup"]["processes_vs_threads"] >= SPEEDUP_MIN, (
            f"{results['cpus']} cpus available but processes only "
            f"{results['speedup']['processes_vs_threads']:.2f}x over "
            f"threads (need >= {SPEEDUP_MIN}x)"
        )
    else:
        print(f"note: {results['cpus']} cpu(s) — speedup recorded, "
              f">= {SPEEDUP_MIN}x gate needs >= {SPEEDUP_MIN_CPUS}")


def test_campaign_full_bench_quick():
    """Pytest entry: quick grid, all gates."""
    results = run_bench(quick=True)
    print_report(results)
    check_results(results)


def main(argv=None) -> int:
    """Script entry: run, print, check, write the JSON artifact."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller corpus and grid")
    parser.add_argument("--output", default="BENCH_campaign_full.json",
                        help="where to write the JSON results")
    args = parser.parse_args(argv)
    results = run_bench(quick=args.quick)
    print_report(results)
    check_results(results)
    path = Path(args.output)
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"\nresults written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
