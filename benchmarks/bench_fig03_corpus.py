"""Figure 3 — basic characteristics of the 119-dataset corpus.

Regenerates: (a) the domain breakdown, (b) the CDF of sample counts,
(c) the CDF of feature counts.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro.analysis import render_cdf, render_table
from repro.datasets import CORPUS, corpus_domain_breakdown


def test_fig3a_domain_breakdown(benchmark):
    breakdown = benchmark(corpus_domain_breakdown)
    print_banner("Figure 3(a) — application-domain breakdown of the corpus")
    rows = sorted(breakdown.items(), key=lambda item: -item[1])
    print(render_table(["domain", "# datasets"], rows))
    assert sum(breakdown.values()) == 119
    assert breakdown["life_science"] == 44


def test_fig3b_sample_count_cdf(benchmark):
    sizes = benchmark(lambda: np.array([s.n_samples for s in CORPUS]))
    print_banner("Figure 3(b) — CDF of dataset sample counts")
    print(render_cdf(sizes, n_points=10, value_format="{:,.0f}"))
    assert sizes.min() == 15
    assert sizes.max() == 245_057


def test_fig3c_feature_count_cdf(benchmark):
    features = benchmark(lambda: np.array([s.n_features for s in CORPUS]))
    print_banner("Figure 3(c) — CDF of dataset feature counts")
    print(render_cdf(features, n_points=10, value_format="{:,.0f}"))
    assert features.min() == 1
    assert features.max() == 4_702
