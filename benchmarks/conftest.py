"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports.  The expensive measurement sweeps
are computed once per session here and shared; each bench then times the
analysis step and prints its output.

Scale is controlled by the ``REPRO_SCALE`` environment variable:

* ``small`` (default) — a domain-stratified 10-dataset corpus with capped
  sizes; minutes of wall time, same qualitative shapes as the paper.
* ``medium`` — 24 datasets, larger caps.
* ``paper`` — all 119 datasets, full grids (hours; the paper's protocol).
"""

from __future__ import annotations

import os

import pytest

from repro.core import MLaaSStudy, StudyScale

SCALES = {
    "small": StudyScale(max_datasets=10, size_cap=250, feature_cap=12,
                        para_grid="single_axis"),
    "medium": StudyScale(max_datasets=24, size_cap=600, feature_cap=30,
                         para_grid="single_axis"),
    "paper": StudyScale.paper(),
}


def current_scale() -> StudyScale:
    name = os.environ.get("REPRO_SCALE", "small")
    try:
        return SCALES[name]
    except KeyError:
        raise RuntimeError(
            f"REPRO_SCALE must be one of {sorted(SCALES)}, got {name!r}"
        ) from None


@pytest.fixture(scope="session")
def study() -> MLaaSStudy:
    return MLaaSStudy(scale=current_scale(), random_state=1)


@pytest.fixture(scope="session")
def baseline_store(study):
    """Zero-control measurement of every platform (Fig 4 baseline bars)."""
    return study.run_baseline()


@pytest.fixture(scope="session")
def optimized_store(study):
    """Full configuration sweep (Fig 4 optimized bars, Tables 3b/4, Figs 6/8)."""
    return study.run_optimized()


@pytest.fixture(scope="session")
def control_stores(study):
    """Single-control sweeps for FEAT / CLF / PARA (Figs 5 and 7)."""
    return study.run_all_controls()


def family_qualification_threshold() -> float:
    """Paper bar (0.95) at paper scale; 0.9 under reduced observations.

    The 0.95 criterion assumes the paper's thousands of meta-training
    experiments per dataset; the cross-validated estimate at small scale
    is noisy and downward-biased (see FamilyPredictor.qualified).
    """
    return 0.95 if os.environ.get("REPRO_SCALE") == "paper" else 0.9


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
