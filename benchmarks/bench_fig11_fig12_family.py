"""Figures 11 and 12 + §6.2 — classifier-family inference.

Figure 11: CDFs of linear vs non-linear classifier F-scores on the CIRCLE
and LINEAR probes (the divergence the inference exploits).  Figure 12:
CDF of the validation F-score of the per-dataset family-prediction
meta-classifiers.  The §6.2 text numbers — the black boxes' inferred
linear/non-linear choice fractions and their agreement — are printed too.
"""

import numpy as np
import pytest

from benchmarks.conftest import family_qualification_threshold, print_banner
from repro.analysis import (
    collect_family_observations,
    family_of,
    infer_blackbox_families,
    render_cdf,
    render_table,
    train_family_predictors,
)
from repro.core import ExperimentRunner
from repro.datasets import load_corpus, load_dataset
from repro.platforms import ABM, BigML, Google, LocalLibrary, Microsoft, PredictionIO


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(split_seed=7)


@pytest.fixture(scope="module")
def probe_corpus():
    return load_corpus(domains=["synthetic"], size_cap=250, feature_cap=10)


@pytest.fixture(scope="module")
def observations(runner, probe_corpus):
    # The paper's four ground-truth sources: the platforms exposing
    # classifier choice, plus the local library.
    return collect_family_observations(
        runner,
        [LocalLibrary(random_state=0), Microsoft(random_state=0),
         BigML(random_state=0), PredictionIO(random_state=0)],
        probe_corpus,
        max_configs_per_classifier=4,
    )


def test_fig11_family_divergence_on_probes(benchmark, runner):
    def compute():
        scores = {"circle": {"linear": [], "nonlinear": []},
                  "linear": {"linear": [], "nonlinear": []}}
        platform = LocalLibrary(random_state=0)
        for name in ("circle", "linear"):
            dataset = load_dataset(f"synthetic/{name}", size_cap=300)
            from repro.core.config_space import per_control_configurations

            for config in per_control_configurations(platform, "CLF"):
                from repro.learn.metrics import f_score

                y_test, predictions = runner.predictions_for(
                    platform, dataset, config
                )
                family = family_of(config.classifier)
                scores[name][family].append(f_score(y_test, predictions))
        return scores

    scores = benchmark(compute)
    print_banner("Figure 11 — linear vs non-linear classifier F-scores "
                 "on the probe datasets")
    for name in ("circle", "linear"):
        print(f"\n[{name.upper()}]")
        print(render_cdf(scores[name]["linear"], n_points=5,
                         title="  linear family:"))
        print(render_cdf(scores[name]["nonlinear"], n_points=5,
                         title="  non-linear family:"))

    # Paper shape: on CIRCLE the non-linear family clearly dominates.
    assert np.mean(scores["circle"]["nonlinear"]) > \
        np.mean(scores["circle"]["linear"]) + 0.2
    # On LINEAR the families are close (linear at least competitive).
    assert np.mean(scores["linear"]["linear"]) > \
        np.mean(scores["linear"]["nonlinear"]) - 0.05


def test_fig12_validation_cdf_and_blackbox_choices(
    benchmark, runner, probe_corpus, observations
):
    threshold = family_qualification_threshold()
    predictors = benchmark(
        train_family_predictors, observations, 0, threshold
    )
    validation_scores = [
        p.validation_f_score for p in predictors.values() if p.model is not None
    ]
    print_banner("Figure 12 — CDF of family-predictor validation F-scores")
    print(render_cdf(validation_scores, n_points=8))
    qualified = [name for name, p in predictors.items() if p.qualified]
    print(f"\nqualified datasets (validation F > {threshold}): "
          f"{len(qualified)}/{len(probe_corpus)}")
    assert len(qualified) >= 1  # divergent probes must qualify
    held_out = [predictors[name].test_f_score for name in qualified]
    assert np.mean(held_out) > 0.8  # qualified predictors generalize

    # §6.2 text: apply qualified predictors to the black boxes.
    reports = {
        cls.name: infer_blackbox_families(
            runner, cls(random_state=0), probe_corpus, predictors
        )
        for cls in (Google, ABM)
    }
    print()
    print(render_table(
        ["platform", "linear picks", "non-linear picks", "linear share"],
        [
            [name, report.n_linear, report.n_nonlinear,
             f"{report.linear_fraction():.0%}" if report.choices else "n/a"]
            for name, report in reports.items()
        ],
        title="§6.2 — inferred classifier choices of the black boxes",
    ))
    common = set(reports["google"].choices) & set(reports["abm"].choices)
    if common:
        agreement = np.mean([
            reports["google"].choices[d] == reports["abm"].choices[d]
            for d in common
        ])
        print(f"\nGoogle/ABM agreement on {len(common)} common datasets: "
              f"{agreement:.0%}")
    # Both black boxes must demonstrably use *both* families across the
    # probe corpus (the paper's core §6 finding).
    choices_seen = {
        family
        for report in reports.values()
        for family in report.choices.values()
    }
    assert choices_seen == {"linear", "nonlinear"}
