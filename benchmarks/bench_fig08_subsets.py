"""Figure 8 — average performance vs number of classifiers explored.

Plots the expected best F-score obtained by a user who tries a uniformly
random subset of k classifiers (taking the best), for every platform
exposing classifier choice.  Computed exactly via order statistics rather
than subset sampling.
"""

from benchmarks.conftest import print_banner
from repro.analysis import render_table, subset_performance_curve

PLATFORMS = ["bigml", "predictionio", "microsoft", "local"]


def test_fig8_subset_curves(benchmark, optimized_store):
    def compute():
        return {
            platform: subset_performance_curve(optimized_store, platform)
            for platform in PLATFORMS
        }

    curves = benchmark(compute)
    print_banner("Figure 8 — expected best F-score vs # classifiers explored")
    max_k = max(k for curve in curves.values() for k, _ in curve)
    rows = []
    for k in range(1, max_k + 1):
        row = [str(k)]
        for platform in PLATFORMS:
            value = dict(curves[platform]).get(k)
            row.append(f"{value:.3f}" if value is not None else "")
        rows.append(row)
    print(render_table(["k", *PLATFORMS], rows))

    for platform in PLATFORMS:
        curve = dict(curves[platform])
        values = [curve[k] for k in sorted(curve)]
        # Monotone non-decreasing in k.
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
        # Paper headline: k = 3 is near-optimal (within ~7% of the best).
        k3 = curve.get(min(3, max(curve)))
        assert k3 > max(values) * 0.93
