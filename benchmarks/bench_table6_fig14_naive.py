"""Table 6 and Figure 14 — the naive strategy vs the black boxes (§6.3).

The naive strategy trains default-parameter Logistic Regression and
Decision Tree and keeps the better one.  Table 6 breaks down the datasets
where it beats Google/ABM by the (black-box family, naive family) choice
pair; Figure 14 is the CDF of the F-score margin on those datasets.
"""

import pytest

from benchmarks.conftest import family_qualification_threshold, print_banner
from repro.analysis import (
    collect_family_observations,
    compare_with_blackbox,
    infer_blackbox_families,
    render_cdf,
    render_table,
    train_family_predictors,
)
from repro.core import ExperimentRunner
from repro.datasets import load_corpus
from repro.platforms import ABM, Google, LocalLibrary


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(split_seed=7)


@pytest.fixture(scope="module")
def datasets():
    return load_corpus(max_datasets=12, size_cap=250, feature_cap=12)


@pytest.fixture(scope="module")
def blackbox_families(runner, datasets):
    observations = collect_family_observations(
        runner, [LocalLibrary(random_state=0)], datasets,
        max_configs_per_classifier=3,
    )
    predictors = train_family_predictors(
        observations, random_state=0,
        qualification_threshold=family_qualification_threshold(),
    )
    return {
        cls.name: infer_blackbox_families(
            runner, cls(random_state=0), datasets, predictors
        ).choices
        for cls in (Google, ABM)
    }


@pytest.mark.parametrize("platform_cls", [Google, ABM])
def test_table6_fig14_naive_vs_blackbox(
    benchmark, runner, datasets, blackbox_families, platform_cls
):
    comparison = benchmark(
        compare_with_blackbox,
        runner,
        platform_cls(random_state=0),
        datasets,
        blackbox_families[platform_cls.name],
        0,
    )
    print_banner(f"Table 6 / Fig 14 — naive LR-vs-DT strategy vs "
                 f"{comparison.platform}")
    print(f"datasets compared: {comparison.n_datasets}, "
          f"naive wins: {comparison.n_naive_wins} "
          f"({comparison.win_fraction():.0%})")
    if comparison.breakdown:
        print(render_table(
            [f"{comparison.platform} family", "naive family", "# datasets"],
            [
                [blackbox, naive, count]
                for (blackbox, naive), count in sorted(comparison.breakdown.items())
            ],
            title="Table 6 — choice breakdown where naive wins:",
        ))
    if comparison.win_margins:
        print(render_cdf(
            comparison.win_margins, n_points=6,
            title="\nFigure 14 — CDF of F-score margin where naive wins:",
        ))
        print(f"mean margin: {comparison.mean_win_margin():.3f}")

    # Paper shape: the naive strategy wins on a non-trivial fraction of
    # datasets, showing the black boxes' optimization is improvable.
    assert comparison.n_datasets >= 8
    assert comparison.n_naive_wins >= 1
    assert comparison.mean_win_margin() > 0.0
