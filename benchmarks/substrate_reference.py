"""Seed-era tree substrate, kept verbatim as the benchmark baseline.

These classes re-implement the pre-optimization algorithms — re-sorting
every candidate feature at every node during growth, and per-tree
``TreeNode`` stack routing during prediction — on top of the *current*
estimator classes, so ``bench_substrate_speedup.py`` and the
equivalence tests can measure and assert the optimized substrate
against the exact seed behavior.  RNG consumption and arithmetic are
identical, which is what makes "bit-identical predictions" a testable
claim rather than a tolerance check.

Not collected by pytest (no ``test_``/``bench_`` prefix); imported by
the bench and by ``tests/learn/test_substrate_equivalence.py``.
"""

from __future__ import annotations

import numpy as np

from repro.learn.ensemble import RandomForestClassifier
from repro.learn.tree import DecisionTreeClassifier
from repro.learn.tree.cart import TreeNode, find_best_split

__all__ = [
    "ReferenceDecisionTree",
    "ReferenceRandomForest",
    "node_route",
    "reference_grid_search",
]


def node_route(root: TreeNode, X: np.ndarray) -> np.ndarray:
    """Seed prediction path: route samples with a TreeNode stack."""
    values = np.empty(X.shape[0])
    stack = [(root, np.arange(X.shape[0]))]
    while stack:
        node, indices = stack.pop()
        if indices.size == 0:
            continue
        if node.is_leaf:
            values[indices] = node.positive_fraction
            continue
        goes_left = X[indices, node.feature] <= node.threshold
        stack.append((node.left, indices[goes_left]))
        stack.append((node.right, indices[~goes_left]))
    return values


class ReferenceDecisionTree(DecisionTreeClassifier):
    """Seed CART: per-node re-sorting growth, per-node stack prediction."""

    def _build_tree(self, X, y01, rng, impurity_fn, n_candidate_features):
        """Seed grower: recursion over copied subarrays, re-sorted splits."""
        return self._seed_grow(
            X, y01, 0, rng, impurity_fn, n_candidate_features
        )

    def _seed_grow(self, X, y01, depth, rng, impurity_fn,
                   n_candidate_features):
        node = TreeNode(
            positive_fraction=float(y01.mean()),
            n_samples=y01.shape[0],
            depth=depth,
        )
        if (
            (self.max_depth is not None and depth >= self.max_depth)
            or y01.shape[0] < self.min_samples_split
            or node.positive_fraction in (0.0, 1.0)
        ):
            return node
        if n_candidate_features < X.shape[1]:
            feature_indices = rng.choice(
                X.shape[1], size=n_candidate_features, replace=False
            )
        else:
            feature_indices = np.arange(X.shape[1])
        split = find_best_split(
            X, y01, feature_indices, impurity_fn, self.min_samples_leaf
        )
        if split is None:
            return node
        feature, threshold, _ = split
        goes_left = X[:, feature] <= threshold
        if not goes_left.any() or goes_left.all():
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._seed_grow(
            X[goes_left], y01[goes_left], depth + 1, rng, impurity_fn,
            n_candidate_features,
        )
        node.right = self._seed_grow(
            X[~goes_left], y01[~goes_left], depth + 1, rng, impurity_fn,
            n_candidate_features,
        )
        return node

    def _positive_fractions(self, X):
        """Seed prediction: TreeNode stack routing, one tree at a time."""
        return node_route(self.tree_, X)


class ReferenceRandomForest(RandomForestClassifier):
    """Seed forest: reference trees, per-tree Python-loop prediction."""

    def fit(self, X, y):
        """Grow reference trees with the seed's exact RNG consumption."""
        from repro.learn.validation import (
            check_binary_labels, check_random_state, check_X_y,
        )

        X, y = check_X_y(X, y, min_samples=2)
        self.classes_ = check_binary_labels(y)
        rng = check_random_state(self.random_state)
        n_samples = X.shape[0]
        self.estimators_ = []
        for _ in range(self.n_estimators):
            tree = ReferenceDecisionTree(
                criterion=self.criterion,
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31)),
            )
            if self.bootstrap:
                for _attempt in range(20):
                    indices = rng.integers(0, n_samples, size=n_samples)
                    if len(np.unique(y[indices])) == 2:
                        break
                tree.fit(X[indices], y[indices])
            else:
                tree.fit(X, y)
            self.estimators_.append(tree)
        self.n_features_in_ = X.shape[1]
        return self

    def predict_proba(self, X):
        """Seed prediction: list comprehension over per-tree routing."""
        from repro.learn.validation import check_array

        X = check_array(X)
        positive = np.mean(
            [tree.predict_proba(X)[:, 1] for tree in self.estimators_], axis=0
        )
        return np.column_stack([1.0 - positive, positive])


def reference_grid_search(estimator, param_grid, X, y, cv, random_state,
                          scoring):
    """Seed grid search: folds regenerated per candidate, no memoization.

    Returns ``(cv_results, best_params, best_score)`` with the seed's
    exact control flow.
    """
    from repro.exceptions import ReproError
    from repro.learn.base import clone
    from repro.learn.model_selection import ParameterGrid, StratifiedKFold

    results = []
    best_score = -np.inf
    best_params = {}
    for params in ParameterGrid(param_grid):
        candidate = clone(estimator).set_params(**params)
        try:
            splitter = StratifiedKFold(
                n_splits=cv, shuffle=True, random_state=random_state
            )
            scores = []
            for train, test in splitter.split(X, y):
                if len(np.unique(y[train])) < 2:
                    continue
                model = clone(candidate)
                model.fit(X[train], y[train])
                scores.append(scoring(y[test], model.predict(X[test])))
            mean_score = float(np.asarray(scores).mean())
        except ReproError:
            continue
        results.append({"params": params, "mean_score": mean_score})
        if mean_score > best_score:
            best_score = mean_score
            best_params = params
    return results, best_params, best_score
