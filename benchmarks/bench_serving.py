"""Serving-layer latency percentiles and throughput under concurrency.

Boots the stdlib HTTP front-end on a loopback socket, drives it with the
deterministic load generator at several closed-loop concurrency levels,
and reports exact p50/p95/p99 request latencies plus throughput per
level.  Before any timing counts, every level's ``payload_digest`` must
equal the serial reference run of the same seeded schedule — the bench
is also the proof that concurrency adds throughput without adding
nondeterminism.

Results are written to ``BENCH_serving.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_serving.py [--quick]
        [--output BENCH_serving.json]

or via pytest (quick mode) as part of the bench suite.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

try:
    from benchmarks.conftest import print_banner
except ImportError:  # direct script execution without the package parent
    def print_banner(title: str) -> None:
        print()
        print("=" * 72)
        print(title)
        print("=" * 72)

from repro.platforms import BigML
from repro.serving import (
    HTTPPlatformClient,
    LoadgenConfig,
    ServingGateway,
    run_load,
    serve_background,
)

QUICK_LEVELS = (1, 4)
FULL_LEVELS = (1, 2, 4, 8)
SEED = 11


def _config(clients: int, quick: bool) -> LoadgenConfig:
    return LoadgenConfig(
        clients=clients,
        predicts_per_client=2 if quick else 4,
        mode="closed",
        seed=SEED,
        samples=40 if quick else 80,
        features=5,
        query_rows=8 if quick else 16,
    )


def run_bench(quick: bool = True) -> dict:
    """Run every concurrency level against one loopback server."""
    levels = QUICK_LEVELS if quick else FULL_LEVELS
    gateway = ServingGateway([BigML(random_state=0)])
    server, thread = serve_background(gateway)
    try:
        def factory(client_id: str) -> HTTPPlatformClient:
            return HTTPPlatformClient(server.url, "bigml",
                                      client_id=client_id)

        results: dict = {
            "mode": "quick" if quick else "full",
            "seed": SEED,
            "platform": "bigml",
            "levels": {},
        }
        for clients in levels:
            config = _config(clients, quick)
            serial = run_load(factory, config, parallel=False)
            concurrent = run_load(factory, config, parallel=True)
            results["levels"][str(clients)] = {
                "requests_total": concurrent["requests_total"],
                "requests_failed": concurrent["requests_failed"],
                "throughput_rps": concurrent["throughput_rps"],
                "overall_latency": concurrent["overall_latency"],
                "operations": concurrent["operations"],
                "payload_digest": concurrent["payload_digest"],
                "serial_payload_digest": serial["payload_digest"],
                "serial_equivalent": (
                    concurrent["payload_digest"] == serial["payload_digest"]
                ),
            }
    finally:
        server.shutdown()
        thread.join()
        server.server_close()
    return results


def print_report(results: dict) -> None:
    """Human-readable view of one bench run."""
    print_banner("Serving layer — latency percentiles under concurrency")
    print(f"platform: {results['platform']}  seed: {results['seed']}  "
          f"mode: {results['mode']}")
    header = (f"{'clients':>8} {'reqs':>6} {'fail':>5} {'rps':>9} "
              f"{'p50 ms':>9} {'p95 ms':>9} {'p99 ms':>9} {'serial==':>9}")
    print(header)
    for clients, level in sorted(results["levels"].items(),
                                 key=lambda item: int(item[0])):
        latency = level["overall_latency"]
        print(f"{clients:>8} {level['requests_total']:>6} "
              f"{level['requests_failed']:>5} "
              f"{level['throughput_rps']:>9.1f} "
              f"{latency['p50'] * 1000:>9.2f} "
              f"{latency['p95'] * 1000:>9.2f} "
              f"{latency['p99'] * 1000:>9.2f} "
              f"{str(level['serial_equivalent']):>9}")


def check_results(results: dict) -> None:
    """The bench's correctness gates (shared by pytest and __main__)."""
    assert len(results["levels"]) >= 2
    for clients, level in results["levels"].items():
        assert level["requests_failed"] == 0, \
            f"{clients} clients: {level['requests_failed']} failed requests"
        assert level["serial_equivalent"], \
            f"{clients} clients: digest diverged from the serial run"
        latency = level["overall_latency"]
        assert latency["p50"] <= latency["p95"] <= latency["p99"]
        assert level["throughput_rps"] > 0


def test_serving_bench_quick():
    """Pytest entry: quick levels, all gates."""
    results = run_bench(quick=True)
    print_report(results)
    check_results(results)


def main(argv=None) -> int:
    """Script entry: run, print, check, write the JSON artifact."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="fewer levels, smaller sessions")
    parser.add_argument("--output", default="BENCH_serving.json",
                        help="where to write the JSON results")
    args = parser.parse_args(argv)
    results = run_bench(quick=args.quick)
    print_report(results)
    check_results(results)
    path = Path(args.output)
    path.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    print(f"\nresults written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
