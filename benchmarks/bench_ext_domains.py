"""Extension bench — per-domain platform performance and family preference.

Slices the optimized sweep by the corpus's application domains (Fig 3a),
answering the practitioner question behind the paper's motivation: which
platform, and which classifier family, wins on *my kind of data*?
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro.analysis import (
    domain_breakdown,
    domain_family_preference,
    render_table,
)


def test_ext_domain_breakdown(benchmark, optimized_store):
    slices = benchmark(domain_breakdown, optimized_store)
    print_banner("Extension — optimized F-score per (domain, platform)")
    print(render_table(
        ["domain", "platform", "# datasets", "mean F"],
        [
            [s.domain, s.platform, s.n_datasets, f"{s.mean_f_score:.3f}"]
            for s in slices
        ],
    ))
    assert slices
    for s in slices:
        assert 0.0 <= s.mean_f_score <= 1.0
        assert s.n_datasets >= 1


def test_ext_domain_family_preference(benchmark, optimized_store):
    preferences = benchmark(domain_family_preference, optimized_store)
    print_banner("Extension — winning classifier family per domain")
    print(render_table(
        ["domain", "linear wins", "non-linear wins"],
        [
            [domain, f"{p['linear']:.0%}", f"{p['nonlinear']:.0%}"]
            for domain, p in sorted(preferences.items())
        ],
    ))
    assert preferences
    for p in preferences.values():
        assert p["linear"] + p["nonlinear"] == 1.0
    # Across the whole corpus both families win somewhere — Table 4's
    # "no classifier dominates" seen through the domain lens.
    assert any(p["nonlinear"] > 0 for p in preferences.values())