"""Figure 4 and Table 3 — baseline vs optimized performance per platform.

Figure 4 plots, per platform ordered by complexity, the zero-control
baseline F-score and the best-configuration ("optimized") F-score with
standard-error bars.  Table 3 reports all four metrics with Friedman
rankings, platforms ordered by average Friedman rank.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro.analysis import platform_summary, render_bar_chart, render_table
from repro.platforms import ALL_PLATFORMS

COMPLEXITY_ORDER = [cls.name for cls in ALL_PLATFORMS]


def test_fig4_baseline_vs_optimized(benchmark, baseline_store, optimized_store):
    def compute():
        baseline = {
            p: baseline_store.for_platform(p).mean_score()
            for p in baseline_store.platforms()
        }
        optimized = {
            p: optimized_store.for_platform(p).mean_score()
            for p in optimized_store.platforms()
        }
        return baseline, optimized

    baseline, optimized = benchmark(compute)
    print_banner("Figure 4 — baseline vs optimized F-score "
                 "(x-axis ordered by complexity)")
    print(render_bar_chart(
        COMPLEXITY_ORDER,
        [baseline[p] for p in COMPLEXITY_ORDER],
        title="baseline (zero-control):",
    ))
    print()
    print(render_bar_chart(
        COMPLEXITY_ORDER,
        [optimized[p] for p in COMPLEXITY_ORDER],
        title="optimized (best configuration per dataset):",
    ))

    # Paper shapes: (1) optimized performance grows with complexity —
    # the most complex tunable platforms top the chart; (2) tuned
    # Microsoft is nearly identical to the tuned local library; (3) the
    # black boxes cannot improve over their baseline.
    assert max(optimized, key=lambda p: optimized[p]) in (
        "microsoft", "local", "predictionio",
    )
    assert abs(optimized["microsoft"] - optimized["local"]) < 0.08
    assert optimized["microsoft"] > optimized["abm"]
    assert np.isclose(optimized["google"], baseline["google"], atol=1e-9)
    for platform in ("predictionio", "bigml", "microsoft", "local"):
        assert optimized[platform] >= baseline[platform] - 1e-9


def test_table3a_baseline_rankings(benchmark, baseline_store):
    summaries = benchmark(platform_summary, baseline_store)
    print_banner("Table 3(a) — baseline performance "
                 "(avg metric, Friedman rank in parentheses)")
    print(render_table(
        ["platform", "avg fried.", "f-score", "accuracy", "precision", "recall"],
        [
            [s.platform, f"{s.avg_friedman:.1f}"]
            + [f"{s.avg[m]:.3f} ({s.friedman[m]:.1f})"
               for m in ("f_score", "accuracy", "precision", "recall")]
            for s in summaries
        ],
    ))
    assert len(summaries) == 7


def test_table3b_optimized_rankings(benchmark, optimized_store):
    summaries = benchmark(platform_summary, optimized_store)
    print_banner("Table 3(b) — optimized performance "
                 "(avg metric, Friedman rank in parentheses)")
    print(render_table(
        ["platform", "avg fried.", "f-score", "accuracy", "precision", "recall"],
        [
            [s.platform, f"{s.avg_friedman:.1f}"]
            + [f"{s.avg[m]:.3f} ({s.friedman[m]:.1f})"
               for m in ("f_score", "accuracy", "precision", "recall")]
            for s in summaries
        ],
    ))
    # The paper's Table 3b ordering: local and Microsoft lead, the black
    # boxes trail.
    top_two = {s.platform for s in summaries[:2]}
    assert top_two & {"local", "microsoft", "predictionio"}
    assert summaries[-1].platform in ("abm", "google", "amazon")
