"""Figure 2 — the control vs performance/risk overview.

Figure 2 is the paper's conceptual scatter: platforms arranged by control
(complexity) against performance-and-risk.  This bench materializes it
from measurements — optimized F-score (performance) and configuration
spread (risk) per platform — and asserts the monotone trend the figure
sketches.
"""

import numpy as np
from scipy import stats

from benchmarks.conftest import print_banner
from repro.analysis import performance_variation, render_table
from repro.platforms import ALL_PLATFORMS


def test_fig2_control_vs_performance_and_risk(benchmark, optimized_store):
    def compute():
        rows = []
        for cls in ALL_PLATFORMS:
            results = optimized_store.for_platform(cls.name)
            rows.append({
                "platform": cls.name,
                "control": cls.complexity,
                "performance": results.mean_score(),
                "risk": performance_variation(optimized_store, cls.name).spread,
            })
        return rows

    rows = benchmark(compute)
    print_banner("Figure 2 — control vs performance and risk (measured)")
    print(render_table(
        ["platform", "control rank", "optimized F", "risk (spread)"],
        [
            [r["platform"], r["control"], f"{r['performance']:.3f}",
             f"{r['risk']:.3f}"]
            for r in rows
        ],
    ))
    control = [r["control"] for r in rows]
    performance = [r["performance"] for r in rows]
    risk = [r["risk"] for r in rows]
    perf_rho = stats.spearmanr(control, performance).statistic
    risk_rho = stats.spearmanr(control, risk).statistic
    print(f"\nSpearman(control, performance) = {perf_rho:+.2f}")
    print(f"Spearman(control, risk)        = {risk_rho:+.2f}")
    # The paper's thesis: both correlations are positive and strong.
    assert perf_rho > 0.5
    assert risk_rho > 0.5
