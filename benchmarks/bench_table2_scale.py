"""Table 2 — scale of the measurements.

Regenerates, per platform: the number of feature-selection options,
classifiers, tunable parameters, and the total measurement count over the
119-dataset corpus under the paper's full-grid protocol.
"""

from benchmarks.conftest import print_banner
from repro.analysis import render_table
from repro.core import count_measurements
from repro.platforms import ALL_PLATFORMS


def test_table2_measurement_scale(benchmark):
    def compute():
        return [
            count_measurements(cls(), n_datasets=119, para_grid="full")
            for cls in ALL_PLATFORMS
        ]

    rows = benchmark(compute)
    print_banner("Table 2 — scale of the measurements (full-grid protocol)")
    print(render_table(
        ["platform", "# feat sel", "# classifiers", "# parameters",
         "configs/dataset", "total measurements"],
        [
            [r["platform"], r["n_feature_selectors"], r["n_classifiers"],
             r["n_parameters"], r["configs_per_dataset"],
             f"{r['total_measurements']:,}"]
            for r in rows
        ],
    ))
    by_name = {r["platform"]: r for r in rows}
    # The paper's shape: black boxes do 119 measurements; Microsoft and
    # the local library dominate everyone else by orders of magnitude.
    assert by_name["abm"]["total_measurements"] == 119
    assert by_name["google"]["total_measurements"] == 119
    assert by_name["microsoft"]["total_measurements"] > 100_000
    assert by_name["local"]["total_measurements"] > 50_000
    assert by_name["microsoft"]["n_parameters"] == 23
