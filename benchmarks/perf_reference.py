"""Seed-era hot-path implementations, kept verbatim as bench baselines.

These functions re-implement the pre-vectorization bodies of the
hotspots ``repro perf`` flagged (P301 axis loops in the filter scorers,
the per-index fold assembly in ``StratifiedKFold``) so that
``bench_perf_hotspots.py`` and ``tests/learn/test_perf_equivalence.py``
can measure and assert the vectorized versions against the exact seed
behavior.  Arithmetic order and RNG consumption are identical, which is
what makes "bit-identical outputs" a testable claim rather than a
tolerance check.

Not collected by pytest (no ``test_``/``bench_`` prefix); imported by
the bench and the equivalence tests.
"""

from __future__ import annotations

import numpy as np

from repro.learn.validation import check_X_y, check_random_state

__all__ = [
    "ReferenceStratifiedKFold",
    "reference_mutual_info_score",
]


def reference_mutual_info_score(X, y, n_bins: int = 10) -> np.ndarray:
    """Seed MI scorer: Python loop over bins x classes per feature."""
    X, y = check_X_y(X, y)
    y01 = (y == np.unique(y)[-1]).astype(int)
    n_samples = X.shape[0]
    class_prob = np.bincount(y01, minlength=2) / n_samples
    scores = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        column = X[:, j]
        lo, hi = column.min(), column.max()
        if lo == hi:
            continue
        bins = np.linspace(lo, hi, n_bins + 1)
        codes = np.clip(np.digitize(column, bins[1:-1]), 0, n_bins - 1)
        mi = 0.0
        for b in range(n_bins):
            in_bin = codes == b
            p_bin = in_bin.mean()
            if p_bin == 0.0:
                continue
            for c in (0, 1):
                p_joint = np.mean(in_bin & (y01 == c))
                if p_joint > 0.0 and class_prob[c] > 0.0:
                    mi += p_joint * np.log(p_joint / (p_bin * class_prob[c]))
        scores[j] = max(mi, 0.0)
    return scores


class ReferenceStratifiedKFold:
    """Seed splitter: per-index Python list assembly of each fold."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True,
                 random_state=None):
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y):
        y = np.asarray(y)
        rng = check_random_state(self.random_state)
        per_fold = [[] for _ in range(self.n_splits)]
        for c in np.unique(y):
            members = np.flatnonzero(y == c)
            if self.shuffle:
                members = members[rng.permutation(members.size)]
            for position, index in enumerate(members):
                per_fold[position % self.n_splits].append(int(index))
        for k in range(self.n_splits):
            test = np.array(sorted(per_fold[k]), dtype=int)
            train = np.array(
                sorted(i for j in range(self.n_splits) if j != k
                       for i in per_fold[j]),
                dtype=int,
            )
            yield train, test
