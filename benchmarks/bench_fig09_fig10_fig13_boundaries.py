"""Figures 9, 10 and 13 — probe datasets and black-box decision boundaries.

Figure 9 visualizes the CIRCLE and LINEAR probe datasets; Figure 10 shows
Google's and ABM's decision boundaries on them (linear on LINEAR,
non-linear on CIRCLE, with different non-linear shapes); Figure 13 shows
Amazon's non-linear boundary on CIRCLE despite its claimed Logistic
Regression.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_banner
from repro.analysis import (
    boundary_linearity,
    probe_decision_boundary,
    render_table,
)
from repro.datasets import load_dataset
from repro.platforms import ABM, Amazon, Google


@pytest.fixture(scope="module")
def splits():
    return {
        name: load_dataset(f"synthetic/{name}", size_cap=500).split(random_state=0)
        for name in ("circle", "linear")
    }


def test_fig9_probe_datasets(benchmark, splits):
    def compute():
        stats = {}
        for name, split in splits.items():
            X = np.vstack([split.X_train, split.X_test])
            y = np.concatenate([split.y_train, split.y_test])
            radii = np.linalg.norm(X, axis=1)
            stats[name] = {
                "n": len(y),
                "balance": float(y.mean()),
                "radius_gap": float(
                    abs(np.median(radii[y == 0]) - np.median(radii[y == 1]))
                ),
            }
        return stats

    stats = benchmark(compute)
    print_banner("Figure 9 — the CIRCLE and LINEAR probe datasets")
    print(render_table(
        ["dataset", "samples", "class balance", "median radius gap"],
        [
            [name, s["n"], f"{s['balance']:.2f}", f"{s['radius_gap']:.2f}"]
            for name, s in stats.items()
        ],
    ))
    # CIRCLE's classes are radially separated; LINEAR's are not.
    assert stats["circle"]["radius_gap"] > 0.3
    assert stats["linear"]["radius_gap"] < stats["circle"]["radius_gap"]


def test_fig10_blackbox_boundaries(benchmark, splits):
    def compute():
        table = {}
        for platform_cls in (Google, ABM):
            for name, split in splits.items():
                probe = probe_decision_boundary(
                    platform_cls(random_state=0),
                    split.X_train, split.y_train, resolution=100,
                )
                table[(platform_cls.name, name)] = (
                    boundary_linearity(probe), probe
                )
        return table

    table = benchmark(compute)
    print_banner("Figure 10 — Google/ABM decision boundaries "
                 "(100x100 mesh probe)")
    print(render_table(
        ["platform", "dataset", "boundary linearity", "verdict"],
        [
            [platform, dataset, f"{linearity:.3f}",
             "linear" if linearity > 0.95 else "NON-linear"]
            for (platform, dataset), (linearity, _) in table.items()
        ],
    ))
    print("\nGoogle on CIRCLE:")
    print(table[("google", "circle")][1].render_ascii(width=40))
    print("\nABM on CIRCLE:")
    print(table[("abm", "circle")][1].render_ascii(width=40))

    # Paper shape: both black boxes draw a straight line on LINEAR and a
    # closed region on CIRCLE.
    for platform in ("google", "abm"):
        assert table[(platform, "linear")][0] > 0.95
        assert table[(platform, "circle")][0] < 0.9


def test_fig13_amazon_nonlinear_boundary(benchmark, splits):
    def compute():
        probe = probe_decision_boundary(
            Amazon(random_state=0),
            splits["circle"].X_train, splits["circle"].y_train,
            resolution=100,
        )
        return boundary_linearity(probe), probe

    linearity, probe = benchmark(compute)
    print_banner("Figure 13 — Amazon's decision boundary on CIRCLE")
    print(probe.render_ascii(width=40))
    print(f"\nboundary linearity: {linearity:.3f} "
          "(claimed classifier: Logistic Regression)")
    assert linearity < 0.9  # non-linear despite the claimed LR
