"""Figure 5 and Table 4 — the impact of individual controls.

Figure 5: percentage F-score improvement over baseline when tuning one
control dimension (FEAT / CLF / PARA) at a time; unsupported controls are
the white "No Data" boxes.  Table 4: the top-4 classifiers per platform
under default (4a) and optimized (4b) parameters.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro.analysis import (
    classifier_ranking,
    per_control_improvement,
    render_table,
)
from repro.core.controls import CLF, FEAT, PARA

PLATFORM_ORDER = ["amazon", "bigml", "predictionio", "microsoft", "local"]


def test_fig5_per_control_improvement(benchmark, baseline_store, control_stores):
    def compute():
        table = {}
        for dimension in (FEAT, CLF, PARA):
            store = control_stores[dimension]
            for platform in PLATFORM_ORDER:
                table[(dimension, platform)] = per_control_improvement(
                    baseline_store, store, platform
                )
        return table

    table = benchmark(compute)
    print_banner("Figure 5 — % F-score improvement over baseline, "
                 "one control tuned at a time")
    rows = []
    for platform in PLATFORM_ORDER:
        rows.append([
            platform,
            *(
                f"{table[(dimension, platform)]:+.1f}%"
                if np.isfinite(table[(dimension, platform)]) else "No Data"
                for dimension in (FEAT, CLF, PARA)
            ),
        ])
    print(render_table(
        ["platform", "FeatureSelection", "ClassifierSelection", "ParameterTuning"],
        rows,
    ))

    # Paper shapes: FEAT unsupported on Amazon/BigML/PredictionIO; CLF
    # unsupported on Amazon; CLF gives the largest average improvement.
    for platform in ("amazon", "bigml", "predictionio"):
        assert not np.isfinite(table[(FEAT, platform)])
    assert not np.isfinite(table[(CLF, "amazon")])
    mean_improvement = {
        dimension: np.nanmean([
            table[(dimension, p)] for p in PLATFORM_ORDER
            if np.isfinite(table[(dimension, p)])
        ])
        for dimension in (FEAT, CLF, PARA)
    }
    assert mean_improvement[CLF] >= mean_improvement[PARA]
    assert mean_improvement[CLF] >= mean_improvement[FEAT]


def _ranking_rows(store, optimized: bool):
    rows = []
    for platform in ("bigml", "predictionio", "microsoft", "local"):
        ranking = classifier_ranking(store, platform, optimized_params=optimized)
        cells = [f"{abbr} ({share:.1f}%)" for abbr, share in ranking]
        cells += [""] * (4 - len(cells))
        rows.append([platform, *cells])
    return rows


def _print_ranking_table(rows, title: str):
    print_banner(title)
    print(render_table(
        ["platform", "rank 1", "rank 2", "rank 3", "rank 4"], rows
    ))


def test_table4a_default_parameter_ranking(benchmark, optimized_store):
    rows = benchmark(_ranking_rows, optimized_store, False)
    _print_ranking_table(
        rows,
        "Table 4(a) — top classifiers with baseline (default) parameters "
        "(% of datasets won)",
    )
    # No classifier dominates everywhere: at least two distinct winners
    # across platforms (paper: LR/BST/RF/DT mix).
    winners = {row[1].split(" ")[0] for row in rows if row[1]}
    assert len(winners) >= 2


def test_table4b_optimized_parameter_ranking(benchmark, optimized_store):
    rows = benchmark(_ranking_rows, optimized_store, True)
    _print_ranking_table(
        rows,
        "Table 4(b) — top classifiers with optimized parameters "
        "(% of datasets won)",
    )
    # Non-linear classifiers appear among the top picks on the
    # high-control platforms once parameters are tuned.
    nonlinear = {"DT", "RF", "BST", "BAG", "KNN", "MLP", "DJ"}
    for row in rows:
        if row[0] in ("microsoft", "local"):
            top = {cell.split(" ")[0] for cell in row[1:] if cell}
            assert top & nonlinear
