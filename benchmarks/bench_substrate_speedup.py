"""Tree substrate speedup — presorted growth + flat prediction vs. seed.

Measures the optimized tree substrate (presorted split search, compiled
flat-array prediction, fold hoisting and fit memoization in grid search)
against reference implementations of the seed algorithms
(:mod:`benchmarks.substrate_reference`), on three scenarios:

* ``tree_fit`` — growing a single deep decision tree,
* ``forest_predict`` — random-forest ``predict_proba`` on a wide batch,
* ``grid_sweep`` — the tree-heavy hyper-parameter sweep the paper's
  methodology runs per dataset: grid search over a
  (SelectKBest -> DecisionTree) pipeline.

Every scenario asserts the optimized path produces **bit-identical**
predictions before timing counts; speed without equality is a bug, not
a result.  Timings and speedups are written to ``BENCH_substrate.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_substrate_speedup.py [--quick]
        [--output BENCH_substrate.json]

or via pytest (quick mode) as part of the bench suite.
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks.substrate_reference import (
        ReferenceDecisionTree,
        ReferenceRandomForest,
        reference_grid_search,
    )
except ImportError:  # running as a script: benchmarks/ itself is sys.path[0]
    from substrate_reference import (
        ReferenceDecisionTree,
        ReferenceRandomForest,
        reference_grid_search,
    )

from repro.learn import (
    DecisionTreeClassifier,
    GridSearchCV,
    Pipeline,
    RandomForestClassifier,
)
from repro.learn.feature_selection import SelectKBest
from repro.learn.metrics import accuracy_score

#: Acceptance floor for the tree-heavy sweep in full mode (quick CI runs
#: use a softer floor because tiny problems amortize less sorting work).
FULL_SWEEP_FLOOR = 3.0
QUICK_SWEEP_FLOOR = 1.2

#: ``predict_rows`` is sized like the measurement methodology's test
#: partitions (the 30% side of the paper's 70/30 splits) — the batch
#: size every sweep actually predicts on.
SIZES = {
    "quick": {"n_samples": 400, "n_features": 12, "tree_depth": 10,
              "n_trees": 15, "predict_rows": 120, "grid_depths": [3, 6, 9],
              "grid_ks": [6, 12], "cv": 3, "repeats": 1},
    "full": {"n_samples": 2000, "n_features": 24, "tree_depth": 14,
             "n_trees": 40, "predict_rows": 600, "grid_depths": [4, 8, 12, 16],
             "grid_ks": [8, 16, 24], "cv": 5, "repeats": 3},
}


def make_dataset(n_samples: int, n_features: int, seed: int = 0):
    """Synthetic binary task with informative and noise features."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n_samples, n_features))
    logits = X[:, 0] + 0.7 * X[:, 1] - 0.5 * X[:, 2] * X[:, 3]
    y = (logits + 0.3 * rng.normal(size=n_samples) > 0).astype(int)
    return X, y


def _best_time(fn, repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def scenario_tree_fit(size: dict) -> dict:
    """Grow one deep tree: per-node re-sort (seed) vs presort/partition."""
    X, y = make_dataset(size["n_samples"], size["n_features"], seed=1)
    depth = size["tree_depth"]

    baseline = ReferenceDecisionTree(max_depth=depth, random_state=0)
    optimized = DecisionTreeClassifier(max_depth=depth, random_state=0)
    t_base = _best_time(lambda: baseline.fit(X, y), size["repeats"])
    t_opt = _best_time(lambda: optimized.fit(X, y), size["repeats"])

    identical = bool(
        np.array_equal(baseline.predict_proba(X), optimized.predict_proba(X))
    )
    assert identical, "presorted tree predictions diverged from seed"
    return {"baseline_s": t_base, "optimized_s": t_opt,
            "speedup": t_base / t_opt, "bit_identical": identical}


def scenario_forest_predict(size: dict) -> dict:
    """Forest predict_proba: per-tree Python loop vs stacked flat arrays."""
    X, y = make_dataset(size["n_samples"], size["n_features"], seed=2)
    X_wide = make_dataset(size["predict_rows"], size["n_features"], seed=3)[0]

    baseline = ReferenceRandomForest(
        n_estimators=size["n_trees"], max_depth=size["tree_depth"],
        random_state=0,
    ).fit(X, y)
    optimized = RandomForestClassifier(
        n_estimators=size["n_trees"], max_depth=size["tree_depth"],
        random_state=0,
    ).fit(X, y)

    p_base = baseline.predict_proba(X_wide)
    p_opt = optimized.predict_proba(X_wide)
    identical = bool(np.array_equal(p_base, p_opt))
    assert identical, "flat-forest predictions diverged from seed"

    t_base = _best_time(lambda: baseline.predict_proba(X_wide),
                        size["repeats"])
    t_opt = _best_time(lambda: optimized.predict_proba(X_wide),
                       size["repeats"])
    return {"baseline_s": t_base, "optimized_s": t_opt,
            "speedup": t_base / t_opt, "bit_identical": identical}


def scenario_grid_sweep(size: dict) -> dict:
    """Tree-heavy sweep: seed grid loop vs hoisted-fold memoizing search."""
    X, y = make_dataset(size["n_samples"], size["n_features"], seed=4)
    grid = {"select__k": size["grid_ks"],
            "tree__max_depth": size["grid_depths"]}

    def baseline():
        pipeline = Pipeline([
            ("select", SelectKBest(k=size["grid_ks"][0])),
            ("tree", ReferenceDecisionTree(random_state=0)),
        ])
        return reference_grid_search(
            pipeline, grid, X, y, cv=size["cv"], random_state=0,
            scoring=accuracy_score,
        )

    def optimized():
        pipeline = Pipeline([
            ("select", SelectKBest(k=size["grid_ks"][0])),
            ("tree", DecisionTreeClassifier(random_state=0)),
        ])
        search = GridSearchCV(pipeline, grid, cv=size["cv"],
                              scoring=accuracy_score, random_state=0)
        return search.fit(X, y)

    t_base = _best_time(baseline, size["repeats"])
    t_opt = _best_time(optimized, size["repeats"])

    _, best_params_base, best_score_base = baseline()
    search = optimized()
    identical = (
        search.best_params_ == best_params_base
        and search.best_score_ == best_score_base
    )
    assert identical, "memoizing grid search selected a different model"
    return {"baseline_s": t_base, "optimized_s": t_opt,
            "speedup": t_base / t_opt, "bit_identical": bool(identical),
            "best_params": search.best_params_,
            "best_score": search.best_score_}


SCENARIOS = {
    "tree_fit": scenario_tree_fit,
    "forest_predict": scenario_forest_predict,
    "grid_sweep": scenario_grid_sweep,
}


def run_bench(mode: str = "quick") -> dict:
    """Run every scenario at ``mode`` scale; return the report dict."""
    size = SIZES[mode]
    report = {"mode": mode, "sizes": size, "scenarios": {}}
    for name, scenario in SCENARIOS.items():
        report["scenarios"][name] = scenario(size)
    floor = FULL_SWEEP_FLOOR if mode == "full" else QUICK_SWEEP_FLOOR
    report["sweep_speedup_floor"] = floor
    return report


def print_report(report: dict) -> None:
    """Print the scenario table the JSON report serializes."""
    print()
    print("=" * 72)
    print(f"Tree substrate speedup over seed implementation "
          f"({report['mode']} mode)")
    print("=" * 72)
    print(f"{'scenario':<16} {'seed (s)':>10} {'optimized (s)':>14} "
          f"{'speedup':>9}  identical")
    for name, result in report["scenarios"].items():
        print(f"{name:<16} {result['baseline_s']:>10.3f} "
              f"{result['optimized_s']:>14.3f} {result['speedup']:>8.2f}x  "
              f"{result['bit_identical']}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small problem sizes (CI smoke run)")
    parser.add_argument("--output", default="BENCH_substrate.json",
                        help="path for the JSON report")
    options = parser.parse_args(argv)

    mode = "quick" if options.quick else "full"
    report = run_bench(mode)
    print_report(report)

    sweep_speedup = report["scenarios"]["grid_sweep"]["speedup"]
    floor = report["sweep_speedup_floor"]
    Path(options.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {options.output}")
    if sweep_speedup < floor:
        print(f"FAIL: grid_sweep speedup {sweep_speedup:.2f}x "
              f"below the {floor:.1f}x floor")
        return 1
    return 0


def test_substrate_speedup():
    """Quick-mode bench: bit-identical predictions and a real speedup."""
    report = run_bench("quick")
    print_report(report)
    for name, result in report["scenarios"].items():
        assert result["bit_identical"], name
        assert result["speedup"] > 0
    assert (report["scenarios"]["grid_sweep"]["speedup"]
            >= QUICK_SWEEP_FLOOR)


if __name__ == "__main__":
    raise SystemExit(main())
