"""Ablation benches for the design choices called out in DESIGN.md §5.

1. Black-box auto-selection on/off — quantifies how much the hidden
   linear/non-linear switch buys Google-style platforms (reproducing the
   §6.3 conclusion from the opposite direction).
2. The paper's sparse numeric scan (D/100, D, 100*D) vs a denser scan —
   PARA tuning has diminishing returns (Fig 5's smallest bar).
3. Median vs mean imputation — the paper's preprocessing choice is
   insensitive.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_banner
from repro.analysis import render_table
from repro.core import Configuration, ExperimentRunner
from repro.datasets import load_corpus, load_dataset
from repro.learn import GridSearchCV, LogisticRegression, f_score
from repro.learn.preprocessing import MedianImputer
from repro.learn.model_selection import train_test_split
from repro.platforms import Google


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(split_seed=7)


def test_ablation_autoselect_vs_always_linear(benchmark, runner):
    """Hidden auto-selection vs a pinned linear model, per dataset."""

    def compute():
        datasets = load_corpus(max_datasets=8, size_cap=250, feature_cap=10)
        rows = []
        for dataset in datasets:
            split = runner.split(dataset)
            auto = runner.run_one(
                Google(random_state=0), dataset, Configuration.make()
            )
            pinned = LogisticRegression(max_iter=200)
            pinned.fit(split.X_train, split.y_train)
            pinned_f = f_score(split.y_test, pinned.predict(split.X_test))
            rows.append((dataset.name, auto.f_score, pinned_f))
        return rows

    rows = benchmark(compute)
    print_banner("Ablation 1 — black-box auto-selection vs always-linear")
    print(render_table(
        ["dataset", "auto-select F", "always-linear F", "delta"],
        [
            [name, f"{auto:.3f}", f"{linear:.3f}", f"{auto - linear:+.3f}"]
            for name, auto, linear in rows
        ],
    ))
    auto_mean = np.mean([auto for _, auto, _ in rows])
    linear_mean = np.mean([linear for _, _, linear in rows])
    print(f"\nmean: auto={auto_mean:.3f}  always-linear={linear_mean:.3f}")
    # The switch must help on average (it is why black-box baselines beat
    # other platforms' baselines in Fig 4) and never lose big.
    assert auto_mean >= linear_mean - 0.01


def test_ablation_parameter_scan_density(benchmark):
    """Paper's 3-point numeric scan vs a 9-point scan of LR's C."""

    def compute():
        dataset = load_dataset("synthetic/linear_overlap", size_cap=500)
        X_train, X_test, y_train, y_test = train_test_split(
            dataset.X, dataset.y, random_state=0
        )
        out = {}
        for label, grid in (
            ("paper 3-point", [0.01, 1.0, 100.0]),
            ("dense 9-point", list(np.logspace(-2, 2, 9))),
        ):
            search = GridSearchCV(
                LogisticRegression(), {"C": grid}, cv=3, random_state=0
            ).fit(X_train, y_train)
            out[label] = f_score(y_test, search.predict(X_test))
        return out

    scores = benchmark(compute)
    print_banner("Ablation 2 — numeric parameter scan density (LR's C)")
    print(render_table(
        ["scan", "test F-score"],
        [[label, f"{value:.3f}"] for label, value in scores.items()],
    ))
    # Tripling the scan density buys almost nothing — the paper's sparse
    # D/100, D, 100*D protocol is justified.
    assert abs(scores["dense 9-point"] - scores["paper 3-point"]) < 0.03


def test_ablation_median_vs_mean_imputation(benchmark):
    """The paper imputes with the median; show the choice is insensitive."""

    def compute():
        rng = np.random.default_rng(0)
        dataset = load_dataset("synthetic/linear_10d", size_cap=600)
        X = dataset.X.copy()
        X[rng.random(X.shape) < 0.15] = np.nan
        out = {}
        for strategy in ("median", "mean"):
            X_clean = MedianImputer(strategy=strategy).fit_transform(X)
            X_train, X_test, y_train, y_test = train_test_split(
                X_clean, dataset.y, random_state=0
            )
            model = LogisticRegression().fit(X_train, y_train)
            out[strategy] = f_score(y_test, model.predict(X_test))
        return out

    scores = benchmark(compute)
    print_banner("Ablation 3 — median vs mean imputation (15% missing cells)")
    print(render_table(
        ["strategy", "test F-score"],
        [[s, f"{v:.3f}"] for s, v in scores.items()],
    ))
    assert abs(scores["median"] - scores["mean"]) < 0.05
