"""Extension benches for the paper's §8 future-work dimensions.

The paper names "training time, cost, robustness to incorrect input" as
evaluation dimensions it leaves open.  These benches measure them on the
simulators:

* campaign cost — what the paper's own measurement scale (Table 2) would
  have cost per platform, from recorded training time and prediction
  volume plus 2017-shaped price sheets;
* label-noise robustness — F-score degradation as training labels are
  corrupted, per platform.
"""

from benchmarks.conftest import print_banner
from repro.analysis import (
    degradation_slope,
    label_noise_curve,
    render_table,
    study_cost_report,
)
from repro.datasets import load_dataset
from repro.platforms import ALL_PLATFORMS


def test_ext_campaign_cost(benchmark, baseline_store):
    reports = benchmark(study_cost_report, baseline_store)
    print_banner("Extension — estimated campaign cost per platform "
                 "(baseline protocol; 2017-shaped pricing)")
    print(render_table(
        ["platform", "# measurements", "training hours", "# predictions",
         "est. USD", "USD/measurement"],
        [
            [r.platform, r.n_measurements, f"{r.training_hours:.4f}",
             f"{r.n_predictions:,}", f"{r.estimated_usd:.2f}",
             f"{r.usd_per_measurement():.4f}"]
            for r in reports
        ],
    ))
    by_name = {r.platform: r for r in reports}
    assert by_name["local"].estimated_usd == 0.0
    assert all(r.training_hours >= 0.0 for r in reports)
    assert all(r.n_measurements > 0 for r in reports)


def test_ext_label_noise_robustness(benchmark):
    def compute():
        dataset = load_dataset("synthetic/linear_10d", size_cap=300)
        curves = {}
        for platform_cls in ALL_PLATFORMS:
            curves[platform_cls.name] = label_noise_curve(
                platform_cls(random_state=0), dataset,
                noise_rates=(0.0, 0.1, 0.2, 0.3), random_state=0,
            )
        return curves

    curves = benchmark(compute)
    print_banner("Extension — F-score vs training-label noise "
                 "(clean test labels)")
    rates = next(iter(curves.values())).noise_rates
    print(render_table(
        ["platform", *(f"noise={r:.0%}" for r in rates), "slope"],
        [
            [name,
             *(f"{f:.3f}" for f in curve.f_scores),
             f"{degradation_slope(curve):+.2f}"]
            for name, curve in curves.items()
        ],
    ))
    # Noise cannot help on average: every platform's clean F-score is at
    # least its worst noisy one (small slack for stochastic training).
    for curve in curves.values():
        assert curve.f_scores[0] >= min(curve.f_scores) - 0.05
