"""Campaign scheduler speedup — concurrent vs. serial sweeps.

The simulated platforms answer instantly, so out of the box there is
nothing for concurrency to hide.  This bench injects a fixed per-request
latency into every platform (the network round-trip the paper's scripts
spent most of their wall-clock on) and demonstrates that the campaign
scheduler overlaps requests across platforms: with one worker per
platform the sweep must finish at least 2x faster than the serial loop,
while producing a bit-identical result store.
"""

import time

from benchmarks.conftest import print_banner
from repro.core import ExperimentRunner
from repro.core.config_space import baseline_configuration
from repro.core.results import ResultStore
from repro.datasets import load_corpus
from repro.platforms import ALL_PLATFORMS
from repro.service import CampaignScheduler

REQUEST_LATENCY = 0.05  # seconds of simulated network round-trip


def _laggy(cls, latency=REQUEST_LATENCY):
    """A platform subclass whose every metered request costs ``latency``."""

    class Laggy(cls):
        def _consume_request(self):
            time.sleep(latency)
            super()._consume_request()

    Laggy.__name__ = f"Laggy{cls.__name__}"
    Laggy.__qualname__ = Laggy.__name__
    return Laggy


def test_campaign_speedup_over_serial():
    corpus = load_corpus(max_datasets=3, size_cap=100, feature_cap=8,
                         random_state=0)
    classes = [_laggy(cls) for cls in ALL_PLATFORMS]

    def serial():
        runner = ExperimentRunner(split_seed=7)
        store = ResultStore()
        for cls in classes:
            platform = cls(random_state=0)
            store.extend(runner.sweep(
                platform, corpus, [baseline_configuration(platform)]
            ))
        return store

    def concurrent():
        platforms = [cls(random_state=0) for cls in classes]
        scheduler = CampaignScheduler(workers=len(platforms), seed=0)
        return scheduler.run(
            ExperimentRunner(split_seed=7), platforms, corpus,
            {p.name: [baseline_configuration(p)] for p in platforms},
        )

    start = time.perf_counter()
    serial_store = serial()
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    concurrent_store = concurrent()
    concurrent_seconds = time.perf_counter() - start

    speedup = serial_seconds / concurrent_seconds
    print_banner("Campaign scheduler — wall-clock speedup over serial sweep")
    print(f"platforms: {len(classes)}  datasets: {len(corpus)}  "
          f"request latency: {REQUEST_LATENCY * 1000:.0f} ms")
    print(f"serial:     {serial_seconds:8.2f} s")
    print(f"concurrent: {concurrent_seconds:8.2f} s  "
          f"(workers={len(classes)})")
    print(f"speedup:    {speedup:8.2f} x")

    assert list(concurrent_store) == list(serial_store)
    assert speedup >= 2.0
