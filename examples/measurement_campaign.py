#!/usr/bin/env python3
"""Run a resumable measurement campaign against an asynchronous platform.

The paper's sweeps took months of calendar time (October 2016 – February
2017) against rate-limited web APIs.  This example shows the two
operational features built for that reality:

* the asynchronous job mode — ``create_model`` queues a training job and
  the client polls ``await_model``, exactly like the real services;
* resumable, checkpointed sweeps — a campaign can be interrupted at any
  point and continued from its JSON checkpoint without repeating work.

Run:  python examples/measurement_campaign.py
"""

import tempfile
from pathlib import Path

from repro.analysis import render_table, study_cost_report
from repro.core import ExperimentRunner, enumerate_configurations
from repro.core.results import ResultStore
from repro.datasets import load_corpus
from repro.platforms import BigML


def main() -> None:
    datasets = load_corpus(max_datasets=4, size_cap=250, feature_cap=10)
    platform = BigML(random_state=0)
    configurations = list(enumerate_configurations(
        platform, para_grid="single_axis"
    ))
    print(f"campaign: {len(configurations)} configurations x "
          f"{len(datasets)} datasets on {platform.name}")

    # --- the async job shape (one model, spelled out) -------------------
    split = datasets[0].split(random_state=7)
    async_platform = BigML(random_state=0, synchronous=False)
    dataset_id = async_platform.upload_dataset(split.X_train, split.y_train)
    model_id = async_platform.create_model(dataset_id, classifier="RF")
    print(f"\nqueued job: {model_id} "
          f"(state={async_platform.get_model(model_id).state.value})")
    handle = async_platform.await_model(model_id)     # poll until done
    print(f"after await_model: state={handle.state.value}, "
          f"trained in {handle.metadata['training_seconds'] * 1000:.0f} ms")

    # --- the checkpointed sweep -----------------------------------------
    runner = ExperimentRunner(split_seed=7)
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "campaign.json"

        # Phase 1: the campaign "crashes" after the first two datasets.
        partial = runner.sweep(
            platform, datasets[:2], configurations,
            checkpoint_path=checkpoint,
        )
        print(f"\nphase 1 done: {len(partial)} measurements "
              f"checkpointed to {checkpoint.name}")

        # Phase 2: resume from the checkpoint; finished work is skipped.
        resumed = runner.sweep(
            platform, datasets, configurations,
            resume_from=ResultStore.load(checkpoint),
            checkpoint_path=checkpoint,
        )
        print(f"phase 2 done: {len(resumed)} total measurements "
              f"({len(resumed) - len(partial)} new)")

        best = resumed.best_per_dataset()
        print()
        print(render_table(
            ["dataset", "best configuration", "f-score"],
            [
                [name, result.configuration.label()[:46],
                 f"{result.f_score:.3f}"]
                for name, result in sorted(best.items())
            ],
            title="Campaign results (best configuration per dataset)",
        ))

        report = study_cost_report(resumed)[0]
        print(f"\ncampaign accounting: {report.n_measurements} jobs, "
              f"{report.training_hours * 3600:.1f}s total training, "
              f"{report.n_predictions:,} predictions, "
              f"~${report.estimated_usd:.2f} at 2017-shaped pricing")


if __name__ == "__main__":
    main()
