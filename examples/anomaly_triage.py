#!/usr/bin/env python3
"""Networking scenario: KPI anomaly triage with partial classifier knowledge.

The paper's §5 finding with the most practical value: you do not need to
sweep a platform's whole classifier zoo — a random subset of ~3
classifiers gets within a few percent of the optimum, with far less risk.

This example plays that out on a network-operations task the paper's
intro motivates (automatic anomaly detection over KPI time series, à la
Opprentice): windows of a noisy KPI stream are featurized and labelled
anomalous/normal, then a researcher with a budget of k classifier trials
picks the best of the k.

Run:  python examples/anomaly_triage.py
"""

import numpy as np

from repro.analysis import render_table, subset_performance_curve
from repro.core import ExperimentRunner, per_control_configurations
from repro.core.controls import CLF
from repro.datasets.corpus import Dataset
from repro.datasets.registry import DatasetSpec
from repro.platforms import LocalLibrary


def synthesize_kpi_windows(n_windows: int = 900, seed: int = 3):
    """Featurized sliding windows of a KPI stream with injected anomalies.

    Window features: mean level, variance, lag-1 autocorrelation, max
    spike, trend slope, and diff-entropy — the standard anomaly-detector
    feature set.  Anomalies are level shifts, spikes, or variance bursts.
    """
    rng = np.random.default_rng(seed)
    features, labels = [], []
    for _ in range(n_windows):
        base = rng.normal(100.0, 3.0)
        window = base + np.cumsum(rng.normal(0, 0.3, 60)) + rng.normal(0, 1.0, 60)
        anomalous = rng.random() < 0.2
        if anomalous:
            kind = rng.integers(0, 3)
            if kind == 0:        # level shift
                window[30:] += rng.choice([-1, 1]) * rng.uniform(6, 14)
            elif kind == 1:      # spike
                at = rng.integers(5, 55)
                window[at] += rng.choice([-1, 1]) * rng.uniform(15, 30)
            else:                # variance burst
                window[20:40] += rng.normal(0, 6.0, 20)
        diffs = np.diff(window)
        features.append([
            window.mean(),
            window.var(),
            float(np.corrcoef(window[:-1], window[1:])[0, 1]),
            np.abs(window - np.median(window)).max(),
            np.polyfit(np.arange(60), window, 1)[0],
            float(np.log(diffs.var() + 1e-9)),
        ])
        labels.append(int(anomalous))
    return np.asarray(features), np.asarray(labels)


def main() -> None:
    X, y = synthesize_kpi_windows()
    spec = DatasetSpec(
        name="example/kpi_anomalies", domain="other", concept="rule",
        n_samples=len(y), n_features=X.shape[1],
    )
    dataset = Dataset(spec=spec, X=X, y=y)

    platform = LocalLibrary(random_state=0)
    runner = ExperimentRunner(split_seed=0)

    # Tune only the CLF dimension (default parameters), the paper's
    # single-control protocol — one trial per classifier.
    configurations = per_control_configurations(platform, CLF)
    store = runner.sweep(platform, [dataset], configurations)

    per_classifier = sorted(
        ((r.configuration.classifier, r.f_score) for r in store.ok()),
        key=lambda item: -item[1],
    )
    print(render_table(
        ["classifier", "f-score"],
        [[abbr, f"{score:.3f}"] for abbr, score in per_classifier],
        title="Anomaly triage: one trial per classifier (default params)",
    ))

    curve = subset_performance_curve(store, platform.name)
    best = max(value for _, value in curve)
    print()
    print(render_table(
        ["k classifiers tried", "expected best f-score", "% of optimum"],
        [
            [str(k), f"{value:.3f}", f"{100 * value / best:.1f}%"]
            for k, value in curve
        ],
        title="Fig 8 in miniature: expected outcome of trying a random k-subset",
    ))
    k3 = dict(curve).get(3)
    if k3 is not None:
        print(f"\nTakeaway: trying just 3 random classifiers already reaches "
              f"{100 * k3 / best:.1f}% of the full-sweep optimum (paper §5.2).")


if __name__ == "__main__":
    main()
