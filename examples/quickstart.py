#!/usr/bin/env python3
"""Quickstart: train a model on every MLaaS platform and compare.

This walks the full public API in ~30 seconds:

1. load a corpus dataset (the paper's 119-dataset corpus, §3.1);
2. split it 70/30 like the paper's protocol;
3. drive each platform's service API (upload -> train -> batch predict);
4. score with the paper's headline metric (F-score).

Run:  python examples/quickstart.py
"""

from repro.analysis import render_table
from repro.datasets import load_dataset
from repro.learn import classification_summary
from repro.platforms import ALL_PLATFORMS


def main() -> None:
    # A clean non-linear dataset from the corpus.
    dataset = load_dataset("synthetic/moons_easy", size_cap=600)
    split = dataset.split(test_size=0.3, random_state=0)
    print(f"dataset: {dataset.name}  "
          f"train={split.X_train.shape}  test={split.X_test.shape}")

    rows = []
    for platform_cls in ALL_PLATFORMS:
        platform = platform_cls(random_state=0)

        # The three calls every platform supports, black box or not.
        dataset_id = platform.upload_dataset(
            split.X_train, split.y_train, name=dataset.name
        )
        model_id = platform.create_model(dataset_id)  # zero-control baseline
        predictions = platform.batch_predict(model_id, split.X_test)

        metrics = classification_summary(split.y_test, predictions)
        handle = platform.get_model(model_id)
        selection = handle.metadata.get("selection")
        note = (
            f"auto:{selection.chosen_family}" if selection
            else (handle.classifier_abbr or "-")
        )
        rows.append([
            platform.name,
            ",".join(sorted(platform.exposed_dimensions)) or "none",
            note,
            f"{metrics.f_score:.3f}",
            f"{metrics.accuracy:.3f}",
        ])

    print()
    print(render_table(
        ["platform", "controls", "model", "f-score", "accuracy"],
        rows,
        title="Zero-control (baseline) performance per platform",
    ))
    print("\nNote how the black-box platforms (abm, google) and Amazon's "
          "hidden recipe handle the non-linear dataset, while platforms "
          "whose baseline is plain Logistic Regression struggle — the "
          "paper's Figure 4 'baseline' story in miniature.")


if __name__ == "__main__":
    main()
