#!/usr/bin/env python3
"""Audit a black-box MLaaS platform: what classifier is it hiding?

Reproduces the paper's §6 investigation as a runnable recipe:

1. probe the platform's decision boundary on the CIRCLE and LINEAR
   datasets through its public prediction API (Fig 10);
2. train per-dataset meta-classifiers that recognize linear vs
   non-linear classifier families from predictions alone (§6.2);
3. apply them to the black boxes and report their inferred choices;
4. run the naive LR-vs-DT strategy and count where it beats them (§6.3).

Run:  python examples/blackbox_audit.py
"""

from repro.analysis import (
    boundary_linearity,
    collect_family_observations,
    compare_with_blackbox,
    infer_blackbox_families,
    probe_decision_boundary,
    render_table,
    train_family_predictors,
)
from repro.core import ExperimentRunner
from repro.datasets import load_corpus, load_dataset
from repro.platforms import ABM, Google, LocalLibrary, Microsoft


def probe_boundaries() -> None:
    print("=" * 64)
    print("Step 1 — decision-boundary probes (Fig 10)")
    print("=" * 64)
    rows = []
    for name in ("synthetic/circle", "synthetic/linear"):
        split = load_dataset(name, size_cap=500).split(random_state=0)
        for platform_cls in (Google, ABM):
            platform = platform_cls(random_state=0)
            probe = probe_decision_boundary(
                platform, split.X_train, split.y_train, resolution=60
            )
            linearity = boundary_linearity(probe)
            shape = "linear" if linearity > 0.95 else "NON-linear"
            rows.append([platform.name, name.split("/")[1], f"{linearity:.3f}", shape])
    print(render_table(
        ["platform", "dataset", "linearity", "inferred boundary"], rows
    ))
    # Show one boundary the way the paper plots it.
    split = load_dataset("synthetic/circle", size_cap=500).split(random_state=0)
    probe = probe_decision_boundary(
        Google(random_state=0), split.X_train, split.y_train, resolution=48
    )
    print("\nGoogle on CIRCLE (predicted classes over the mesh):\n")
    print(probe.render_ascii(width=48))


def infer_families() -> None:
    print()
    print("=" * 64)
    print("Step 2+3 — classifier-family inference (§6.2)")
    print("=" * 64)
    runner = ExperimentRunner(split_seed=7)
    # A small probe corpus: the synthetic datasets diverge most between
    # linear and non-linear classifiers, just as the paper found.
    probes = load_corpus(domains=["synthetic"], size_cap=250, feature_cap=10)[:8]
    observations = collect_family_observations(
        runner,
        [LocalLibrary(random_state=0), Microsoft(random_state=0)],
        probes,
        max_configs_per_classifier=3,
    )
    # At this reduced scale the cross-validated qualification estimate is
    # noisy, so we use a 0.9 bar (the paper's 0.95 assumes thousands of
    # meta-training experiments per dataset).
    predictors = train_family_predictors(
        observations, random_state=0, qualification_threshold=0.9
    )
    qualified = [name for name, p in predictors.items() if p.qualified]
    print(f"qualified probe datasets (validation F > 0.9): "
          f"{len(qualified)}/{len(probes)}")

    rows = []
    for platform_cls in (Google, ABM):
        report = infer_blackbox_families(
            runner, platform_cls(random_state=0), probes, predictors
        )
        rows.append([
            report.platform,
            str(report.n_linear),
            str(report.n_nonlinear),
            f"{report.linear_fraction():.0%}" if report.choices else "n/a",
        ])
    print(render_table(
        ["platform", "# linear picks", "# non-linear picks", "linear share"],
        rows,
    ))


def naive_comparison() -> None:
    print()
    print("=" * 64)
    print("Step 4 — the naive LR-vs-DT strategy (§6.3, Table 6)")
    print("=" * 64)
    runner = ExperimentRunner(split_seed=7)
    datasets = load_corpus(max_datasets=10, size_cap=250, feature_cap=12)
    rows = []
    for platform_cls in (Google, ABM):
        comparison = compare_with_blackbox(
            runner, platform_cls(random_state=0), datasets, random_state=0
        )
        rows.append([
            comparison.platform,
            f"{comparison.n_naive_wins}/{comparison.n_datasets}",
            f"{comparison.mean_win_margin():.3f}"
            if comparison.win_margins else "-",
        ])
    print(render_table(
        ["black box", "naive wins", "mean F-score margin when winning"], rows
    ))
    print("\nTakeaway (paper §6.3): a two-classifier strategy anyone can run "
          "locally still beats the black boxes on many datasets — their "
          "hidden optimization has room to improve.")


def main() -> None:
    probe_boundaries()
    infer_families()
    naive_comparison()


if __name__ == "__main__":
    main()
