#!/usr/bin/env python3
"""Networking scenario: botnet C&C flow detection via MLaaS.

The paper motivates MLaaS with network-measurement tasks — botnet
detection among them (§1, citing Haider & Scheffer).  This example
simulates NetFlow-style features for benign vs botnet command-and-control
flows and shows the decision a network researcher faces:

* a turnkey black box (Google-style) with zero knobs;
* a configurable platform (Microsoft-style) used naively vs tuned.

The flow features follow the standard botnet-detection literature:
C&C channels beacon on a timer (low inter-arrival jitter), use small
fixed-size packets, and talk to few destinations.

Run:  python examples/botnet_detection.py
"""

import numpy as np

from repro.analysis import render_table
from repro.core import Configuration, ExperimentRunner, enumerate_configurations
from repro.datasets.corpus import Dataset
from repro.datasets.registry import DatasetSpec
from repro.learn import f_score
from repro.platforms import Google, Microsoft


def synthesize_flows(n_flows: int = 700, botnet_fraction: float = 0.15,
                     seed: int = 7) -> tuple[np.ndarray, np.ndarray]:
    """Generate NetFlow-like features for benign and C&C traffic.

    Features (per flow): mean packet size, packet-size variance,
    inter-arrival jitter, flow duration, packets/flow, distinct dst ports,
    bytes up/down ratio, TLS handshake present.

    Stealthy C&C mimics benign traffic in every single feature; only the
    *combination* of signatures (beaconing + small packets, or long-lived
    + single-port) gives it away — which is exactly why classifier choice
    matters for this workload.
    """
    rng = np.random.default_rng(seed)
    n_bot = int(n_flows * botnet_fraction)
    n_benign = n_flows - n_bot

    def benign(n):
        return np.column_stack([
            rng.normal(700, 300, n),            # mean pkt size: browsing mix
            rng.gamma(3.0, 200.0, n),           # size variance
            rng.gamma(2.0, 0.8, n),             # inter-arrival jitter
            rng.gamma(1.8, 40.0, n),            # duration (s)
            rng.gamma(2.0, 40.0, n),            # packets per flow
            rng.poisson(5, n).astype(float),    # distinct dst ports
            rng.gamma(2.0, 1.5, n),             # up/down bytes ratio
            (rng.random(n) < 0.8).astype(float),  # TLS
        ])

    X_bot = benign(n_bot)  # stealthy: start from the benign profile
    # Signature A (beaconing): tiny jitter AND small fixed packets.
    # Signature B (persistence): very long flows AND a single dst port.
    # Each bot flow expresses one signature; marginals overlap benign.
    signature = rng.random(n_bot) < 0.5
    a = np.flatnonzero(signature)
    b = np.flatnonzero(~signature)
    X_bot[a, 2] = rng.gamma(1.5, 0.25, a.size)      # low-ish jitter
    X_bot[a, 0] = rng.normal(320, 120, a.size)      # small-ish packets
    X_bot[b, 3] = rng.gamma(5.0, 60.0, b.size)      # long-lived
    X_bot[b, 5] = rng.poisson(1, b.size) + 1.0      # 1-2 ports

    X = np.vstack([benign(n_benign), X_bot])
    y = np.concatenate([np.zeros(n_benign, dtype=int), np.ones(n_bot, dtype=int)])
    # Ground-truth labels in deployed blocklists are themselves noisy.
    flips = rng.random(n_flows) < 0.02
    y[flips] = 1 - y[flips]
    order = rng.permutation(n_flows)
    return X[order], y[order]


def main() -> None:
    X, y = synthesize_flows()
    # Wrap the traffic in a corpus Dataset so the measurement harness
    # (runner, sweeps) can drive it like any paper dataset.
    spec = DatasetSpec(
        name="example/botnet_flows", domain="other", concept="rule",
        n_samples=len(y), n_features=X.shape[1],
    )
    dataset = Dataset(spec=spec, X=X, y=y)
    runner = ExperimentRunner(split_seed=0)

    rows = []

    # Option 1: a turnkey black box — upload and hope.
    google = Google(random_state=0)
    result = runner.run_one(google, dataset, Configuration.make())
    rows.append(["google (turnkey)", "zero clicks", f"{result.f_score:.3f}"])

    # Option 2: Microsoft with its default Logistic Regression.
    microsoft = Microsoft(random_state=0)
    baseline = runner.run_one(
        microsoft, dataset,
        Configuration.make(
            classifier="LR",
            params=microsoft.controls.classifier("LR").default_params(),
        ),
    )
    rows.append(["microsoft (defaults)", "LR defaults", f"{baseline.f_score:.3f}"])

    # Option 3: Microsoft tuned — sweep its CLF x PARA space and keep the
    # best, the paper's 'optimized' protocol.  (Add include_feat=True for
    # the full FEAT x CLF x PARA sweep; ~9x slower.)
    best_score, best_config = -1.0, None
    for configuration in enumerate_configurations(
        microsoft, para_grid="single_axis", include_feat=False
    ):
        result = runner.run_one(microsoft, dataset, configuration)
        if result.ok and result.f_score > best_score:
            best_score, best_config = result.f_score, configuration
    rows.append(["microsoft (tuned)", best_config.label()[:42], f"{best_score:.3f}"])

    print(render_table(
        ["approach", "configuration", "f-score"],
        rows,
        title="Detecting botnet C&C flows (15% positive class)",
    ))
    print("\nTakeaway (paper §4): turnkey automation beats a bad default, "
          "but a tuned high-control platform beats both — if you spend "
          "the configuration effort.")


if __name__ == "__main__":
    main()
